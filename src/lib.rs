//! # plinger-repro
//!
//! A Rust reproduction of Bode & Bertschinger, *Parallel Linear General
//! Relativity and CMB Anisotropies* (Supercomputing '95): the
//! LINGER/PLINGER linearized Einstein–Boltzmann solver and its
//! master/worker parallelization over wavenumbers.
//!
//! This facade re-exports the public API of every crate in the
//! workspace.  The typical flow:
//!
//! ```no_run
//! use plinger_repro::prelude::*;
//!
//! // 1. pick a cosmology and build the wavenumber grid
//! let spec = RunSpec::standard_cdm(vec![1e-3, 5e-3, 1e-2]);
//!
//! // 2. run the farm (4 workers, largest-k-first as in the paper);
//! //    swap ChannelWorld for ShmemWorld or TcpWorld to change the
//! //    message-passing substrate without touching the farm code
//! let report = Farm::<ChannelWorld>::new(4)
//!     .run(&spec, SchedulePolicy::LargestFirst)
//!     .expect("farm session");
//!
//! // 3. assemble observables
//! let prim = PrimordialSpectrum::unit(spec.cosmo.n_s);
//! let cl = angular_power_spectrum(&report.outputs, &prim, 8);
//! let (cl, _amp) = cobe_normalize(&cl, spec.cosmo.t_cmb_k, Q_RMS_PS_UK);
//! println!("l(l+1)C_l/2π at l = 5: {}", cl.band_power(5));
//! ```

pub use background;
pub use boltzmann;
pub use icgen;
pub use msgpass;
pub use numutil;
pub use ode;
pub use plinger;
pub use recomb;
pub use skymap;
pub use special;
pub use spectra;

/// Convenient one-stop imports.
pub mod prelude {
    pub use background::{Background, CosmoParams, Species};
    pub use boltzmann::{evolve_mode, Gauge, InitialConditions, ModeConfig, ModeOutput, Preset};
    pub use msgpass::channel::ChannelWorld;
    pub use msgpass::shmem::ShmemWorld;
    pub use msgpass::tcp::TcpWorld;
    pub use msgpass::{CommError, Rank, Tag, Transport, World};
    pub use plinger::{
        cosmo_hash, job_hash, run_serial, run_tcp_processes, Farm, FarmError, FarmPool, FarmReport,
        FaultPlan, PoolOptions, RecoveryLog, RecoveryPolicy, ResultCache, RunSpec, SchedulePolicy,
        SpectrumService, TcpFarmOptions, TcpFarmPool,
    };
    pub use recomb::ThermoHistory;
    pub use skymap::{AlmRealization, PotentialField, SkyMap};
    pub use spectra::{
        angular_power_spectrum, cl_k_grid, cobe_normalize, correlation_function, map_variance,
        matter_k_grid, matter_power_spectrum, sigma_r, transfer_function, ClSpectrum, MatterPower,
        PrimordialSpectrum, Q_RMS_PS_UK,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links() {
        use crate::prelude::*;
        let p = CosmoParams::standard_cdm();
        assert_eq!(p.h, 0.5);
        let _ = SchedulePolicy::LargestFirst;
    }
}
