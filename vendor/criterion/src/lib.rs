//! Offline stand-in for `criterion`.
//!
//! Implements the workspace's benchmarking surface: `criterion_group!`
//! (both forms), `criterion_main!`, benchmark groups, throughput
//! labels, and `Bencher::iter`.  Measurement is deliberately simple —
//! each sample times a calibrated batch of iterations and the harness
//! reports the median over `sample_size` samples:
//!
//! ```text
//! bench: <group>/<id> median 123.45 ns/iter (N samples)
//! ```
//!
//! That line is stable, greppable output for `scripts/bench_snapshot.sh`.
//! Passing `--test` (as `cargo bench -- --test` does) runs every
//! routine exactly once with no timing, as upstream criterion does.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; accepted and ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one routine.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    /// Median nanoseconds per iteration of the last `iter` call.
    median_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Measure `routine`: calibrate a batch size, then time
    /// `sample_size` batches and keep the median ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.median_ns = 0.0;
            self.samples = 0;
            return;
        }
        // calibrate: find an iteration count that runs ≥ ~1 ms
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= (1 << 24) {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples_ns[samples_ns.len() / 2];
        self.samples = samples_ns.len();
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _crit: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut b);
        report(id, &b);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Record a throughput annotation (ignored by this harness).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmark `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Benchmark `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            median_ns: 0.0,
            samples: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Finish the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher) {
    if b.samples == 0 {
        println!("bench: {id} ok (test mode)");
    } else {
        println!(
            "bench: {id} median {:.2} ns/iter ({} samples)",
            b.median_ns, b.samples
        );
    }
}

/// Define a benchmark group; supports both the positional and the
/// `name/config/targets` forms upstream criterion accepts.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routine(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    criterion_group!(positional, routine);
    criterion_group! {
        name = named;
        config = Criterion::default().sample_size(2);
        targets = routine
    }

    #[test]
    fn groups_run() {
        positional();
        named();
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            test_mode: false,
            sample_size: 3,
            median_ns: 0.0,
            samples: 0,
        };
        b.iter(|| std::hint::black_box(17u64.wrapping_mul(13)));
        assert!(b.median_ns > 0.0);
        assert_eq!(b.samples, 3);
    }
}
