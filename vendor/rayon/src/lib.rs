//! Offline stand-in for `rayon`.
//!
//! `into_par_iter`/`par_iter` fall back to the corresponding sequential
//! iterators, so every downstream adaptor chain (`map`, `enumerate`,
//! `collect`, …) compiles and runs unchanged — just on one core.  The
//! workspace only leans on rayon for throughput, never for semantics,
//! so a sequential stand-in is behaviour-preserving.

pub mod prelude {
    //! Parallel-iterator traits, sequentially implemented.

    /// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        /// The underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item;
        /// "Parallel" iteration — sequential here.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The underlying iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// The element type.
        type Item: 'data;
        /// "Parallel" iteration over references — sequential here.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_is_sequential_iter() {
        let v: Vec<i32> = (0..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_vec() {
        let data = vec![1, 2, 3];
        let s: i32 = data.par_iter().sum();
        assert_eq!(s, 6);
    }
}
