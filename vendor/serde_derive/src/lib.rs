//! No-op derive macros backing the offline `serde` stand-in.

use proc_macro::TokenStream;

/// Expands to nothing; the stub `Serialize` trait has no items.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub `Deserialize` trait has no items.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
