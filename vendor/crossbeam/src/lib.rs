//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! `msgpass` transports use: unbounded MPMC channels whose disconnect
//! semantics match crossbeam's — `send` fails once every receiver is
//! gone, `recv` fails once the queue is drained and every sender is
//! gone.  Those two edges are what the farm's failure detection rides
//! on, so they are implemented faithfully (and covered by tests here).

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        q: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clonable across threads.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; clonable across threads.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be delivered: every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// The channel is drained and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Why a bounded receive returned without a message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still connected.
        Timeout,
        /// The channel drained and disconnected before the deadline.
        Disconnected,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(State {
                q: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cv: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.lock();
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.q.push_back(value);
            drop(st);
            self.chan.cv.notify_one();
            Ok(())
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.chan.lock().q.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.q.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.chan.lock();
            loop {
                if let Some(v) = st.q.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .chan
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut st = self.chan.lock();
            if let Some(v) = st.q.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(RecvTimeoutError::Disconnected)
            } else {
                Err(RecvTimeoutError::Timeout)
            }
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            self.chan.lock().q.len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Self {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.senders -= 1;
            let wake = st.senders == 0;
            drop(st);
            if wake {
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.receivers -= 1;
            drop(st);
            self.chan.cv.notify_all();
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(rx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = unbounded::<u8>();
            let t0 = std::time::Instant::now();
            let r = rx.recv_timeout(Duration::from_millis(30));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
            assert!(t0.elapsed() >= Duration::from_millis(25));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            h.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
