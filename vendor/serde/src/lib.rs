//! Offline stand-in for `serde`.
//!
//! The workspace deliberately carries no serialization logic (run
//! reports are hand-rolled JSON in `telemetry`), but a few types derive
//! `Serialize`/`Deserialize` for downstream consumers.  This stub keeps
//! those derives compiling in a container with no registry access: the
//! traits are empty markers and the derive macros expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name; carries no methods.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name; carries no methods.
pub trait Deserialize<'de> {}
