//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Implements the (small) API surface the workspace uses: `Mutex` with
//! an infallible `lock`, and `Condvar` with `wait`, `wait_for`, and
//! `notify_all` operating on `&mut MutexGuard`.  Poisoning is ignored —
//! parking_lot has no poisoning, so a panicking holder simply passes
//! the data on, and this shim preserves that semantics by unwrapping
//! the poison error into the inner guard.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion with an infallible `lock`, like `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // Option so Condvar::wait can temporarily take the std guard.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a bounded wait; mirrors `parking_lot::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s by `&mut`, like
/// `parking_lot::Condvar`.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, atomically releasing the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(30));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
