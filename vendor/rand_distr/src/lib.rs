//! Offline stand-in for `rand_distr`.
//!
//! The workspace only draws standard normals, so this crate provides
//! the [`Distribution`] trait and [`StandardNormal`] implemented with
//! the Box–Muller transform over the vendored `rand` generator.

use rand::Rng;

/// Types that can sample values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Draw one value from the distribution.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard normal distribution N(0, 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one normal (the second branch of
        // the pair is discarded to keep the sampler stateless)
        let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(123);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x: f64 = StandardNormal.sample(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let x: f64 = StandardNormal.sample(&mut a);
        let y: f64 = StandardNormal.sample(&mut b);
        assert_eq!(x.to_bits(), y.to_bits());
    }
}
