//! Offline stand-in for `bytes`.
//!
//! `BytesMut` is a `Vec<u8>` plus a read cursor; `Bytes` is a frozen
//! variant.  Implements the little-endian `Buf`/`BufMut` accessors the
//! `msgpass` codec uses, with the same consume-on-read semantics.  Both
//! `&[u8]` (for `Buf`) and the owned buffers are readable, matching the
//! upstream crate's blanket impls the codec relies on.

/// Read-side trait: consume bytes from the front.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The readable byte slice.
    fn chunk(&self) -> &[u8];
    /// Discard `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f64` (bit-exact).
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side trait: append bytes at the back.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64` (bit-exact).
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Growable byte buffer with a read cursor.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
    pos: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes at the back.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`] of the unread tail.
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes { buf: self.buf }
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        Self {
            buf: src.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.pos..]
    }
}

/// Immutable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_roundtrip_is_bit_exact() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_f64_le(f64::NAN);
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f64_le().to_bits(), f64::NAN.to_bits());
        assert!(b.is_empty());
    }

    #[test]
    fn freeze_drops_consumed_prefix() {
        let mut b = BytesMut::from(&[1u8, 2, 3, 4][..]);
        b.advance(2);
        let f = b.freeze();
        assert_eq!(&f[..], &[3, 4]);
    }

    #[test]
    fn slice_buf_reads() {
        let data = 42u32.to_le_bytes();
        let mut s = &data[..];
        assert_eq!(s.get_u32_le(), 42);
        assert_eq!(s.remaining(), 0);
    }
}
