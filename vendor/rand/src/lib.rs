//! Offline stand-in for `rand`.
//!
//! Provides the slice of the `rand` 0.9 API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng::random`] method for `f64`/integer draws, and
//! [`seq::SliceRandom::shuffle`].  The generator is xoshiro256++ with a
//! splitmix64 seed expander — deterministic for a given seed, which is
//! all the workspace relies on (fixed-seed reproducibility, not any
//! particular stream).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a simple integer seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from the uniform "standard" distribution
    /// (`f64` in `[0, 1)`, integers over their full range, fair `bool`).
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw in `[0, n)`; used internally by the shuffle.
    fn random_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // multiply-shift bounded sampling; bias is negligible for the
        // small bounds used here and irrelevant for a test stand-in
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable from a raw 64-bit stream.
pub trait FromRng {
    /// Produce one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// In-place random permutation of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..8).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random::<f64>()).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.random::<f64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }
}
