//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the `proptest!` macro, `prop_assert*` / `prop_assume!`, range and
//! collection strategies, `Just`, `any`, `prop_oneof!`, and `prop_map`.
//! Generation is a deterministic splitmix64 stream seeded from the test
//! name and case index, so failures are reproducible run to run.  There
//! is no shrinking: a failing case reports the generated inputs as-is.
//!
//! Case count defaults to 256 (like upstream) and can be overridden
//! with the `PROPTEST_CASES` environment variable or per-block via
//! `#![proptest_config(ProptestConfig::with_cases(n))]`.

use std::fmt;
use std::ops::Range;

/// Deterministic generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build the generator for one (test, case) pair.
    pub fn for_case(name_hash: u64, case: u32) -> Self {
        Self {
            state: name_hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)),
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// FNV-1a hash of a test name, used to seed its generator stream.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message names the expression and inputs.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Construct a failure with the given message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u64, u32, u16, u8, usize, i64, i32);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Output of [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: fmt::Debug,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Combinators available on every strategy.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// Uniform choice between boxed strategies — `prop_oneof!`'s backend.
pub struct Union<T: fmt::Debug>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.
    use super::{fmt, Range, Strategy, TestRng};

    /// Element-count specification: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.
    use super::{fmt, Strategy, TestRng};

    /// Strategy for `Option<S::Value>`; `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// Wrap `inner`'s values in `Some`, with occasional `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.
    use super::{Strategy, TestRng};

    /// Strategy yielding unconstrained booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Either boolean, uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        //! `f64` strategies.
        use crate::{Strategy, TestRng};

        /// Strategy over the full `f64` bit space (NaNs and infinities
        /// included), like upstream's `num::f64::ANY`.
        #[derive(Debug, Clone, Copy)]
        pub struct F64Any;

        /// Any bit pattern.
        pub const ANY: F64Any = F64Any;

        impl Strategy for F64Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, StrategyExt, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {{
        let __holds: bool = $cond;
        if !__holds {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}",
                stringify!($cond)
            )));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        let __holds: bool = $cond;
        if !__holds {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq failed: {:?} != {:?}: {}",
                a, b,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne failed: both {:?}",
                a
            )));
        }
    }};
}

/// Skip the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        $crate::Union(vec![$(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+])
    }};
}

/// Define property tests.  Each function runs `cases` times with inputs
/// drawn from the given strategies; `prop_assert*` failures report the
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::name_seed(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__seed, __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body Ok(()) })();
                match __result {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{} (case {}: {})", msg, __case, __inputs);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case(1, 2);
        let mut b = crate::TestRng::for_case(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3usize..7) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(1i32), Just(2), any::<u32>().prop_map(|v| (v % 3) as i32)]) {
            prop_assert!((0..=2).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "prop_assert failed")]
    fn failure_reports_inputs() {
        // no #[test] meta here: `inner` must stay a nameable plain fn
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0.0f64..1.0) {
                prop_assert!(x > 2.0, "x was {}", x);
            }
        }
        inner();
    }
}
