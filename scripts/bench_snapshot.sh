#!/usr/bin/env bash
# Re-measure the RHS hot-path microbenchmark and snapshot the result
# into BENCH_rhs.json at the repo root.
#
# The baseline numbers below are the medians of the same bench measured
# on this machine immediately BEFORE the shared-cache + vectorizable-
# kernel rework of the RHS (per-call spline bisection, index-chasing
# hierarchy loops).  The snapshot records the current medians, the flop
# census per evaluation, and the speedup against that pinned baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(cargo bench -p bench --bench rhs_eval 2>&1)"
echo "$out"

BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

out = os.environ["BENCH_OUT"]

# medians the seed RHS produced before the cache/kernel rework (ns/eval)
baseline = {
    "lmax16_tca_off": 344.46,
    "lmax16_tca_on": 197.25,
    "lmax64_tca_off": 553.62,
    "lmax64_tca_on": 378.10,
}

flops = {m.group(1): int(m.group(2))
         for m in re.finditer(r"^flops: (\S+) (\d+)$", out, re.M)}
medians = {m.group(1): float(m.group(2))
           for m in re.finditer(
               r"^bench: rhs_eval/(\S+) median ([0-9.]+) ns/iter", out, re.M)}
assert set(medians) == set(baseline), f"cases changed: {sorted(medians)}"

cases = {}
for case, ns in sorted(medians.items()):
    f = flops.get(case, 0)
    cases[case] = {
        "median_ns_per_eval": ns,
        "flops_per_eval": f,
        "mflops": round(f / ns * 1e3, 1) if ns > 0 else 0.0,
        "baseline_ns_per_eval": baseline[case],
        "speedup_vs_baseline": round(baseline[case] / ns, 2),
    }

snapshot = {
    "schema": "plinger.bench_rhs/1",
    "bench": "rhs_eval (single LingerRhs::eval call, seeded dense state)",
    "cases": cases,
}
with open("BENCH_rhs.json", "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")

worst = min(c["speedup_vs_baseline"] for c in cases.values())
print(f"bench_snapshot: wrote BENCH_rhs.json (worst-case speedup {worst}x)")
EOF
