#!/usr/bin/env bash
# Re-measure a benchmark and snapshot the result at the repo root.
#
#   bench_snapshot.sh          # RHS microbench         -> BENCH_rhs.json
#   bench_snapshot.sh serve    # service under load     -> BENCH_serve.json
#   bench_snapshot.sh los      # LOS vs full hierarchy  -> BENCH_los.json
#   bench_snapshot.sh ensemble # sweep vs fresh farms   -> BENCH_ensemble.json
#
# RHS mode: the baseline numbers below are the medians of the same
# bench measured on this machine immediately BEFORE the shared-cache +
# vectorizable-kernel rework of the RHS (per-call spline bisection,
# index-chasing hierarchy loops).  The snapshot records the current
# medians, the flop census per evaluation, and the speedup against
# that pinned baseline.
#
# Serve mode: drives a warm plinger-serve pool with concurrent
# clients over a repeating grid mix and records the request-latency
# quantiles (total / queue-wait / run, milliseconds) from the
# service's own tag-26 metrics payload (see docs/OBSERVABILITY.md).
#
# LOS mode: end-to-end wall clock of the full moment hierarchy versus
# the line-of-sight fast path on the identical thinned k-grid (demo
# preset) at l_max 500 and 1500, plus the matched-l band deviation
# between the two methods (see crates/bench/src/bin/los_speedup.rs).
#
# Ensemble mode: the 3×2×2 Ω_b × h × n_s transfer-function cube on one
# warm pool (shard queue + prefetch) versus a fresh farm per cosmology
# and versus the naive pool-over-flattened-grid loop that rebuilds the
# background/recomb tables in every (cosmology, k) task, at pool sizes
# 1/2/4.  The cube hash must be identical everywhere — the snapshot
# records throughput, never physics (see
# crates/bench/src/bin/ensemble.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-rhs}"

if [ "$mode" = "los" ]; then
    cargo build -q --release -p bench --bin los_speedup
    out=""
    for args in "500 8" "1500 24"; do
        # shellcheck disable=SC2086
        run="$(target/release/los_speedup $args 2>&1)"
        echo "$run"
        out="$out$run"$'\n'
    done
    BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

out = os.environ["BENCH_OUT"]

# thin factors pinned above; both methods always see the same grid
thin = {"500": 8, "1500": 24}

cases = {}
for m in re.finditer(
    r"^bench: los_speedup/lmax(\d+) full_s=([0-9.]+) los_s=([0-9.]+) "
    r"speedup=([0-9.]+) modes=(\d+) band_dev=([0-9.]+)$",
    out,
    re.M,
):
    lmax, full_s, los_s, speedup, modes, dev = m.groups()
    cases[f"lmax{lmax}"] = {
        "l_max": int(lmax),
        "modes": int(modes),
        "thin": thin[lmax],
        "full_hierarchy_s": float(full_s),
        "line_of_sight_s": float(los_s),
        "speedup_vs_baseline": float(speedup),
        "matched_l_band_dev": float(dev),
    }
assert set(cases) == {"lmax500", "lmax1500"}, f"cases: {sorted(cases)}"

snapshot = {
    "schema": "plinger.bench_los/1",
    "bench": "full hierarchy vs line-of-sight fast path, equal thinned "
             "k-grid (demo preset, ChannelWorld farm)",
    "baseline": "full moment hierarchy evolved to l_max on the same grid",
    "cases": cases,
}
with open("BENCH_los.json", "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")

worst = min(c["speedup_vs_baseline"] for c in cases.values())
dev = max(c["matched_l_band_dev"] for c in cases.values())
print(
    f"bench_snapshot: wrote BENCH_los.json "
    f"(worst-case speedup {worst}x, worst band deviation {dev})"
)
EOF
    exit 0
fi

if [ "$mode" = "ensemble" ]; then
    cargo build -q --release -p bench --bin ensemble
    out=""
    for w in 1 2 4; do
        run="$(target/release/ensemble "$w" 6 2>&1)"
        echo "$run"
        out="$out$run"$'\n'
    done
    BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

out = os.environ["BENCH_OUT"]

cases = {}
for m in re.finditer(
    r"^bench: ensemble/3x2x2/w(\d+) shards=(\d+) modes=(\d+) "
    r"naive_s=([0-9.]+) fresh_s=([0-9.]+) warm_s=([0-9.]+) "
    r"speedup_naive=([0-9.]+) speedup=([0-9.]+) "
    r"shards_per_hour=(\d+) ctx_rebuilds=(\d+) prefetch_builds=(\d+) "
    r"cube_fnv=([0-9a-f]+)$",
    out,
    re.M,
):
    (w, shards, modes, naive, fresh, warm, sp_naive, speedup, sph,
     ctx, pre, fnv) = m.groups()
    cases[f"w{w}"] = {
        "workers": int(w),
        "shards": int(shards),
        "modes_per_shard": int(modes),
        "naive_per_task_s": float(naive),
        "fresh_farms_s": float(fresh),
        "warm_pool_s": float(warm),
        "speedup_vs_naive": float(sp_naive),
        "speedup_vs_fresh": float(speedup),
        "shards_per_hour": int(sph),
        "ctx_rebuilds": int(ctx),
        "prefetch_builds": int(pre),
        "cube_fnv": fnv,
    }
assert set(cases) == {"w1", "w2", "w4"}, f"cases: {sorted(cases)}"

# the cube is physics: every pool size must produce the identical bits
fnvs = {c["cube_fnv"] for c in cases.values()}
assert len(fnvs) == 1, f"transfer cube not pinned across pool sizes: {fnvs}"

# amortization: on the multi-worker pools the critical-path context
# rebuilds stay below the shards × workers cold-pool worst case, and
# the warm pool beats the rebuild-per-task loop at every pool size
for c in cases.values():
    if c["workers"] > 1:
        assert c["ctx_rebuilds"] < c["shards"] * c["workers"], c
    assert c["speedup_vs_naive"] > 1.0, c

snapshot = {
    "schema": "plinger.bench_ensemble/1",
    "bench": "3x2x2 omega_b/h/n_s transfer-function cube: warm pool + "
             "shard queue + prefetch vs fresh farm per cosmology vs "
             "naive per-(cosmology, k) task loop (draft preset, "
             "ChannelWorld)",
    "baselines": {
        "naive": "one single-mode run per (cosmology, k), tables "
                 "rebuilt in every task",
        "fresh": "fresh Farm spawn per cosmology, cold physics caches",
    },
    "cases": cases,
}
with open("BENCH_ensemble.json", "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")

best = max(c["speedup_vs_naive"] for c in cases.values())
peak = max(c["shards_per_hour"] for c in cases.values())
print(
    f"bench_snapshot: wrote BENCH_ensemble.json "
    f"(best speedup {best}x vs rebuild-per-task, peak {peak} shards/hour)"
)
EOF
    exit 0
fi

if [ "$mode" = "serve" ]; then
    clients=4
    per_client=8
    total=$((clients * per_client))
    cargo build -q --release -p plinger --bin plinger-serve
    serve_bin="target/release/plinger-serve"
    bench_dir="$(mktemp -d)"
    trap 'rm -rf "$bench_dir"' EXIT
    serve_log="$bench_dir/serve.log"
    # +1 connection for the final metrics query
    "$serve_bin" --listen 127.0.0.1:0 --transport channel --workers 2 \
        --max-requests $((total + 1)) \
        > "$serve_log" 2> "$bench_dir/serve.err" &
    serve_pid=$!
    serve_addr=""
    for _ in $(seq 1 100); do
        serve_addr="$(sed -n 's/^plinger-serve: listening on //p' "$serve_log")"
        [ -n "$serve_addr" ] && break
        sleep 0.1
    done
    [ -n "$serve_addr" ] || { echo "plinger-serve never came up"; cat "$bench_dir/serve.err"; exit 1; }
    # concurrent load: each client cycles a small grid mix, so the pool
    # sees a hit-heavy stream with a cold miss per distinct grid
    load_pids=()
    for c in $(seq 1 "$clients"); do
        (
            for r in $(seq 1 "$per_client"); do
                nk=$((3 + (c + r) % 4))
                "$serve_bin" --connect "$serve_addr" --preset draft \
                    --kmin 4e-4 --kmax 2e-3 --nk "$nk" > /dev/null
            done
        ) &
        load_pids+=("$!")
    done
    for p in "${load_pids[@]}"; do wait "$p"; done
    "$serve_bin" --connect "$serve_addr" --preset draft \
        --kmin 4e-4 --kmax 2e-3 --nk 3 --metrics > "$bench_dir/metrics.txt"
    wait "$serve_pid"
    BENCH_DIR="$bench_dir" CLIENTS="$clients" PER_CLIENT="$per_client" python3 - <<'EOF'
import json, os, re

d = os.environ["BENCH_DIR"]
out = open(os.path.join(d, "metrics.txt")).read()

counters = dict(kv.split("=", 1) for kv in out.split() if "=" in kv)
lat = re.search(
    r"total_ms p50=([\d.]+) p99=([\d.]+)\s+"
    r"queue_ms p50=([\d.]+) p99=([\d.]+)\s+"
    r"run_ms p50=([\d.]+) p99=([\d.]+)",
    out,
)
assert lat, f"no latency summary in client output: {out!r}"
v = [float(x) for x in lat.groups()]

snapshot = {
    "schema": "plinger.bench_serve/1",
    "bench": "plinger-serve under concurrent client load (draft preset)",
    "load": {
        "clients": int(os.environ["CLIENTS"]),
        "requests_per_client": int(os.environ["PER_CLIENT"]),
        "distinct_grids": 4,
        "workers": 2,
    },
    "requests": int(counters["requests"]),
    "cache_hits": int(counters["hits"]),
    "cache_misses": int(counters["misses"]),
    "pool_jobs": int(counters["jobs"]),
    "latency_ms": {
        "total": {"p50": v[0], "p99": v[1]},
        "queue_wait": {"p50": v[2], "p99": v[3]},
        "run": {"p50": v[4], "p99": v[5]},
    },
}
with open("BENCH_serve.json", "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")
print(
    f"bench_snapshot: wrote BENCH_serve.json "
    f"(total p50 {v[0]} ms, p99 {v[1]} ms over {counters['requests']} requests)"
)
EOF
    exit 0
fi

out="$(cargo bench -p bench --bench rhs_eval 2>&1)"
echo "$out"

BENCH_OUT="$out" python3 - <<'EOF'
import json, os, re

out = os.environ["BENCH_OUT"]

# medians the seed RHS produced before the cache/kernel rework (ns/eval)
baseline = {
    "lmax16_tca_off": 344.46,
    "lmax16_tca_on": 197.25,
    "lmax64_tca_off": 553.62,
    "lmax64_tca_on": 378.10,
}

flops = {m.group(1): int(m.group(2))
         for m in re.finditer(r"^flops: (\S+) (\d+)$", out, re.M)}
medians = {m.group(1): float(m.group(2))
           for m in re.finditer(
               r"^bench: rhs_eval/(\S+) median ([0-9.]+) ns/iter", out, re.M)}
assert set(medians) == set(baseline), f"cases changed: {sorted(medians)}"

cases = {}
for case, ns in sorted(medians.items()):
    f = flops.get(case, 0)
    cases[case] = {
        "median_ns_per_eval": ns,
        "flops_per_eval": f,
        "mflops": round(f / ns * 1e3, 1) if ns > 0 else 0.0,
        "baseline_ns_per_eval": baseline[case],
        "speedup_vs_baseline": round(baseline[case] / ns, 2),
    }

snapshot = {
    "schema": "plinger.bench_rhs/1",
    "bench": "rhs_eval (single LingerRhs::eval call, seeded dense state)",
    "cases": cases,
}
with open("BENCH_rhs.json", "w") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")

worst = min(c["speedup_vs_baseline"] for c in cases.values())
print(f"bench_snapshot: wrote BENCH_rhs.json (worst-case speedup {worst}x)")
EOF
