#!/usr/bin/env python3
"""Generate tests/golden.rs from dump_reference output.

Usage: target/release/dump_reference | scripts/gen_golden.py
"""
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

TEMPLATE = '''//! Golden regression values for the reference SCDM modes.
//!
//! These constants pin the numerical output of the full pipeline
//! (background → recombination → Boltzmann) for three wavenumbers at
//! Draft accuracy.  They are NOT external truth — they exist to catch
//! unintended changes.  After an *intentional* physics change,
//! regenerate with `cargo run --release -p bench --bin dump_reference |
//! scripts/gen_golden.py`.

use background::{{Background, CosmoParams}};
use boltzmann::{{evolve_mode, Gauge, ModeConfig, Preset}};
use recomb::ThermoHistory;
use std::sync::OnceLock;

{constants}

fn ctx() -> &'static (Background, ThermoHistory) {{
    static CTX: OnceLock<(Background, ThermoHistory)> = OnceLock::new();
    CTX.get_or_init(|| {{
        let bg = Background::new(CosmoParams::standard_cdm());
        let th = ThermoHistory::new(&bg);
        (bg, th)
    }})
}}

fn run(k: f64) -> boltzmann::ModeOutput {{
    let (bg, th) = ctx();
    let cfg = ModeConfig {{
        gauge: Gauge::Synchronous,
        preset: Preset::Draft,
        lmax_g: Some(40),
        lmax_nu: Some(40),
        ..Default::default()
    }};
    evolve_mode(bg, th, k, &cfg).unwrap()
}}

/// libm differences across platforms justify a loose-ish bound; any real
/// regression moves these quantities by far more.
const TOL: f64 = 1e-6;

fn check(label: &str, got: f64, expect: f64) {{
    let rel = (got - expect).abs() / expect.abs().max(1e-300);
    assert!(rel < TOL, "{{label}}: got {{got:?}}, expected {{expect:?}} (rel {{rel:.2e}})");
}}

#[test]
fn background_reference_values() {{
    let (bg, th) = ctx();
    check("tau0", bg.tau0(), TAU0);
    check("z_rec", th.z_rec(), Z_REC);
    check("tau_rec", th.tau_rec(), TAU_REC);
}}

{tests}
'''

TEST_TEMPLATE = '''#[test]
fn golden_mode_{name}() {{
    let out = run({k});
    check("delta_c", out.delta_c, {label}_DELTA_C);
    check("delta_b", out.delta_b, {label}_DELTA_B);
    check("delta_g", out.delta_g, {label}_DELTA_G);
    check("phi", out.phi, {label}_PHI);
    check("psi", out.psi, {label}_PSI);
    check("theta2", out.delta_t[2], {label}_THETA2);
    check("theta10", out.delta_t[10], {label}_THETA10);
}}
'''


def main() -> int:
    text = sys.stdin.read()
    consts = [
        line for line in text.splitlines() if line.startswith(("pub const", "//"))
    ]
    constants = "\n".join(consts)
    tests = []
    for label, k in [("K1E3", "1.0e-3"), ("K1E2", "1.0e-2"), ("K5E2", "5.0e-2")]:
        if f"{label}_DELTA_C" not in text:
            print(f"missing {label} constants", file=sys.stderr)
            return 1
        tests.append(
            TEST_TEMPLATE.format(name=label.lower(), k=k, label=label)
        )
    out = TEMPLATE.format(constants=constants, tests="\n".join(tests))
    # the template braces: TEMPLATE uses doubled braces for literals
    (ROOT / "tests" / "golden.rs").write_text(out)
    print("wrote tests/golden.rs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
