#!/usr/bin/env bash
# Regenerate every paper artifact and capture the outputs under results/.
# Usage: scripts/run_experiments.sh [quick|full]
set -euo pipefail
cd "$(dirname "$0")/.."
mode="${1:-quick}"

cargo build --release -p bench --bins

mkdir -p results
run() {
    local name="$1"; shift
    echo "== $name =="
    ./target/release/"$name" "$@" | tee "results/${name}.txt"
}

run validate
run tab_messages
run tab_flops
run fig1_scaling
run abl_sched
if [ "$mode" = "full" ]; then
    run fig2_spectrum 500
    run fig3_skymap 300
else
    run fig2_spectrum 300
    run fig3_skymap 200
fi
run movie_psi 12 64

echo "All experiment outputs are in results/"
