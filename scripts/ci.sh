#!/usr/bin/env bash
# The repo's one-stop gate: formatting, lints (warnings are errors),
# docs, the full test suite, and a telemetry smoke run.  Run before
# every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== telemetry smoke run =="
# a tiny farm must produce a parseable run report with a sane
# efficiency, plus a chrome-tracing span file
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cargo run -q --release -p plinger --bin plinger -- \
    --preset draft --nk 3 --kmin 4e-4 --kmax 2e-3 --workers 2 \
    --telemetry json --trace-out "$smoke_dir/trace.json" \
    --output "$smoke_dir/smoke" > "$smoke_dir/report.json"
python3 - "$smoke_dir" <<'EOF'
import json, sys, os
d = sys.argv[1]
report = json.load(open(os.path.join(d, "report.json")))
assert report["schema"] == "plinger.run_report/2", report.get("schema")
eff = report["run"]["efficiency"]
assert 0.0 < eff <= 1.0, f"efficiency {eff} out of (0, 1]"
assert len(report["modes"]) == 3, len(report["modes"])
assert report["run"]["workers"] == 2
rec = report["recovery"]
assert rec["requeues"] == 0 and rec["respawns"] == 0, rec
assert rec["failed_modes"] == [], rec
on_disk = json.load(open(os.path.join(d, "smoke.run_report.json")))
assert on_disk == report, "stdout JSON and run_report.json file differ"
trace = json.load(open(os.path.join(d, "trace.json")))
assert trace and all(ev["ph"] == "X" for ev in trace), "bad trace events"
assert all("pid" in ev and "tid" in ev and "ts" in ev and "dur" in ev for ev in trace)
print(f"smoke: efficiency {eff:.3f}, {len(trace)} trace events")
EOF

echo "== service smoke run =="
# spectrum-as-a-service: a warm pool behind plinger-serve must answer
# two identical requests with one cache hit (bitwise-equal bodies, no
# second pool job) and a distinct request with a fresh run; the
# Prometheus listener is scraped mid-run over raw /dev/tcp
cargo build -q --release -p plinger --bin plinger-serve
serve_bin="target/release/plinger-serve"
serve_log="$smoke_dir/serve.log"
"$serve_bin" --listen 127.0.0.1:0 --metrics-addr 127.0.0.1:0 \
    --transport channel --workers 2 \
    --max-requests 3 > "$serve_log" 2> "$smoke_dir/serve.err" &
serve_pid=$!
serve_addr=""
metrics_addr=""
for _ in $(seq 1 100); do
    serve_addr="$(sed -n 's/^plinger-serve: listening on //p' "$serve_log")"
    metrics_addr="$(sed -n 's/^plinger-serve: metrics on //p' "$serve_log")"
    [ -n "$serve_addr" ] && [ -n "$metrics_addr" ] && break
    sleep 0.1
done
[ -n "$serve_addr" ] || { echo "plinger-serve never came up"; cat "$smoke_dir/serve.err"; exit 1; }
[ -n "$metrics_addr" ] || { echo "metrics listener never came up"; cat "$smoke_dir/serve.err"; exit 1; }
req() { "$serve_bin" --connect "$serve_addr" --preset draft \
        --kmin 4e-4 --kmax 2e-3 "$@"; }
# one HTTP/1.0 GET over bash's /dev/tcp — no curl dependency
scrape() {
    exec 3<>"/dev/tcp/${metrics_addr%:*}/${metrics_addr##*:}"
    printf 'GET %s HTTP/1.0\r\n\r\n' "$1" >&3
    cat <&3
    exec 3>&-
}
health="$(scrape /healthz)"
case "$health" in
    *"200 OK"*) ;;
    *) echo "healthz not ready: $health"; exit 1 ;;
esac
r1="$(req --nk 3)"
r2="$(req --nk 3)"
# scrape while the server is still running: the listener must answer
# without touching the request path
scrape /metrics > "$smoke_dir/scrape.txt"
r3="$(req --nk 4)"
wait "$serve_pid"
python3 - "$r1" "$r2" "$r3" "$serve_log" "$smoke_dir/scrape.txt" <<'EOF'
import sys
r1, r2, r3 = (dict(kv.split("=", 1) for kv in line.split()) for line in sys.argv[1:4])
assert r1["cache_hit"] == "0", r1
assert r2["cache_hit"] == "1", "identical request did not hit the cache"
assert r3["cache_hit"] == "0", r3
# the cache hit replayed the exact bytes of the first response
assert r1["fnv"] == r2["fnv"], (r1["fnv"], r2["fnv"])
assert r1["fnv"] != r3["fnv"], "distinct jobs returned identical bodies"
assert r1["outputs"] == "3" and r3["outputs"] == "4", (r1, r3)
summary = open(sys.argv[4]).read()
assert "served 3 requests, cache hits=1 misses=2, pool jobs=2" in summary, summary
# the mid-run scrape saw both requests and the stability-contract names
scrape = open(sys.argv[5]).read()
for needle in (
    "plinger_requests_total 2",
    "plinger_cache_hits_total 1",
    "plinger_cache_misses_total 1",
    "plinger_pool_jobs_total 1",
    "plinger_workers_alive 2",
    "plinger_request_total_ns_count 2",
    'plinger_request_total_ns_bucket{le="+Inf"} 2',
):
    assert needle in scrape, f"scrape missing {needle!r}"
print(f"service smoke: 1 hit / 2 misses, body fnv {r1['fnv']}, /metrics live")
EOF

echo "== chaos soak =="
# request-lifecycle robustness under fire: a stall-and-vanish worker
# fault, a queue limit small enough to shed the burst, clients with
# expired deadlines racing clients without, then a SIGTERM drain and a
# kill-and-restart cycle over the persistent cache.  Asserts: every
# client exits (no wedged requests), deadline clients fail with the
# typed deadline error, unbounded clients succeed despite shedding and
# the fault, the drain exits 0, and the restarted server serves the
# old request from --cache-dir bitwise-identically.
chaos_cache="$smoke_dir/chaos_cache"
chaos_out="$smoke_dir/chaos_out"
mkdir -p "$chaos_cache" "$chaos_out"
chaos_log="$smoke_dir/chaos.log"
"$serve_bin" --listen 127.0.0.1:0 --transport channel --workers 2 \
    --recovery requeue --respawn-limit 4 --fault stall:1:0:200 \
    --queue-limit 2 --drain-timeout 5000 --cache-dir "$chaos_cache" \
    > "$chaos_log" 2> "$smoke_dir/chaos.err" &
chaos_pid=$!
chaos_addr=""
for _ in $(seq 1 100); do
    chaos_addr="$(sed -n 's/^plinger-serve: listening on //p' "$chaos_log")"
    [ -n "$chaos_addr" ] && break
    sleep 0.1
done
[ -n "$chaos_addr" ] || { echo "chaos server never came up"; cat "$smoke_dir/chaos.err"; exit 1; }
creq() { timeout 120 "$serve_bin" --connect "$chaos_addr" --preset draft \
        --kmin 4e-4 --kmax 2e-3 "$@"; }
ok_pids=()
for nk in 3 4 5; do
    creq --nk "$nk" --retries 10 --retry-base-ms 40 \
        > "$chaos_out/ok_$nk.out" 2> "$chaos_out/ok_$nk.err" &
    ok_pids+=($!)
done
dead_pids=()
for nk in 6 7; do
    creq --nk "$nk" --deadline-ms 1 --retries 10 --retry-base-ms 40 \
        > "$chaos_out/dead_$nk.out" 2> "$chaos_out/dead_$nk.err" &
    dead_pids+=($!)
done
for pid in "${ok_pids[@]}"; do
    wait "$pid" || { echo "unbounded chaos client failed"; cat "$chaos_out"/ok_*.err; exit 1; }
done
for pid in "${dead_pids[@]}"; do
    status=0; wait "$pid" || status=$?
    [ "$status" -ne 0 ] || { echo "1 ms deadline was served"; exit 1; }
    [ "$status" -ne 124 ] || { echo "deadline client wedged (timeout)"; exit 1; }
done
grep -q "deadline" "$chaos_out"/dead_6.err && grep -q "deadline" "$chaos_out"/dead_7.err \
    || { echo "deadline clients died without the typed error"; cat "$chaos_out"/dead_*.err; exit 1; }
kill -TERM "$chaos_pid"
drain_status=0; wait "$chaos_pid" || drain_status=$?
[ "$drain_status" -eq 0 ] || { echo "drain exited $drain_status"; cat "$smoke_dir/chaos.err"; exit 1; }
grep -q "served " "$chaos_log" || { echo "no summary after drain"; cat "$chaos_log"; exit 1; }
# kill-and-restart: a fresh process on the same --cache-dir must serve
# the round-1 job from disk, byte-for-byte
"$serve_bin" --listen 127.0.0.1:0 --transport channel --workers 2 \
    --max-requests 1 --cache-dir "$chaos_cache" \
    > "$smoke_dir/chaos2.log" 2>> "$smoke_dir/chaos.err" &
chaos2_pid=$!
chaos_addr=""
for _ in $(seq 1 100); do
    chaos_addr="$(sed -n 's/^plinger-serve: listening on //p' "$smoke_dir/chaos2.log")"
    [ -n "$chaos_addr" ] && break
    sleep 0.1
done
[ -n "$chaos_addr" ] || { echo "restarted server never came up"; cat "$smoke_dir/chaos.err"; exit 1; }
r_restart="$(creq --nk 3)"
wait "$chaos2_pid" || { echo "restarted server exited abnormally"; exit 1; }
python3 - "$r_restart" "$chaos_out/ok_3.out" <<'EOF'
import sys
restart = dict(kv.split("=", 1) for kv in sys.argv[1].split())
orig = dict(kv.split("=", 1) for kv in open(sys.argv[2]).read().split())
assert restart["cache_hit"] == "1", "restart lost the persistent cache"
assert restart["fnv"] == orig["fnv"], (restart["fnv"], orig["fnv"])
print(f"chaos soak: survived stall fault, shed burst, drain, restart; fnv {orig['fnv']}")
EOF

echo "== ensemble smoke =="
# ensemble sharding end to end at serve level: a tiny 2×2 Ω_b × h sweep
# streams four tag-23 shard frames (all cold), the identical repeat is
# served entirely from the result cache with bitwise-equal bodies, and
# a single-spectrum request for one swept cosmology crosses over into
# the shard cache (shared job-hash keys).  The bitwise-vs-serial leg of
# the gate is the dedicated differential suite below.
ens_log="$smoke_dir/ens.log"
"$serve_bin" --listen 127.0.0.1:0 --transport channel --workers 2 \
    --max-requests 3 > "$ens_log" 2> "$smoke_dir/ens.err" &
ens_pid=$!
ens_addr=""
for _ in $(seq 1 100); do
    ens_addr="$(sed -n 's/^plinger-serve: listening on //p' "$ens_log")"
    [ -n "$ens_addr" ] && break
    sleep 0.1
done
[ -n "$ens_addr" ] || { echo "ensemble server never came up"; cat "$smoke_dir/ens.err"; exit 1; }
ereq() { "$serve_bin" --connect "$ens_addr" --preset draft \
        --kmin 4e-4 --kmax 2e-3 --nk 3 "$@"; }
e1="$(ereq --ensemble --sweep-omega-b 0.03,0.06 --sweep-h 0.5,0.7)"
e2="$(ereq --ensemble --sweep-omega-b 0.03,0.06 --sweep-h 0.5,0.7)"
e3="$(ereq --omega-b 0.06 --h 0.7)"
wait "$ens_pid"
python3 - "$e1" "$e2" "$e3" <<'EOF'
import sys
def shards(out):
    rows = [dict(kv.split("=", 1) for kv in l.split())
            for l in out.splitlines() if l.startswith("shard=")]
    assert [r["shard"] for r in rows] == [f"{i}/4" for i in range(4)], rows
    return rows
s1, s2 = shards(sys.argv[1]), shards(sys.argv[2])
assert all(r["cache_hit"] == "0" for r in s1), s1
assert all(r["cache_hit"] == "1" for r in s2), "repeat sweep missed the cache"
for a, b in zip(s1, s2):
    assert a["fnv"] == b["fnv"], "cached shard bytes moved"
assert "ensemble shards=4 ok=4 hits=0" in sys.argv[1], sys.argv[1]
assert "ensemble shards=4 ok=4 hits=4" in sys.argv[2], sys.argv[2]
single = dict(kv.split("=", 1) for kv in sys.argv[3].split())
assert single["cache_hit"] == "1", "single request missed the shard cache"
# canonical shard order is omega_b-major, h-fast: (0.06, 0.7) is shard 3
assert single["fnv"] == s1[3]["fnv"], (single["fnv"], s1[3]["fnv"])
print(f"ensemble smoke: 4 cold + 4 cached shards, crossover hit, fnv {single['fnv']}")
EOF

echo "== metric-name stability =="
# the exposition names are a stability contract pinned against
# docs/OBSERVABILITY.md
cargo test -q -p plinger --test observability

echo "== hot-path differential layer =="
# the RHS fast path (hunted spline caches, chunked assignment) is
# pinned against the direct implementations by dedicated differential
# suites; run them explicitly so a cache-coherence regression names
# itself in the CI log
cargo test -q -p background --test cache_differential
cargo test -q -p recomb --test cache_differential
cargo test -q --test farm_transports chunked
cargo test -q --test recovery_matrix chunk

echo "== los differential smoke =="
# the line-of-sight fast path (truncated hierarchy + source recorder +
# Bessel projection) pinned against the untruncated hierarchy on a
# matched l band at draft accuracy — the full Demo-grade crosschecks
# and golden C_l gates ride the workspace suite above; this names the
# fast path explicitly in the CI log
cargo test -q --test los_crosscheck draft_smoke

echo "== rhs bench smoke =="
# compile-and-run-once smoke of the microbench behind BENCH_rhs.json
# (full measurement is scripts/bench_snapshot.sh, not a CI gate)
cargo bench -p bench --bench rhs_eval -- --test

echo "== los bench smoke =="
# compile-and-run-once smoke of the end-to-end method comparison behind
# BENCH_los.json (tiny grid: l_max 60, every 16th k) — asserts nothing
# beyond "runs and prints a parseable line"; full measurement is
# scripts/bench_snapshot.sh los
cargo run -q --release -p bench --bin los_speedup 60 16 \
    | grep -q "^bench: los_speedup/lmax60 "

echo "== fault matrix =="
# the recovery tests sweep every FaultPlan variant over the channel and
# shmem worlds (recovery_matrix), the raw fault seam (msgpass fault
# unit tests), and the TCP subprocess deployment (tcp_recovery:
# respawn and requeue-only); FailFast semantics are pinned by
# farm_transports.  Run them explicitly so a fault-handling regression
# names itself in the CI log.
cargo test -q --test recovery_matrix
cargo test -q -p plinger --test tcp_recovery --test protocol_compat
cargo test -q -p msgpass fault::

echo "== warm-pool determinism =="
# pooled jobs must stay bitwise-identical to fresh farms with caches
# rebuilt only on cosmology change, and the canonical hashes the
# caches key on are pinned to golden values
cargo test -q -p plinger --test pool_sessions --test canonical_hash --test serve

echo "== ensemble differential layer =="
# the two-level sweep scheduler pinned bitwise against the serial loop
# of single-cosmology jobs, with shard requeue and mid-shard worker
# kill; the channel-transport leg is the bitwise-vs-serial assert of
# the ensemble smoke gate above (shmem/tcp legs ride the same suite)
cargo test -q --test ensemble_pinning

echo "== ensemble bench smoke =="
# compile-and-run-once smoke of the sweep-throughput bench behind
# BENCH_ensemble.json (2 workers, 2 modes/shard); the bin itself
# asserts the warm-pool cube is bitwise-identical to fresh farms
cargo run -q --release -p bench --bin ensemble 2 2 \
    | grep -q "^bench: ensemble/3x2x2/w2 "

echo "ci: all green"
