#!/usr/bin/env bash
# The repo's one-stop gate: formatting, lints (warnings are errors), and
# the full test suite.  Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "ci: all green"
