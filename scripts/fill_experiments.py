#!/usr/bin/env python3
"""Splice captured experiment outputs into EXPERIMENTS.md.

Replaces each `<!-- NAME_RESULTS -->` marker with a fenced code block
containing `results/<file>.txt` (optionally truncated).
"""
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
MAP = {
    "FIG1_RESULTS": ("fig1_scaling.txt", None),
    "FIG2_RESULTS": ("fig2_spectrum.txt", None),
    "FIG3_RESULTS": ("fig3_skymap.txt", None),
    "FLOPS_RESULTS": ("tab_flops.txt", None),
    "MESSAGES_RESULTS": ("tab_messages.txt", None),
    "SCHED_RESULTS": ("abl_sched.txt", None),
    "MOVIE_RESULTS": ("movie_psi.txt", 40),
}


def main() -> int:
    md_path = ROOT / "EXPERIMENTS.md"
    text = md_path.read_text()
    for marker, (fname, limit) in MAP.items():
        path = ROOT / "results" / fname
        tag = f"<!-- {marker} -->"
        if tag not in text:
            print(f"marker {tag} missing", file=sys.stderr)
            continue
        if not path.exists():
            print(f"results file {path} missing; leaving marker", file=sys.stderr)
            continue
        lines = path.read_text().splitlines()
        if limit and len(lines) > limit:
            lines = lines[:limit] + [f"… ({len(lines) - limit} more lines)"]
        block = "```text\n" + "\n".join(lines) + "\n```"
        text = text.replace(tag, block)
    md_path.write_text(text)
    print("EXPERIMENTS.md updated")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
