//! Linear matter power spectrum and σ₈ for the paper's standard CDM
//! model — the large-scale-structure half of LINGER's output.
//!
//! ```text
//! cargo run --release --example matter_power [n_k] [n_workers]
//! ```

use plinger_repro::prelude::*;
use spectra::matter::bbks_transfer;

fn main() {
    let n_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(33);
    let n_workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    let ks = matter_k_grid(1e-4, 1.0, n_k);
    let spec = RunSpec::standard_cdm(ks);
    println!("# {} modes on {} workers", n_k, n_workers);
    let report = Farm::<ChannelWorld>::new(n_workers)
        .run(&spec, SchedulePolicy::LargestFirst)
        .expect("farm run");

    let prim = PrimordialSpectrum::unit(spec.cosmo.n_s);
    let (omega_c, omega_b, h) = (spec.cosmo.omega_c, spec.cosmo.omega_b, spec.cosmo.h);
    let mp = matter_power_spectrum(&report.outputs, &prim, omega_c, omega_b);

    // COBE-normalize via the SW quadrupole of the same run? The matter
    // normalization conventionally quotes σ₈ after CMB normalization;
    // here we normalize so σ₈ reproduces the classic COBE-normalized
    // SCDM value when the amplitude is fixed by the C_l pipeline.  For a
    // standalone example we report shape + a unit-amplitude σ₈.
    let sigma8_unit = sigma_r(&mp, 8.0 / h);
    println!("# unit-amplitude σ(8 Mpc/h) = {sigma8_unit:.4e}  (× √A_ψ after COBE normalization)");

    let gamma_h = omega_c.max(0.0) * 0.0 + 0.5 * h * (-(omega_b) * (1.0 + (2.0 * h).sqrt())).exp();
    println!("#\n#   k [Mpc⁻¹]      T(k)        BBKS(Γ)      P(k)/A [Mpc³]");
    for (i, &k) in mp.k.iter().enumerate() {
        println!(
            "{k:12.5e}  {t:11.5e}  {b:11.5e}  {p:12.5e}",
            t = mp.t[i],
            b = bbks_transfer(k, gamma_h),
            p = mp.p[i]
        );
    }
}
