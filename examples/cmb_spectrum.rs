//! CMB anisotropy spectrum: a miniature of the paper's Figure 2 —
//! run the PLINGER farm over a k-grid, assemble `l(l+1)C_l/2π`, and
//! normalize to the COBE `Q_rms−PS`.
//!
//! ```text
//! cargo run --release --example cmb_spectrum [l_max] [n_workers]
//! ```
//!
//! The default `l_max = 60` takes ~a minute on a laptop; the Figure-2
//! bench binary (`fig2_spectrum`) pushes to the acoustic peaks.

use plinger_repro::prelude::*;

fn main() {
    let l_max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let n_workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });

    // a dense-enough grid to resolve the Δ_l(k) oscillations (Δk ≈ π/2τ₀)
    let bg_probe = Background::new(CosmoParams::standard_cdm());
    let ks = cl_k_grid(bg_probe.tau0(), l_max, 2.0);
    println!(
        "# PLINGER run: {} modes to k = {:.4} Mpc⁻¹ on {} workers (largest-k-first)",
        ks.len(),
        ks.last().unwrap(),
        n_workers
    );

    let spec = RunSpec::standard_cdm(ks);
    let report = Farm::<ChannelWorld>::new(n_workers)
        .run(&spec, SchedulePolicy::LargestFirst)
        .expect("farm run");
    println!(
        "# wall {:.1} s, total worker CPU {:.1} s, efficiency {:.1}%, {:.1} Mflop/s aggregate",
        report.wall_seconds,
        report.total_cpu_seconds(),
        100.0 * report.parallel_efficiency(),
        report.mflops()
    );

    let prim = PrimordialSpectrum::unit(spec.cosmo.n_s);
    let raw = angular_power_spectrum(&report.outputs, &prim, l_max);
    let (cl, amp) = cobe_normalize(&raw, spec.cosmo.t_cmb_k, Q_RMS_PS_UK);
    println!(
        "# COBE normalization: Q_rms−PS = {Q_RMS_PS_UK} µK → primordial amplitude {:.3e}",
        amp
    );

    let t0_uk2 = (spec.cosmo.t_cmb_k * 1.0e6).powi(2);
    println!("#\n# l   l(l+1)C_l/2π [µK²]   (temperature)   [polarization]");
    for l in (2..=l_max).step_by((l_max / 30).max(1)) {
        let lf = l as f64;
        let band_t = cl.band_power(l) * t0_uk2;
        let band_p = lf * (lf + 1.0) * cl.cl_pol[l] / (2.0 * std::f64::consts::PI) * t0_uk2;
        println!("{l:5}  {band_t:14.3}        {band_p:12.5}");
    }
}
