//! Simulated CMB sky map — a miniature of the paper's Figure 3.
//!
//! Computes a `C_l` spectrum with the farm, draws Gaussian `a_lm`,
//! synthesizes a temperature map, prints its statistics (the paper
//! quotes extrema ≈ ±200 µK around T = 2.726 K), and writes a PGM image.
//!
//! ```text
//! cargo run --release --example sky_map [l_max] [seed]
//! ```

use plinger_repro::prelude::*;
use skymap::pgm::{symmetric_range, write_pgm};

fn main() {
    let l_max: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1995);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let bg_probe = Background::new(CosmoParams::standard_cdm());
    let ks = cl_k_grid(bg_probe.tau0(), l_max, 2.0);
    println!("# computing C_l to l = {l_max} from {} modes…", ks.len());
    let spec = RunSpec::standard_cdm(ks);
    let report = Farm::<ChannelWorld>::new(workers)
        .run(&spec, SchedulePolicy::LargestFirst)
        .expect("farm run");

    let prim = PrimordialSpectrum::unit(spec.cosmo.n_s);
    let raw = angular_power_spectrum(&report.outputs, &prim, l_max);
    let (cl, _) = cobe_normalize(&raw, spec.cosmo.t_cmb_k, Q_RMS_PS_UK);

    // ΔT/T realization → µK
    let alm = AlmRealization::generate(&cl.cl, seed);
    let nlat = 180; // the figure's map is ½°; this example uses 1° cells
    let map = SkyMap::synthesize(&alm, nlat, 2 * nlat);
    let t_uk = spec.cosmo.t_cmb_k * 1.0e6;
    let (lo, hi) = map.extrema();
    println!(
        "# map {} × {}: rms = {:.1} µK, extrema = {:+.1} / {:+.1} µK (around T = {} K)",
        nlat,
        2 * nlat,
        map.rms() * t_uk,
        lo * t_uk,
        hi * t_uk,
        spec.cosmo.t_cmb_k
    );

    let (plo, phi) = symmetric_range(&map.data, 1.0);
    let path = "sky_map.pgm";
    write_pgm(path, &map.data, map.nlon, map.nlat, plo, phi).expect("write PGM");
    println!("# wrote {path} ({} × {})", map.nlon, map.nlat);
}
