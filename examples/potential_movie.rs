//! Frames of the evolving conformal-Newtonian potential ψ in a comoving
//! 100 Mpc box, ending shortly after recombination at conformal time
//! 250 Mpc — the paper's §6 MPEG movie as a stack of PGM frames.
//!
//! ```text
//! cargo run --release --example potential_movie [n_frames] [npix]
//! ```

use boltzmann::evolve::potential_history;
use plinger_repro::prelude::*;
use skymap::pgm::{symmetric_range, write_pgm};

fn main() {
    let n_frames: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let npix: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let box_mpc = 100.0;
    let tau_end = 250.0;
    let bg = Background::new(CosmoParams::standard_cdm());
    let thermo = ThermoHistory::new(&bg);

    // ψ(τ) histories on a set of |k| shells covering the box's modes
    let shells = numutil::grid::logspace(2.0 * std::f64::consts::PI / box_mpc, 2.0, 12);
    println!("# evolving {} k-shells to τ = {tau_end} Mpc…", shells.len());
    let cfg = ModeConfig {
        gauge: Gauge::ConformalNewtonian,
        tau_end: Some(tau_end),
        preset: Preset::Draft,
        ..Default::default()
    };
    let histories: Vec<Vec<(f64, f64)>> = shells
        .iter()
        .map(|&k| {
            potential_history(&bg, &thermo, k, &cfg)
                .expect("mode failed")
                .into_iter()
                .map(|(tau, _phi, psi)| (tau, psi))
                .collect()
        })
        .collect();

    let prim = PrimordialSpectrum::unit(1.0);
    let power: Vec<f64> = shells.iter().map(|&k| prim.power(k)).collect();
    let field = PotentialField::new(box_mpc, npix, &shells, &histories, &power, 512, 1995);
    println!("# synthesizing {} modes on a {npix}² grid", field.n_modes());

    // common grey scale across frames, set by the first frame's extrema
    let tau_start = histories[0][1].0.max(5.0);
    let first = field.frame(tau_start);
    let (lo, hi) = symmetric_range(&first, 1.5);
    for i in 0..n_frames {
        let tau = tau_start + (tau_end - tau_start) * i as f64 / (n_frames - 1).max(1) as f64;
        let frame = field.frame(tau);
        let rms = PotentialField::frame_rms(&frame);
        let path = format!("psi_frame_{i:03}.pgm");
        write_pgm(&path, &frame, npix, npix, lo, hi).expect("write frame");
        println!("frame {i:3}: τ = {tau:7.1} Mpc  ψ_rms = {rms:.4e}  → {path}");
    }
    println!("# the ψ oscillations at early τ are the photon-baryon acoustic oscillations (§6)");
}
