//! Quickstart: evolve a single wavenumber through recombination to the
//! present and print the quantities a LINGER worker would report.
//!
//! ```text
//! cargo run --release --example quickstart [k_mpc_inv]
//! ```

use plinger_repro::prelude::*;

fn main() {
    let k: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    println!("# LINGER quickstart: standard CDM, one mode");
    let params = CosmoParams::standard_cdm();
    println!(
        "# cosmology: h = {}, Ω_b = {}, Ω_c = {:.4}, T = {} K, n = {}",
        params.h, params.omega_b, params.omega_c, params.t_cmb_k, params.n_s
    );

    let t0 = std::time::Instant::now();
    let bg = Background::new(params);
    let thermo = ThermoHistory::new(&bg);
    println!(
        "# background built in {:.2} s: τ₀ = {:.1} Mpc, z_rec = {:.0}, τ_rec = {:.1} Mpc",
        t0.elapsed().as_secs_f64(),
        bg.tau0(),
        thermo.z_rec(),
        thermo.tau_rec()
    );

    let cfg = ModeConfig::default();
    let out = evolve_mode(&bg, &thermo, k, &cfg).expect("mode failed");

    println!(
        "\n# mode k = {k} Mpc⁻¹ evolved to τ₀ (lmax = {})",
        out.lmax_g
    );
    println!(
        "  δ_c   = {:+.6e}   θ_c  = {:+.6e}",
        out.delta_c, out.theta_c
    );
    println!(
        "  δ_b   = {:+.6e}   θ_b  = {:+.6e}",
        out.delta_b, out.theta_b
    );
    println!(
        "  δ_γ   = {:+.6e}   θ_γ  = {:+.6e}",
        out.delta_g, out.theta_g
    );
    println!(
        "  δ_ν   = {:+.6e}   θ_ν  = {:+.6e}",
        out.delta_nu, out.theta_nu
    );
    println!("  φ     = {:+.6e}   ψ    = {:+.6e}", out.phi, out.psi);
    println!(
        "  σ_γ   = {:+.6e}   σ_ν  = {:+.6e}",
        out.sigma_g, out.sigma_nu
    );
    println!(
        "\n# integrator: {} steps accepted, {} rejected, {} RHS evals",
        out.stats.accepted, out.stats.rejected, out.stats.rhs_evals
    );
    println!(
        "# counted work: {:.1} Mflop in {:.2} s → {:.1} Mflop/s",
        out.stats.total_flops() as f64 / 1e6,
        out.cpu_seconds,
        out.stats.total_flops() as f64 / 1e6 / out.cpu_seconds
    );
    println!(
        "# wire record: 21-real header + {}-real payload = {} bytes",
        2 * out.lmax_g + 8,
        (21 + 2 * out.lmax_g + 8) * 8
    );

    println!("\n# first photon temperature moments Θ_l = F_γl/4:");
    for l in 0..out.lmax_g.min(8) {
        println!("  Θ_{l} = {:+.6e}", out.delta_t[l]);
    }
}
