//! N-body initial conditions from LINGER transfer functions — the
//! COSMICS role the paper's code shipped in ("Look for LINGER (as part
//! of the COSMICS cosmological initial conditions package)").
//!
//! Evolves the matter transfer function with the Boltzmann solver,
//! normalizes to COBE, draws a Gaussian realization, and produces
//! Zel'dovich particles at the requested starting redshift.
//!
//! ```text
//! cargo run --release --example nbody_ics [n_grid] [box_mpc] [z_init]
//! ```

use icgen::{GaussianField, ZeldovichIcs};
use plinger_repro::prelude::*;

fn main() {
    let n_grid: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let box_mpc: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128.0);
    let z_init: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(49.0);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // transfer functions over the box's modes
    let k_min = 2.0 * std::f64::consts::PI / box_mpc / 2.0;
    let k_max = std::f64::consts::PI * n_grid as f64 / box_mpc * 2.0;
    let mut spec = RunSpec::standard_cdm(matter_k_grid(k_min.min(1e-3), k_max, 28));
    spec.preset = Preset::Demo;
    println!("# evolving {} transfer modes to z = 0…", spec.ks.len());
    let report = Farm::<ChannelWorld>::new(workers)
        .run(&spec, SchedulePolicy::LargestFirst)
        .expect("farm run");

    // COBE-ish amplitude: normalize σ₈ to the classic COBE-normalized
    // SCDM value ≈ 1.2 (the model's famous excess over observations)
    let prim = PrimordialSpectrum::unit(spec.cosmo.n_s);
    let mp0 = matter_power_spectrum(
        &report.outputs,
        &prim,
        spec.cosmo.omega_c,
        spec.cosmo.omega_b,
    );
    let s8_unit = sigma_r(&mp0, 8.0 / spec.cosmo.h);
    let target_s8 = 1.2;
    let amp = (target_s8 / s8_unit).powi(2);
    let mp = matter_power_spectrum(
        &report.outputs,
        &prim.rescaled(amp),
        spec.cosmo.omega_c,
        spec.cosmo.omega_b,
    );
    println!("# σ₈(z=0) normalized to {target_s8} (amplitude {amp:.3e})");

    let field = GaussianField::generate(&mp, n_grid, box_mpc, 1995);
    println!(
        "# δ(z=0) field: {}³ grid, rms = {:.3} (grid-limited expectation {:.3})",
        n_grid,
        field.variance().sqrt(),
        GaussianField::expected_variance(&mp, n_grid, box_mpc).sqrt()
    );

    let ics = ZeldovichIcs::from_field(&field, z_init, spec.cosmo.h);
    println!(
        "# Zel'dovich ICs at z = {z_init}: {} particles, rms displacement {:.3} Mpc \
         ({:.2} of a cell)",
        ics.particles.len(),
        ics.rms_displacement(),
        ics.rms_displacement() / (box_mpc / n_grid as f64)
    );
    let vmax = ics
        .particles
        .iter()
        .map(|p| (p.v[0].powi(2) + p.v[1].powi(2) + p.v[2].powi(2)).sqrt())
        .fold(0.0f64, f64::max);
    println!("# max peculiar velocity {vmax:.1} km/s");

    // write a small ASCII sample
    let path = "nbody_ics_sample.txt";
    let mut out = String::from("# x y z [Mpc]  vx vy vz [km/s]\n");
    for p in ics.particles.iter().step_by(ics.particles.len() / 64 + 1) {
        out.push_str(&format!(
            "{:9.4} {:9.4} {:9.4}  {:9.3} {:9.3} {:9.3}\n",
            p.x[0], p.x[1], p.x[2], p.v[0], p.v[1], p.v[2]
        ));
    }
    std::fs::write(path, out).expect("write sample");
    println!("# wrote {path} (subsampled)");
}
