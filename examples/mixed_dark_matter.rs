//! Mixed dark matter (C+HDM): massive neutrinos free-stream out of
//! small-scale perturbations, suppressing the matter power spectrum —
//! the competing model family the paper's parameter discussion ("neutrino
//! masses") points at.  Compares the MDM transfer function against
//! standard CDM.
//!
//! ```text
//! cargo run --release --example mixed_dark_matter [n_k]
//! ```

use plinger_repro::prelude::*;

fn main() {
    let n_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let ks = matter_k_grid(1e-4, 0.5, n_k);

    let mut scdm = RunSpec::standard_cdm(ks.clone());
    scdm.preset = Preset::Demo;
    let mut mdm = scdm.clone();
    mdm.cosmo = CosmoParams::mixed_dark_matter();

    println!(
        "# MDM: Ω_ν ≈ 0.2 in one ν species of {} eV (vs SCDM), {} modes each",
        mdm.cosmo.m_nu_ev, n_k
    );
    let rep_s = Farm::<ChannelWorld>::new(workers)
        .run(&scdm, SchedulePolicy::LargestFirst)
        .expect("farm run");
    let rep_m = Farm::<ChannelWorld>::new(workers)
        .run(&mdm, SchedulePolicy::LargestFirst)
        .expect("farm run");

    let t_s = transfer_function(&rep_s.outputs, scdm.cosmo.omega_c, scdm.cosmo.omega_b);
    let t_m = transfer_function(&rep_m.outputs, mdm.cosmo.omega_c, mdm.cosmo.omega_b);

    println!("#\n#   k [Mpc⁻¹]    T_SCDM       T_MDM     (T_MDM/T_SCDM)²");
    for (i, &k) in ks.iter().enumerate() {
        let ratio2 = (t_m[i] / t_s[i]).powi(2);
        println!(
            "{k:12.5e}  {:10.5e}  {:10.5e}   {ratio2:8.4}",
            t_s[i], t_m[i]
        );
    }

    let suppression = (t_m[n_k - 1] / t_s[n_k - 1]).powi(2);
    println!(
        "\n# small-scale power suppression: P_MDM/P_SCDM = {suppression:.3} at k = {:.2} Mpc⁻¹",
        ks[n_k - 1]
    );
    println!(
        "# (free-streaming of the {} eV neutrino; the 1995 C+HDM literature",
        mdm.cosmo.m_nu_ev
    );
    println!("#  quotes factors of ~2-4 suppression at cluster scales)");
}
