//! A minimal JSON value with a writer and a recursive-descent parser.
//!
//! The workspace deliberately carries no serde: run reports and trace
//! files are flat, numeric, and written once per run, so a ~200-line
//! value type is the whole dependency.  The parser exists so tests and
//! the CI smoke run can validate what the writer produced.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (always written from `f64`; integers print without a
    /// fractional part, non-finite values degrade to `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` for other variants or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number inside a [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string inside a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements of a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if !v.is_finite() {
                    f.write_str("null")
                } else if *v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse a JSON document.  Returns a message with a byte offset on
/// malformed input; trailing whitespace is allowed, trailing content is
/// not.
impl Json {
    /// Parse JSON text; method-form alias for the free [`parse`].
    pub fn parse(text: &str) -> Result<Json, String> {
        parse(text)
    }
}

pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8 in string")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_roundtrips_through_parser() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("run \"x\"\n".into())),
            ("n".into(), Json::Num(42.0)),
            ("eff".into(), Json::Num(0.875)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Str("π".into())]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parser_handles_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn scientific_notation_parses() {
        assert_eq!(parse("1.5e3").unwrap().as_f64(), Some(1500.0));
        assert_eq!(parse("-2E-2").unwrap().as_f64(), Some(-0.02));
    }
}
