//! Wall-clock span recording and chrome-tracing export.
//!
//! A [`SpanRecorder`] is owned by one thread (master or worker), stamps
//! events against a shared epoch `Instant`, and is folded into the run
//! snapshot when the thread finishes.  [`write_chrome_trace`] serializes
//! a set of events in the Trace Event Format ("complete" events,
//! `ph: "X"`) readable by `chrome://tracing` and Perfetto.

use std::io::{self, Write};
use std::time::Instant;

use crate::json::Json;

/// One completed wall-clock interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Event name (e.g. `mode`, `assign`, `idle`).
    pub name: String,
    /// Category (e.g. `worker`, `master`, `comm`).
    pub cat: String,
    /// Process id to display under (0 for the master process).
    pub pid: u64,
    /// Thread/track id (worker rank).
    pub tid: u64,
    /// Start, microseconds since the run epoch.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Extra key/value arguments (e.g. `ik`, `k`).
    pub args: Vec<(String, String)>,
}

impl SpanEvent {
    /// The event as a chrome-tracing JSON object.
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("cat".into(), Json::Str(self.cat.clone())),
            ("ph".into(), Json::Str("X".into())),
            ("pid".into(), Json::Num(self.pid as f64)),
            ("tid".into(), Json::Num(self.tid as f64)),
            ("ts".into(), Json::Num(self.ts_us as f64)),
            ("dur".into(), Json::Num(self.dur_us as f64)),
        ];
        if !self.args.is_empty() {
            let args = self
                .args
                .iter()
                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                .collect();
            obj.push(("args".into(), Json::Obj(args)));
        }
        Json::Obj(obj)
    }
}

/// Per-thread span collector stamping against a common epoch.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    epoch: Instant,
    pid: u64,
    tid: u64,
    events: Vec<SpanEvent>,
}

impl SpanRecorder {
    /// A recorder for track (`pid`, `tid`) stamping against `epoch`.
    /// All recorders in a run must share the same epoch so their tracks
    /// align in the viewer.
    pub fn new(epoch: Instant, pid: u64, tid: u64) -> Self {
        Self {
            epoch,
            pid,
            tid,
            events: Vec::new(),
        }
    }

    /// Microseconds from the epoch to `t` (0 if `t` precedes it).
    fn us_since_epoch(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }

    /// Record a completed interval `[start, end]`.  Recording is a no-op
    /// while telemetry is disabled.
    pub fn record(
        &mut self,
        name: &str,
        cat: &str,
        start: Instant,
        end: Instant,
        args: &[(&str, String)],
    ) {
        if !crate::enabled() {
            return;
        }
        let ts_us = self.us_since_epoch(start);
        let end_us = self.us_since_epoch(end);
        self.events.push(SpanEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            pid: self.pid,
            tid: self.tid,
            ts_us,
            dur_us: end_us.saturating_sub(ts_us),
            args: args
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consume the recorder, yielding its events.
    pub fn into_events(self) -> Vec<SpanEvent> {
        self.events
    }
}

/// Write `events` to `w` as a chrome-tracing JSON array of `ph: "X"`
/// complete events.  Load the resulting file in `chrome://tracing` or
/// `ui.perfetto.dev`.
pub fn write_chrome_trace<W: Write>(w: &mut W, events: &[SpanEvent]) -> io::Result<()> {
    writeln!(w, "[")?;
    for (i, ev) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        writeln!(w, "  {}{}", ev.to_json(), sep)?;
    }
    writeln!(w, "]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn recorder_stamps_relative_to_epoch() {
        let epoch = Instant::now();
        let mut r = SpanRecorder::new(epoch, 0, 3);
        let start = epoch + Duration::from_micros(100);
        let end = epoch + Duration::from_micros(350);
        r.record("mode", "worker", start, end, &[("ik", "5".into())]);
        assert_eq!(r.len(), 1);
        let ev = &r.into_events()[0];
        assert_eq!(ev.ts_us, 100);
        assert_eq!(ev.dur_us, 250);
        assert_eq!(ev.tid, 3);
        assert_eq!(ev.args, vec![("ik".to_string(), "5".to_string())]);
    }

    #[test]
    fn pre_epoch_start_saturates_to_zero() {
        let start = Instant::now();
        let epoch = start + Duration::from_micros(500);
        let mut r = SpanRecorder::new(epoch, 0, 0);
        r.record(
            "early",
            "test",
            start,
            epoch + Duration::from_micros(10),
            &[],
        );
        let ev = &r.into_events()[0];
        assert_eq!(ev.ts_us, 0);
        assert_eq!(ev.dur_us, 10);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let events = vec![
            SpanEvent {
                name: "a".into(),
                cat: "worker".into(),
                pid: 0,
                tid: 1,
                ts_us: 0,
                dur_us: 10,
                args: vec![("k".into(), "0.01".into())],
            },
            SpanEvent {
                name: "b \"quoted\"".into(),
                cat: "master".into(),
                pid: 0,
                tid: 0,
                ts_us: 10,
                dur_us: 5,
                args: Vec::new(),
            },
        ];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let parsed = crate::json::parse(&text).unwrap();
        let arr = match parsed {
            Json::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 2);
        for ev in &arr {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            assert!(ev.get("pid").is_some());
            assert!(ev.get("tid").is_some());
            assert!(ev.get("ts").is_some());
            assert!(ev.get("dur").is_some());
        }
        assert_eq!(
            arr[1].get("name").and_then(Json::as_str),
            Some("b \"quoted\"")
        );
    }

    #[test]
    fn empty_trace_is_an_empty_array() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        let parsed = crate::json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(parsed, Json::Arr(Vec::new()));
    }
}
