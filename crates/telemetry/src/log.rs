//! Leveled structured event logging with a flight-recorder ring.
//!
//! Every event carries a timestamp, level, target (the subsystem that
//! emitted it), a short message naming the event kind, and `key=value`
//! fields.  Two sinks see each event:
//!
//! * **stderr** — gated by a process-wide level set from `--log
//!   level[,json]`; off by default so library users pay nothing.
//!   Line format: `ts level target message k=v k=v`; JSON mode emits
//!   one object per line instead.
//! * **flight recorder** — a fixed-capacity ring ([`FLIGHT_CAPACITY`]
//!   events) that always records, so the last moments before a failure
//!   can be dumped even when stderr logging was off.  Events tagged
//!   with a `job` field (the canonical request hash, rendered by
//!   [`job_hex`]) can be pulled per request via [`for_job`].
//!
//! Logging here is for *rare* control-plane events (job accepted,
//! requeue, respawn, heartbeat miss) — it takes a mutex per event and
//! is not meant for per-mode hot paths; those stay on the lock-free
//! metrics and span recorders.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Capacity of the flight-recorder ring.
pub const FLIGHT_CAPACITY: usize = 1024;

/// Severity, ordered so that `level <= threshold` means "emit".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 0,
    /// Degraded but recovering (requeue, respawn, heartbeat miss).
    Warn = 1,
    /// Normal control-plane milestones (job accepted, job done).
    Info = 2,
    /// Chatty detail (cache probes, chunk assignment).
    Debug = 3,
}

impl Level {
    /// Lowercase name, as printed and parsed.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parse a lowercase level name.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Option<Level> {
        match v {
            0 => Some(Level::Error),
            1 => Some(Level::Warn),
            2 => Some(Level::Info),
            3 => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Process-wide monotonically increasing sequence number.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (`master`, `pool`, `worker`, `service`, ...).
    pub target: String,
    /// Event kind (`job_accepted`, `chunk_requeue`, ...).
    pub message: String,
    /// Structured `key=value` payload.
    pub fields: Vec<(String, String)>,
}

impl LogEvent {
    /// Value of the named field, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Human line form: `ts level target message k=v ...`.
    pub fn render_line(&self) -> String {
        let mut s = format!(
            "{}.{:03} {:5} {} {}",
            self.unix_ms / 1000,
            self.unix_ms % 1000,
            self.level,
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }

    /// One-line JSON object form (fields inlined as string values).
    pub fn render_json(&self) -> String {
        use crate::json::Json;
        let mut obj = vec![
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("unix_ms".to_string(), Json::Num(self.unix_ms as f64)),
            ("level".to_string(), Json::Str(self.level.as_str().into())),
            ("target".to_string(), Json::Str(self.target.clone())),
            ("message".to_string(), Json::Str(self.message.clone())),
        ];
        for (k, v) in &self.fields {
            obj.push((k.clone(), Json::Str(v.clone())));
        }
        Json::Obj(obj).to_string()
    }
}

/// Stderr threshold: `u8::MAX` = off (the default).
static STDERR_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);
/// Whether stderr lines render as JSON objects.
static STDERR_JSON: AtomicU8 = AtomicU8::new(0);
static SEQ: AtomicU64 = AtomicU64::new(0);

struct Ring {
    events: Vec<LogEvent>,
    next: usize,
}

static FLIGHT: Mutex<Ring> = Mutex::new(Ring {
    events: Vec::new(),
    next: 0,
});

/// Set the stderr sink: `None` silences it, `Some(level)` emits events
/// at or above `level` (line format, or JSON objects when `json`).
pub fn set_stderr(level: Option<Level>, json: bool) {
    STDERR_LEVEL.store(level.map_or(u8::MAX, |l| l as u8), Ordering::Relaxed);
    STDERR_JSON.store(u8::from(json), Ordering::Relaxed);
}

/// Current stderr threshold, `None` when silenced.
pub fn stderr_level() -> Option<Level> {
    Level::from_u8(STDERR_LEVEL.load(Ordering::Relaxed))
}

/// Parse the `--log` flag value: `LEVEL` or `LEVEL,json`.
pub fn parse_log_flag(s: &str) -> Result<(Level, bool), String> {
    let (level, json) = match s.split_once(',') {
        Some((l, "json")) => (l, true),
        Some((_, other)) => return Err(format!("unknown --log modifier {other:?}")),
        None => (s, false),
    };
    Level::parse(level)
        .map(|l| (l, json))
        .ok_or_else(|| format!("unknown log level {level:?} (error|warn|info|debug)"))
}

/// Record one event: always into the flight ring, and onto stderr when
/// the threshold admits it.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
    let event = LogEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64),
        level,
        target: target.to_string(),
        message: message.to_string(),
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    };
    let threshold = STDERR_LEVEL.load(Ordering::Relaxed);
    if threshold != u8::MAX && (level as u8) <= threshold {
        if STDERR_JSON.load(Ordering::Relaxed) != 0 {
            eprintln!("{}", event.render_json());
        } else {
            eprintln!("{}", event.render_line());
        }
    }
    if let Ok(mut ring) = FLIGHT.lock() {
        if ring.events.len() < FLIGHT_CAPACITY {
            ring.events.push(event);
        } else {
            let at = ring.next;
            ring.events[at] = event;
        }
        ring.next = (ring.next + 1) % FLIGHT_CAPACITY;
    }
}

fn snapshot_ring() -> Vec<LogEvent> {
    let Ok(ring) = FLIGHT.lock() else {
        return Vec::new();
    };
    let mut events = ring.events.clone();
    events.sort_by_key(|e| e.seq);
    events
}

/// The last `max` recorded events, oldest first.
pub fn recent(max: usize) -> Vec<LogEvent> {
    let events = snapshot_ring();
    let skip = events.len().saturating_sub(max);
    events.into_iter().skip(skip).collect()
}

/// Canonical rendering of a job hash in log fields and span args.
pub fn job_hex(job_hash: u64) -> String {
    format!("{job_hash:016x}")
}

/// Canonical rendering of one shard of an ensemble sweep in log fields
/// and span args: the ensemble's canonical hash plus the shard's index,
/// `<ensemble_hex>/<shard>`.  Filtering on the prefix collects a whole
/// sweep's trail; the full label isolates one shard.
pub fn shard_label(ensemble_hash: u64, shard: usize) -> String {
    format!("{ensemble_hash:016x}/{shard}")
}

/// The last `max` events whose `job` field matches `job_hash`, oldest
/// first — the flight-recorder trail of one request.
pub fn for_job(job_hash: u64, max: usize) -> Vec<LogEvent> {
    let hex = job_hex(job_hash);
    let events: Vec<LogEvent> = snapshot_ring()
        .into_iter()
        .filter(|e| e.field("job") == Some(hex.as_str()))
        .collect();
    let skip = events.len().saturating_sub(max);
    events.into_iter().skip(skip).collect()
}

/// Render a flight-recorder dump: one JSON object per line, oldest
/// first — the sidecar format written next to a failing job's report.
pub fn render_flight_dump(events: &[LogEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.render_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_roundtrip() {
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn parse_log_flag_forms() {
        assert_eq!(parse_log_flag("info"), Ok((Level::Info, false)));
        assert_eq!(parse_log_flag("debug,json"), Ok((Level::Debug, true)));
        assert!(parse_log_flag("loud").is_err());
        assert!(parse_log_flag("info,yaml").is_err());
    }

    #[test]
    fn flight_ring_keeps_job_trail() {
        let job = 0xdead_beef_0123_4567u64;
        let other = job ^ 1;
        log(
            Level::Info,
            "test-ring",
            "job_accepted",
            &[("job", job_hex(job))],
        );
        log(
            Level::Debug,
            "test-ring",
            "cache_miss",
            &[("job", job_hex(other))],
        );
        log(
            Level::Warn,
            "test-ring",
            "chunk_requeue",
            &[("job", job_hex(job)), ("ik", "3".into())],
        );
        let trail = for_job(job, 16);
        assert_eq!(trail.len(), 2);
        assert_eq!(trail[0].message, "job_accepted");
        assert_eq!(trail[1].message, "chunk_requeue");
        assert_eq!(trail[1].field("ik"), Some("3"));
        assert!(trail[0].seq < trail[1].seq);

        let dump = render_flight_dump(&trail);
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("\"chunk_requeue\""));
        assert!(dump.contains(&job_hex(job)));
    }

    #[test]
    fn render_line_is_greppable() {
        let e = LogEvent {
            seq: 1,
            unix_ms: 1_723_000_000_123,
            level: Level::Warn,
            target: "pool".into(),
            message: "respawn".into(),
            fields: vec![("worker".into(), "2".into())],
        };
        let line = e.render_line();
        assert!(line.contains("warn"), "{line}");
        assert!(line.contains("pool respawn worker=2"), "{line}");
        let json = e.render_json();
        assert!(json.contains("\"level\":"), "{json}");
    }
}
