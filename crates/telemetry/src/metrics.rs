//! Lock-free recording primitives: counters, gauges, and log-bucketed
//! histograms.
//!
//! All three are safe to share across threads behind an `Arc` and are
//! recorded with relaxed atomics — telemetry orders nothing; it only
//! counts.  Every mutating call first checks the crate-wide
//! [`crate::enabled`] flag so a disabled run reduces each site to one
//! relaxed load.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

/// Number of log2 buckets in a [`Histogram`].  Bucket `i` holds values
/// `v` with `floor(log2(v)) == i` (bucket 0 also holds `v == 0`), so 64
/// buckets cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Add `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Record the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Last recorded value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log2-bucketed histogram of `u64` samples (typically nanoseconds or
/// bytes), with exact count/sum/min/max alongside the buckets.
///
/// Bucketing by `floor(log2(v))` keeps recording allocation-free and
/// wait-free while still answering "what order of magnitude are the
/// latencies" — the resolution the §4 timing tables actually need.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Index of the bucket that holds `v`.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - v.leading_zeros()) as usize
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Immutable summary of everything recorded so far.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data summary of a [`Histogram`], mergeable across threads and
/// ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`floor(log2(v))` indexing).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample value, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in [0, 1]) by linear interpolation
    /// within the log2 bucket holding the q-th sample: the fractional
    /// rank inside the bucket maps linearly onto the bucket's value
    /// range `[2^i, 2^(i+1)-1]` (bucket 0 spans `[0, 1]`), and the
    /// result is clamped to the observed `[min, max]`.  0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // fractional rank in [1, count]
        let target = (q * self.count as f64).clamp(1.0, self.count as f64);
        let mut seen = 0.0_f64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let n = n as f64;
            if seen + n >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i >= 63 {
                    u64::MAX as f64
                } else {
                    ((1u64 << (i + 1)) - 1) as f64
                };
                let frac = (target - seen) / n;
                let v = lo + frac * (hi - lo);
                return (v.round() as u64).clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum += other.sum;
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
    }

    /// Samples accumulated since `base`, which must be an earlier
    /// snapshot of the same histogram: buckets, count, and sum subtract
    /// exactly (saturating, so a mismatched base degrades to zeros
    /// rather than wrapping).  `min`/`max` keep the cumulative values —
    /// extrema are not invertible from two snapshots, so the delta's
    /// bounds are conservative, not per-interval exact.
    pub fn delta(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_sub(base.buckets[i]);
        }
        let count = self.count.saturating_sub(base.count);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(base.sum),
            min: if count == 0 { 0 } else { self.min },
            max: if count == 0 { 0 } else { self.max },
        }
    }

    /// JSON summary (count/sum/min/max/mean/p50/p90/p99 — buckets
    /// omitted).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            ("min".into(), Json::Num(self.min as f64)),
            ("max".into(), Json::Num(self.max as f64)),
            ("mean".into(), Json::Num(self.mean())),
            ("p50".into(), Json::Num(self.quantile(0.5) as f64)),
            ("p90".into(), Json::Num(self.quantile(0.9) as f64)),
            ("p99".into(), Json::Num(self.quantile(0.99) as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_last_value_wins() {
        let g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 26.5);
        // p50: rank 2 of 4 falls in bucket 1 (values 2..=3) at fraction
        // 0.5, interpolating to 2.5 which rounds up to 3
        assert_eq!(s.quantile(0.5), 3);
        // p99 and p100 land in the bucket holding 100 (64..=127) and
        // clamp to the observed max
        assert_eq!(s.quantile(0.99), 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn quantile_interpolates_within_log_buckets() {
        // uniform 1..=100: interpolation recovers exact mid-range
        // quantiles despite the coarse log2 buckets
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.25), 25);
        assert_eq!(s.quantile(0.5), 50);
        // the top bucket (64..=127) over-estimates tail quantiles, so
        // they clamp to the observed max
        assert_eq!(s.quantile(0.9), 100);
        assert_eq!(s.quantile(0.99), 100);
    }

    #[test]
    fn quantile_of_constant_distribution_is_the_constant() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(7);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 7, "q={q}");
        }
    }

    #[test]
    fn quantile_error_bounded_by_bucket_width() {
        // 99 samples of 8 plus one outlier: log-bucket quantiles can
        // only resolve to the holding bucket's range (8..=15 here)
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(8);
        }
        h.record(1000);
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((8..=15).contains(&p50), "p50={p50}");
        assert!((8..=15).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn snapshot_merge_combines() {
        let a = Histogram::new();
        a.record(1);
        a.record(4);
        let b = Histogram::new();
        b.record(1000);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 3);
        assert_eq!(sa.sum, 1005);
        assert_eq!(sa.min, 1);
        assert_eq!(sa.max, 1000);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&sa);
        assert_eq!(empty.min, 1);
        assert_eq!(empty.count, 3);
    }
}
