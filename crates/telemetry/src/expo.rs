//! Prometheus text exposition (format 0.0.4) for a
//! [`TelemetrySnapshot`], plus the tiny HTTP/1.0 request/response
//! helpers a zero-dependency `/metrics` listener needs.
//!
//! Counters and gauges render as single samples; histograms render as
//! the full cumulative `_bucket{le="..."}` series (one boundary per
//! log2 bucket up to the highest occupied one, then `+Inf`), `_sum`
//! and `_count`, plus derived `_p50`/`_p90`/`_p99` gauges — Prometheus
//! has no native type mixing histogram and summary under one family,
//! so the pre-computed quantiles get their own gauge families.
//!
//! Registered names may carry a label set in braces
//! (`requests_total{transport="tcp"}`): the `# TYPE` header uses the
//! base name before the brace and the sample line keeps the labels.

use crate::metrics::HistogramSnapshot;
use crate::TelemetrySnapshot;

/// Replace characters outside `[a-zA-Z0-9_:]` with `_` so arbitrary
/// registered names become valid Prometheus metric names.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Split `name{labels}` into a sanitized base name and the raw label
/// block (including braces), if any.
fn split_labels(name: &str) -> (String, &str) {
    match name.find('{') {
        Some(i) => (sanitize(&name[..i]), &name[i..]),
        None => (sanitize(name), ""),
    }
}

fn push_type(out: &mut String, name: &str, kind: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Append one histogram family: cumulative buckets, sum, count, and
/// derived quantile gauges.
fn render_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    push_type(out, name, "histogram");
    let highest = h.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
    let mut cum = 0u64;
    let extra = if labels.is_empty() {
        String::new()
    } else {
        // splice `le` into an existing label block: {a="b"} -> ,a="b"
        format!(",{}", &labels[1..labels.len() - 1])
    };
    for (i, &n) in h.buckets.iter().enumerate().take(highest + 1) {
        cum += n;
        let edge = (1u128 << (i + 1)) - 1;
        out.push_str(&format!("{name}_bucket{{le=\"{edge}\"{extra}}} {cum}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{le=\"+Inf\"{extra}}} {}\n",
        h.count
    ));
    out.push_str(&format!("{name}_sum{labels} {}\n", h.sum));
    out.push_str(&format!("{name}_count{labels} {}\n", h.count));
    for (suffix, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        let qname = format!("{name}_{suffix}");
        push_type(out, &qname, "gauge");
        out.push_str(&format!("{qname}{labels} {}\n", h.quantile(q)));
    }
}

/// Format a gauge value the way Prometheus expects: finite decimal,
/// `+Inf`/`-Inf`/`NaN` for the specials.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Render the whole snapshot in Prometheus text exposition format.
/// Every family name is prefixed with `prefix_` (pass `""` for none).
/// Spans are not exposed — they export through chrome tracing.
pub fn render_prometheus(snap: &TelemetrySnapshot, prefix: &str) -> String {
    let pre = if prefix.is_empty() {
        String::new()
    } else {
        format!("{}_", sanitize(prefix))
    };
    let mut out = String::new();
    for (name, &v) in &snap.counters {
        let (base, labels) = split_labels(name);
        push_type(&mut out, &format!("{pre}{base}"), "counter");
        out.push_str(&format!("{pre}{base}{labels} {v}\n"));
    }
    for (name, &v) in &snap.gauges {
        let (base, labels) = split_labels(name);
        push_type(&mut out, &format!("{pre}{base}"), "gauge");
        out.push_str(&format!("{pre}{base}{labels} {}\n", fmt_f64(v)));
    }
    for (name, h) in &snap.histograms {
        let (base, labels) = split_labels(name);
        render_histogram(&mut out, &format!("{pre}{base}"), labels, h);
    }
    out
}

/// Extract the request path from an HTTP/1.x request head (`GET /path
/// HTTP/1.0`).  Only GET (and HEAD, which we answer like GET) are
/// accepted; anything else returns `None`.
pub fn parse_http_get(head: &str) -> Option<&str> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    if method != "GET" && method != "HEAD" {
        return None;
    }
    parts.next()
}

/// Build a complete HTTP/1.0 response with the standard headers a
/// scraper needs; `Connection: close` because the listener is strictly
/// one-request-per-connection.
pub fn http_response(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize("send.ns/worker-3"), "send_ns_worker_3");
    }

    #[test]
    fn parses_get_paths() {
        assert_eq!(
            parse_http_get("GET /metrics HTTP/1.0\r\nHost: x\r\n"),
            Some("/metrics")
        );
        assert_eq!(parse_http_get("HEAD /healthz HTTP/1.1"), Some("/healthz"));
        assert_eq!(parse_http_get("POST /metrics HTTP/1.0"), None);
        assert_eq!(parse_http_get(""), None);
    }

    #[test]
    fn http_response_has_content_length() {
        let r = http_response(200, "OK", "text/plain", "ok\n");
        assert!(r.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(r.contains("Content-Length: 3\r\n"));
        assert!(r.ends_with("\r\n\r\nok\n"));
    }

    /// Golden test: the full exposition text for a small snapshot is
    /// pinned byte for byte — the format is a stability contract.
    #[test]
    fn golden_exposition_format() {
        let mut snap = TelemetrySnapshot::default();
        snap.add("requests_total", 7);
        snap.counters.insert("msgs_sent{tag=\"3\"}".into(), 12);
        snap.gauges.insert("queue_depth".into(), 2.0);
        snap.gauges.insert("idle_seconds".into(), 0.25);
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        snap.histograms.insert("run_ns".into(), h.snapshot());

        let text = render_prometheus(&snap, "plinger");
        let expect = "\
# TYPE plinger_msgs_sent counter
plinger_msgs_sent{tag=\"3\"} 12
# TYPE plinger_requests_total counter
plinger_requests_total 7
# TYPE plinger_idle_seconds gauge
plinger_idle_seconds 0.25
# TYPE plinger_queue_depth gauge
plinger_queue_depth 2
# TYPE plinger_run_ns histogram
plinger_run_ns_bucket{le=\"1\"} 1
plinger_run_ns_bucket{le=\"3\"} 3
plinger_run_ns_bucket{le=\"7\"} 3
plinger_run_ns_bucket{le=\"15\"} 3
plinger_run_ns_bucket{le=\"31\"} 3
plinger_run_ns_bucket{le=\"63\"} 3
plinger_run_ns_bucket{le=\"127\"} 4
plinger_run_ns_bucket{le=\"+Inf\"} 4
plinger_run_ns_sum 106
plinger_run_ns_count 4
# TYPE plinger_run_ns_p50 gauge
plinger_run_ns_p50 3
# TYPE plinger_run_ns_p90 gauge
plinger_run_ns_p90 100
# TYPE plinger_run_ns_p99 gauge
plinger_run_ns_p99 100
";
        assert_eq!(text, expect);
    }

    #[test]
    fn labeled_histogram_splices_le() {
        let mut snap = TelemetrySnapshot::default();
        let h = Histogram::new();
        h.record(1);
        snap.histograms
            .insert("lat{rank=\"1\"}".into(), h.snapshot());
        let text = render_prometheus(&snap, "");
        assert!(
            text.contains("lat_bucket{le=\"1\",rank=\"1\"} 1\n"),
            "{text}"
        );
        assert!(text.contains("lat_sum{rank=\"1\"} 1\n"), "{text}");
    }

    #[test]
    fn empty_histogram_still_renders_family() {
        let mut snap = TelemetrySnapshot::default();
        snap.histograms
            .insert("empty_ns".into(), HistogramSnapshot::default());
        let text = render_prometheus(&snap, "");
        assert!(text.contains("empty_ns_bucket{le=\"1\"} 0\n"));
        assert!(text.contains("empty_ns_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("empty_ns_count 0\n"));
    }
}
