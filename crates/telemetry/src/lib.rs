//! The observability spine of the PLINGER reproduction.
//!
//! The paper's performance story (§4–§5) is built on measurements —
//! per-mode CPU time versus message size, aggregate Mflop/s, worker
//! idle time — and COSMICS shipped the same timing accounting in its
//! serial LINGER.  This crate provides the primitives those
//! measurements hang off, with **no external dependencies**:
//!
//! * [`metrics`] — lock-free [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s, safe to hammer from every worker thread;
//! * [`span`] — wall-clock [`SpanRecorder`]s whose events export as
//!   Perfetto/chrome-tracing JSON (`chrome://tracing`, `ui.perfetto.dev`);
//! * [`json`] — a minimal JSON value type with a writer *and* a parser,
//!   so run reports can be produced and validated without serde;
//! * [`expo`] — Prometheus text exposition of a snapshot plus the
//!   HTTP/1.0 scraps a zero-dependency `/metrics` listener needs;
//! * [`log`] — leveled structured events with a flight-recorder ring,
//!   for rare control-plane milestones and post-mortem dumps;
//! * [`TelemetrySnapshot`] — the merged, immutable view of everything a
//!   run recorded, one per farm session.
//!
//! # Recording model
//!
//! Hot paths record into *per-thread* (or per-endpoint) structures that
//! the owner folds into one [`TelemetrySnapshot`] when the run ends;
//! nothing global is locked while work is in flight.  The single piece
//! of shared state is the process-wide enable flag: [`set_enabled`]
//! flips it, and every recording primitive starts with an inlined
//! [`enabled`] check — one relaxed atomic load — so a disabled run pays
//! effectively nothing on the hot path.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod expo;
pub mod json;
pub mod log;
pub mod metrics;
pub mod span;

pub use expo::render_prometheus;
pub use json::Json;
pub use log::{Level, LogEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use span::{write_chrome_trace, SpanEvent, SpanRecorder};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide recording switch (default: on).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable all telemetry recording in this process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is enabled.  Inlined so a disabled
/// recording site reduces to one relaxed load and a branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The merged, immutable result of one instrumented run: named
/// counters and gauges, named histograms, and the span timeline.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic event counts by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Distribution summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock spans, in recording order.
    pub spans: Vec<SpanEvent>,
}

impl TelemetrySnapshot {
    /// Fold another snapshot into this one: counters add, gauges take
    /// the other side's value, histograms merge, spans concatenate.
    pub fn merge(&mut self, other: TelemetrySnapshot) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, h) in other.histograms {
            match self.histograms.get_mut(&name) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.histograms.insert(name, h);
                }
            }
        }
        self.spans.extend(other.spans);
    }

    /// A counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Add `v` to the named counter.
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// JSON view of the snapshot (spans omitted — they export through
    /// [`write_chrome_trace`] instead).
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, &v)| (k.clone(), Json::Num(v)))
            .collect();
        let hists = self
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), h.to_json()))
            .collect();
        Json::Obj(vec![
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(hists)),
            ("span_events".into(), Json::Num(self.spans.len() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_flag_roundtrip() {
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn snapshot_merge_adds_counters_and_concats_spans() {
        let mut a = TelemetrySnapshot::default();
        a.add("msgs", 3);
        a.gauges.insert("depth".into(), 1.0);
        let mut b = TelemetrySnapshot::default();
        b.add("msgs", 4);
        b.add("bytes", 100);
        b.gauges.insert("depth".into(), 2.0);
        b.spans.push(SpanEvent {
            name: "x".into(),
            cat: "test".into(),
            pid: 1,
            tid: 0,
            ts_us: 0,
            dur_us: 5,
            args: Vec::new(),
        });
        a.merge(b);
        assert_eq!(a.counter("msgs"), 7);
        assert_eq!(a.counter("bytes"), 100);
        assert_eq!(a.counter("absent"), 0);
        assert_eq!(a.gauges["depth"], 2.0);
        assert_eq!(a.spans.len(), 1);
    }

    #[test]
    fn snapshot_json_parses_back() {
        let mut s = TelemetrySnapshot::default();
        s.add("n", 2);
        let text = s.to_json().to_string();
        let back = json::parse(&text).unwrap();
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("n"))
                .and_then(Json::as_f64),
            Some(2.0)
        );
    }
}
