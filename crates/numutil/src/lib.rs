//! Numerical utilities shared by the LINGER/PLINGER reproduction.
//!
//! This crate provides the low-level numerics the physics crates are built
//! on: physical constants in the unit system of the code (comoving Mpc,
//! c = 1), cubic-spline and linear interpolation, Gauss–Legendre and
//! Gauss–Laguerre quadrature, Romberg integration, and bracketing root
//! finders.  Everything here is deterministic, allocation-conscious, and
//! extensively unit- and property-tested, because the Boltzmann solver
//! leans on these primitives in its innermost loops.

pub mod constants;
pub mod fft;
pub mod grid;
pub mod interp;
pub mod linalg;
pub mod quad;
pub mod roots;

pub use interp::{CubicSpline, LinearInterp};
pub use quad::{gauss_laguerre, gauss_legendre, romberg};
pub use roots::{bisect, brent};

/// Relative difference `|a-b| / max(|a|,|b|)`, zero-safe.
///
/// Used throughout the test suites to compare floating-point results.
#[inline]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// True when `a` and `b` agree to relative tolerance `tol`, with an
/// absolute floor `abs_floor` so that comparisons near zero do not blow up.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64, abs_floor: f64) -> bool {
    (a - b).abs() <= abs_floor + tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert!((rel_diff(1.0, 1.1) - 0.1 / 1.1).abs() < 1e-15);
        assert_eq!(rel_diff(-2.0, -2.0), 0.0);
    }

    #[test]
    fn approx_eq_floor() {
        assert!(approx_eq(1e-30, 0.0, 1e-10, 1e-20));
        assert!(!approx_eq(1.0, 2.0, 1e-10, 1e-20));
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10, 0.0));
    }
}
