//! Grid builders: linear, logarithmic, and the LINGER composite k-grid.
//!
//! LINGER samples wavenumbers densely where the transfer functions
//! oscillate (sub-horizon scales at recombination) and sparsely at the
//! largest scales; the composite builder reproduces that layout.

/// `n` points uniformly spaced on `[a, b]` inclusive.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    (0..n)
        .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
        .collect()
}

/// `n` points logarithmically spaced on `[a, b]` inclusive (`a, b > 0`).
pub fn logspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(a > 0.0 && b > 0.0, "logspace requires positive bounds");
    linspace(a.ln(), b.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

/// Composite k-grid: logarithmic below the pivot `k_split`, linear above,
/// deduplicated and sorted.  This mirrors LINGER's practice of covering
/// the COBE scales logarithmically while resolving the acoustic
/// oscillations with uniform spacing `dk ~ π / τ₀`.
pub fn composite_k_grid(
    k_min: f64,
    k_split: f64,
    k_max: f64,
    n_log: usize,
    n_lin: usize,
) -> Vec<f64> {
    assert!(k_min > 0.0 && k_min < k_split && k_split < k_max);
    let mut ks = logspace(k_min, k_split, n_log);
    let lin = linspace(k_split, k_max, n_lin);
    ks.extend_from_slice(&lin[1..]);
    ks
}

/// Strictly-increasing check used by grid consumers.
pub fn is_strictly_increasing(xs: &[f64]) -> bool {
    xs.windows(2).all(|w| w[1] > w[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let g = linspace(1.0, 3.0, 5);
        assert_eq!(g.len(), 5);
        assert_eq!(g[0], 1.0);
        assert_eq!(g[4], 3.0);
        assert!((g[2] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn logspace_ratios_constant() {
        let g = logspace(1e-4, 1.0, 5);
        let r0 = g[1] / g[0];
        for w in g.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-12);
        }
        assert!((g[0] - 1e-4).abs() < 1e-18);
        assert!((g[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn composite_grid_monotone() {
        let g = composite_k_grid(1e-4, 1e-2, 0.5, 20, 100);
        assert!(is_strictly_increasing(&g));
        assert_eq!(g.len(), 20 + 100 - 1);
        assert!((g[0] - 1e-4).abs() < 1e-18);
        assert!((g.last().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn composite_grid_rejects_bad_order() {
        let _ = composite_k_grid(1e-2, 1e-4, 0.5, 10, 10);
    }
}
