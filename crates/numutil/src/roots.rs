//! Bracketing root finders: bisection and Brent's method.
//!
//! Used to invert monotone relations — conformal time ↔ scale factor,
//! redshift of recombination, COBE normalization — where robustness
//! matters more than the last factor-of-two in iterations.

/// Error type for root finding.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign.
    NoBracket { fa: f64, fb: f64 },
    /// Iteration limit exhausted before reaching tolerance.
    MaxIterations { best: f64 },
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RootError::NoBracket { fa, fb } => {
                write!(f, "root not bracketed: f(a)={fa}, f(b)={fb}")
            }
            RootError::MaxIterations { best } => {
                write!(f, "root finder hit iteration limit near {best}")
            }
        }
    }
}

impl std::error::Error for RootError {}

/// Bisection on `[a, b]` to absolute tolerance `xtol`.
pub fn bisect<F: Fn(f64) -> f64>(
    f: F,
    mut a: f64,
    mut b: f64,
    xtol: f64,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { fa, fb });
    }
    for _ in 0..200 {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 || (b - a).abs() < xtol {
            return Ok(m);
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    Ok(0.5 * (a + b))
}

/// Brent's method on `[a, b]`: inverse-quadratic interpolation with
/// bisection fallback.  Converges superlinearly for smooth `f`.
pub fn brent<F: Fn(f64) -> f64>(f: F, a0: f64, b0: f64, xtol: f64) -> Result<f64, RootError> {
    let (mut a, mut b) = (a0, b0);
    let (mut fa, mut fb) = (f(a), f(b));
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { fa, fb });
    }
    let (mut c, mut fc) = (a, fa);
    let mut d = b - a;
    let mut e = d;
    for _ in 0..200 {
        if fb.abs() > fc.abs() {
            // b must be the best estimate
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * xtol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation.
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        if d.abs() > tol1 {
            b += d;
        } else {
            b += tol1.copysign(xm);
        }
        fb = f(b);
        if fb.signum() == fc.signum() {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(RootError::MaxIterations { best: b })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_sqrt2() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-14).unwrap();
        assert!((r - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn brent_transcendental() {
        let r = brent(|x: f64| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert!((r - 0.739_085_133_215_160_6).abs() < 1e-12);
    }

    #[test]
    fn brent_endpoint_root() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn no_bracket_is_error() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12),
            Err(RootError::NoBracket { .. })
        ));
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12),
            Err(RootError::NoBracket { .. })
        ));
    }

    #[test]
    fn brent_steep_function() {
        let r = brent(|x: f64| (x * 50.0).tanh() - 0.5, -1.0, 1.0, 1e-14).unwrap();
        let exact = 0.5f64.atanh() / 50.0;
        assert!((r - exact).abs() < 1e-12);
    }
}
