//! Radix-2 complex FFT and n-dimensional helpers.
//!
//! Powers the Gaussian-random-field synthesis of the initial-conditions
//! generator (LINGER's role inside the COSMICS package).  Plain
//! iterative Cooley–Tukey on interleaved `(re, im)` pairs; sizes must be
//! powers of two.

use std::f64::consts::PI;

/// In-place complex FFT of `data` = `[re0, im0, re1, im1, …]`.
/// `inverse = true` applies the conjugate transform *without* the `1/n`
/// normalization (callers normalize once).
pub fn fft_complex(data: &mut [f64], inverse: bool) {
    let n = data.len() / 2;
    assert!(
        n.is_power_of_two(),
        "FFT size must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // bit reversal
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(2 * i, 2 * j);
            data.swap(2 * i + 1, 2 * j + 1);
        }
    }
    // butterflies
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let mut cr = 1.0;
            let mut ci = 0.0;
            for j in 0..len / 2 {
                let a = i + j;
                let b = i + j + len / 2;
                let (ar, ai) = (data[2 * a], data[2 * a + 1]);
                let (br, bi) = (data[2 * b], data[2 * b + 1]);
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                data[2 * a] = ar + tr;
                data[2 * a + 1] = ai + ti;
                data[2 * b] = ar - tr;
                data[2 * b + 1] = ai - ti;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place 3-D complex FFT of an `n×n×n` cube (row-major, interleaved
/// complex).  `inverse` as in [`fft_complex`].
pub fn fft3_complex(data: &mut [f64], n: usize, inverse: bool) {
    assert_eq!(data.len(), 2 * n * n * n, "cube size mismatch");
    let mut line = vec![0.0; 2 * n];
    // x-lines (contiguous)
    for z in 0..n {
        for y in 0..n {
            let base = 2 * (z * n * n + y * n);
            fft_complex(&mut data[base..base + 2 * n], inverse);
        }
    }
    // y-lines
    for z in 0..n {
        for x in 0..n {
            for y in 0..n {
                let idx = 2 * (z * n * n + y * n + x);
                line[2 * y] = data[idx];
                line[2 * y + 1] = data[idx + 1];
            }
            fft_complex(&mut line, inverse);
            for y in 0..n {
                let idx = 2 * (z * n * n + y * n + x);
                data[idx] = line[2 * y];
                data[idx + 1] = line[2 * y + 1];
            }
        }
    }
    // z-lines
    for y in 0..n {
        for x in 0..n {
            for z in 0..n {
                let idx = 2 * (z * n * n + y * n + x);
                line[2 * z] = data[idx];
                line[2 * z + 1] = data[idx + 1];
            }
            fft_complex(&mut line, inverse);
            for z in 0..n {
                let idx = 2 * (z * n * n + y * n + x);
                data[idx] = line[2 * z];
                data[idx + 1] = line[2 * z + 1];
            }
        }
    }
}

/// Wavenumber (in fundamental-mode units, signed) of FFT bin `i` of `n`.
#[inline]
pub fn fft_freq(i: usize, n: usize) -> i64 {
    if i <= n / 2 {
        i as i64
    } else {
        i as i64 - n as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(n: usize) {
        let mut data: Vec<f64> = (0..2 * n)
            .map(|i| ((i * 37 + 11) % 17) as f64 - 8.0)
            .collect();
        let orig = data.clone();
        fft_complex(&mut data, false);
        fft_complex(&mut data, true);
        for (a, b) in data.iter().zip(&orig) {
            assert!((a / n as f64 - b).abs() < 1e-10, "roundtrip n={n}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            roundtrip(n);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let kbin = 5;
        let mut data = vec![0.0; 2 * n];
        for i in 0..n {
            let ph = 2.0 * PI * kbin as f64 * i as f64 / n as f64;
            data[2 * i] = ph.cos();
            data[2 * i + 1] = ph.sin();
        }
        fft_complex(&mut data, false);
        for b in 0..n {
            let mag = (data[2 * b].powi(2) + data[2 * b + 1].powi(2)).sqrt();
            if b == kbin {
                assert!((mag - n as f64).abs() < 1e-9, "bin {b}: {mag}");
            } else {
                assert!(mag < 1e-9, "leakage in bin {b}: {mag}");
            }
        }
    }

    #[test]
    fn parseval_identity() {
        let n = 128;
        let mut data: Vec<f64> = (0..2 * n)
            .map(|i| ((i * 13) % 29) as f64 * 0.1 - 1.0)
            .collect();
        let time_energy: f64 = data.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum();
        fft_complex(&mut data, false);
        let freq_energy: f64 = data
            .chunks(2)
            .map(|c| c[0] * c[0] + c[1] * c[1])
            .sum::<f64>()
            / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-8 * time_energy);
    }

    #[test]
    fn fft3_roundtrip() {
        let n = 8;
        let mut data: Vec<f64> = (0..2 * n * n * n)
            .map(|i| ((i * 31 + 7) % 23) as f64 * 0.3 - 3.0)
            .collect();
        let orig = data.clone();
        fft3_complex(&mut data, n, false);
        fft3_complex(&mut data, n, true);
        let norm = (n * n * n) as f64;
        for (a, b) in data.iter().zip(&orig) {
            assert!((a / norm - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fft3_plane_wave() {
        let n = 8;
        let (kx, ky, kz) = (2i64, 1, 3);
        let mut data = vec![0.0; 2 * n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let ph = 2.0
                        * PI
                        * (kx as f64 * x as f64 + ky as f64 * y as f64 + kz as f64 * z as f64)
                        / n as f64;
                    let idx = 2 * (z * n * n + y * n + x);
                    data[idx] = ph.cos();
                    data[idx + 1] = ph.sin();
                }
            }
        }
        fft3_complex(&mut data, n, false);
        let target = 2 * ((kz as usize) * n * n + (ky as usize) * n + kx as usize);
        let mag = (data[target].powi(2) + data[target + 1].powi(2)).sqrt();
        assert!((mag - (n * n * n) as f64).abs() < 1e-6, "mag = {mag}");
    }

    #[test]
    fn fft_freq_signs() {
        assert_eq!(fft_freq(0, 8), 0);
        assert_eq!(fft_freq(3, 8), 3);
        assert_eq!(fft_freq(4, 8), 4);
        assert_eq!(fft_freq(5, 8), -3);
        assert_eq!(fft_freq(7, 8), -1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let mut d = vec![0.0; 6];
        fft_complex(&mut d, false);
    }
}
