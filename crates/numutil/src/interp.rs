//! Interpolation: natural cubic splines and piecewise-linear tables.
//!
//! The thermal history, background expansion, and transfer functions are
//! all tabulated once and then queried millions of times inside the ODE
//! right-hand side, so lookup speed matters.  Both interpolants use a
//! branch-light bisection search with a cached hint for monotone access
//! patterns.

/// Locate the interval `i` such that `xs[i] <= x < xs[i+1]` by bisection.
///
/// Returns `0` for `x` below the table and `n-2` above, i.e. evaluation
/// extrapolates linearly/cubically off the ends rather than panicking —
/// the physics tables are always built to generously cover the queried
/// range, and the integration tests assert that.
#[inline]
pub fn locate(xs: &[f64], x: f64) -> usize {
    debug_assert!(xs.len() >= 2);
    if x <= xs[0] {
        return 0;
    }
    let n = xs.len();
    if x >= xs[n - 1] {
        return n - 2;
    }
    let mut lo = 0usize;
    let mut hi = n - 1;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// [`locate`] with a starting guess: hunt outward from `hint` with
/// geometrically growing steps to bracket `x`, then bisect inside the
/// bracket.  O(1) for the near-monotone query sequences an ODE driver
/// produces, and returns exactly the index [`locate`] would — the
/// bracketed interval is unique, so downstream interpolation arithmetic
/// is unchanged to the last bit.
#[inline]
pub fn locate_hunt(xs: &[f64], x: f64, hint: usize) -> usize {
    debug_assert!(xs.len() >= 2);
    let n = xs.len();
    if x <= xs[0] {
        return 0;
    }
    if x >= xs[n - 1] {
        return n - 2;
    }
    let mut lo = hint.min(n - 2);
    let mut hi;
    if xs[lo] <= x {
        // hunt upward
        if x < xs[lo + 1] {
            return lo;
        }
        let mut step = 1usize;
        hi = lo + 1;
        while xs[hi] <= x {
            lo = hi;
            hi = (lo + step).min(n - 1);
            step *= 2;
        }
    } else {
        // hunt downward (x > xs[0] guarantees termination)
        let mut step = 1usize;
        hi = lo;
        loop {
            lo = hi.saturating_sub(step);
            if xs[lo] <= x {
                break;
            }
            hi = lo;
            step *= 2;
        }
    }
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if xs[mid] <= x {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Piecewise-linear interpolation over a strictly increasing abscissa.
#[derive(Debug, Clone)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Build from parallel arrays.  `xs` must be strictly increasing and
    /// at least two points long.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(xs.len() >= 2, "need at least two points");
        assert!(
            xs.windows(2).all(|w| w[1] > w[0]),
            "abscissa must be strictly increasing"
        );
        Self { xs, ys }
    }

    /// Interpolated value at `x` (linear extrapolation off the ends).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        let i = locate(&self.xs, x);
        let t = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        self.ys[i] + t * (self.ys[i + 1] - self.ys[i])
    }

    /// The abscissa.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

/// Natural cubic spline with precomputed second derivatives.
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    y2: Vec<f64>,
}

impl CubicSpline {
    /// Construct a natural spline (zero second derivative at both ends).
    pub fn natural(xs: Vec<f64>, ys: Vec<f64>) -> Self {
        Self::with_bc(xs, ys, None, None)
    }

    /// Construct a clamped spline with prescribed end-point first
    /// derivatives where given (`None` = natural end).
    pub fn with_bc(xs: Vec<f64>, ys: Vec<f64>, yp0: Option<f64>, ypn: Option<f64>) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        let n = xs.len();
        assert!(n >= 3, "need at least three points for a cubic spline");
        assert!(
            xs.windows(2).all(|w| w[1] > w[0]),
            "abscissa must be strictly increasing"
        );
        // Tridiagonal solve for the second derivatives (Numerical-Recipes
        // style forward sweep + back substitution).
        let mut y2 = vec![0.0; n];
        let mut u = vec![0.0; n];
        match yp0 {
            None => {
                y2[0] = 0.0;
                u[0] = 0.0;
            }
            Some(d) => {
                y2[0] = -0.5;
                u[0] = (3.0 / (xs[1] - xs[0])) * ((ys[1] - ys[0]) / (xs[1] - xs[0]) - d);
            }
        }
        for i in 1..n - 1 {
            let sig = (xs[i] - xs[i - 1]) / (xs[i + 1] - xs[i - 1]);
            let p = sig * y2[i - 1] + 2.0;
            y2[i] = (sig - 1.0) / p;
            let dy1 = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i]);
            let dy0 = (ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]);
            u[i] = (6.0 * (dy1 - dy0) / (xs[i + 1] - xs[i - 1]) - sig * u[i - 1]) / p;
        }
        let (qn, un) = match ypn {
            None => (0.0, 0.0),
            Some(d) => {
                let h = xs[n - 1] - xs[n - 2];
                (0.5, (3.0 / h) * (d - (ys[n - 1] - ys[n - 2]) / h))
            }
        };
        y2[n - 1] = (un - qn * u[n - 2]) / (qn * y2[n - 2] + 1.0);
        for i in (0..n - 1).rev() {
            y2[i] = y2[i] * y2[i + 1] + u[i];
        }
        Self { xs, ys, y2 }
    }

    /// The cubic on segment `i` evaluated at `x` — single source of the
    /// interpolation arithmetic, so the hinted and bisecting entry
    /// points are bitwise interchangeable.
    #[inline]
    fn segment_value(&self, i: usize, x: f64) -> f64 {
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a * a * a - a) * self.y2[i] + (b * b * b - b) * self.y2[i + 1]) * (h * h) / 6.0
    }

    /// First derivative of the segment-`i` cubic at `x`.
    #[inline]
    fn segment_deriv(&self, i: usize, x: f64) -> f64 {
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        (self.ys[i + 1] - self.ys[i]) / h
            + ((3.0 * b * b - 1.0) * self.y2[i + 1] - (3.0 * a * a - 1.0) * self.y2[i]) * h / 6.0
    }

    /// Spline value at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.segment_value(locate(&self.xs, x), x)
    }

    /// First derivative of the spline at `x`.
    #[inline]
    pub fn deriv(&self, x: f64) -> f64 {
        self.segment_deriv(locate(&self.xs, x), x)
    }

    /// [`Self::eval`] with a caller-held interval hint (updated in
    /// place).  Bitwise identical to `eval` for every `x`; only the
    /// interval search differs.
    #[inline]
    pub fn eval_hunt(&self, x: f64, hint: &mut usize) -> f64 {
        let i = locate_hunt(&self.xs, x, *hint);
        *hint = i;
        self.segment_value(i, x)
    }

    /// [`Self::deriv`] with a caller-held interval hint (updated in
    /// place).  Bitwise identical to `deriv` for every `x`.
    #[inline]
    pub fn deriv_hunt(&self, x: f64, hint: &mut usize) -> f64 {
        let i = locate_hunt(&self.xs, x, *hint);
        *hint = i;
        self.segment_deriv(i, x)
    }

    /// Definite integral of the spline from `xs[0]` to `x` (exact for the
    /// piecewise-cubic interpolant).
    pub fn integral_to(&self, x: f64) -> f64 {
        let iend = locate(&self.xs, x);
        let mut sum = 0.0;
        for i in 0..=iend {
            let hi = self.xs[i + 1].min(x).max(self.xs[i]);
            if i < iend {
                sum += self.segment_integral(i, self.xs[i + 1]);
            } else {
                sum += self.segment_integral(i, hi.max(self.xs[i]));
                // Extrapolated tail beyond the table:
                if x > self.xs[self.xs.len() - 1] {
                    // integrate the last cubic segment's extension
                    sum += self.segment_integral_range(i, self.xs[i + 1], x)
                }
            }
        }
        if x < self.xs[0] {
            // integral from xs[0] backwards uses the first segment's cubic
            return -self.segment_integral_range(0, x, self.xs[0]);
        }
        sum
    }

    /// Integral over segment `i` from `xs[i]` to `xu`.
    fn segment_integral(&self, i: usize, xu: f64) -> f64 {
        self.segment_integral_range(i, self.xs[i], xu)
    }

    /// Integral of segment `i`'s cubic between arbitrary bounds.
    fn segment_integral_range(&self, i: usize, xl: f64, xu: f64) -> f64 {
        let h = self.xs[i + 1] - self.xs[i];
        let prim = |x: f64| -> f64 {
            let a = (self.xs[i + 1] - x) / h;
            let b = (x - self.xs[i]) / h;
            // ∫ y dx with y = a y_i + b y_{i+1} + ((a³-a) y2_i + (b³-b) y2_{i+1}) h²/6
            // antiderivative in terms of a and b (da/dx = -1/h, db/dx = 1/h):
            let t1 = -h * a * a / 2.0 * self.ys[i] + h * b * b / 2.0 * self.ys[i + 1];
            let t2 = (-h * (a.powi(4) / 4.0 - a * a / 2.0) * self.y2[i]
                + h * (b.powi(4) / 4.0 - b * b / 2.0) * self.y2[i + 1])
                * (h * h)
                / 6.0;
            t1 + t2
        };
        prim(xu) - prim(xl)
    }

    /// The abscissa.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The ordinates.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, a: f64, b: f64) -> Vec<f64> {
        (0..n)
            .map(|i| a + (b - a) * i as f64 / (n - 1) as f64)
            .collect()
    }

    #[test]
    fn locate_finds_interval() {
        let xs = [0.0, 1.0, 2.0, 5.0];
        assert_eq!(locate(&xs, -1.0), 0);
        assert_eq!(locate(&xs, 0.5), 0);
        assert_eq!(locate(&xs, 1.0), 1);
        assert_eq!(locate(&xs, 4.9), 2);
        assert_eq!(locate(&xs, 7.0), 2);
    }

    #[test]
    fn locate_hunt_agrees_with_locate_everywhere() {
        // irregular grid + every hint + a dense sweep of x, including
        // knots, off-table points, and both table ends
        let xs = [0.0, 0.7, 1.0, 2.0, 2.1, 5.0, 9.0];
        let mut queries: Vec<f64> = xs.to_vec();
        for i in 0..200 {
            queries.push(-1.0 + 11.0 * i as f64 / 199.0);
        }
        for hint in 0..xs.len() + 2 {
            for &x in &queries {
                assert_eq!(
                    locate_hunt(&xs, x, hint),
                    locate(&xs, x),
                    "x={x} hint={hint}"
                );
            }
        }
    }

    #[test]
    fn hunted_spline_is_bitwise_identical() {
        let xs = grid(64, -3.0, 4.0);
        let ys: Vec<f64> = xs.iter().map(|&x| (0.7 * x).sin() + 0.1 * x * x).collect();
        let sp = CubicSpline::natural(xs, ys);
        let mut hint = 0usize;
        // monotone up, then jump back down, then random-ish: every access
        // pattern must reproduce the bisecting path exactly
        let mut queries = Vec::new();
        for i in 0..300 {
            queries.push(-3.5 + 8.0 * i as f64 / 299.0);
        }
        for i in 0..300 {
            queries.push(4.5 - 8.0 * i as f64 / 299.0);
        }
        for &x in &queries {
            assert_eq!(sp.eval_hunt(x, &mut hint).to_bits(), sp.eval(x).to_bits());
            assert_eq!(sp.deriv_hunt(x, &mut hint).to_bits(), sp.deriv(x).to_bits());
        }
    }

    #[test]
    fn linear_reproduces_line() {
        let xs = grid(11, 0.0, 10.0);
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let li = LinearInterp::new(xs, ys);
        for &x in &[0.3, 4.7, 9.99, -1.0, 12.0] {
            assert!((li.eval(x) - (3.0 * x - 2.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn spline_reproduces_cubic_on_interior() {
        // a clamped spline with exact end derivatives reproduces any cubic
        let f = |x: f64| 1.0 + x - 0.5 * x * x + 0.25 * x * x * x;
        let fp = |x: f64| 1.0 - x + 0.75 * x * x;
        let xs = grid(9, 0.0, 4.0);
        let ys: Vec<f64> = xs.iter().map(|&x| f(x)).collect();
        let sp = CubicSpline::with_bc(xs, ys, Some(fp(0.0)), Some(fp(4.0)));
        for i in 0..=40 {
            let x = 0.1 * i as f64;
            assert!(
                (sp.eval(x) - f(x)).abs() < 1e-10,
                "x={x} sp={} f={}",
                sp.eval(x),
                f(x)
            );
        }
    }

    #[test]
    fn spline_derivative_accuracy() {
        let xs = grid(60, 0.0, std::f64::consts::PI);
        let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
        let sp = CubicSpline::with_bc(xs, ys, Some(1.0), Some(-1.0));
        for i in 1..30 {
            let x = 0.1 * i as f64;
            assert!(
                (sp.deriv(x) - x.cos()).abs() < 1e-5,
                "deriv mismatch at {x}"
            );
        }
    }

    #[test]
    fn spline_integral_of_sine() {
        let xs = grid(200, 0.0, std::f64::consts::PI);
        let ys: Vec<f64> = xs.iter().map(|&x| x.sin()).collect();
        let sp = CubicSpline::with_bc(xs, ys, Some(1.0), Some(-1.0));
        let integral = sp.integral_to(std::f64::consts::PI);
        assert!((integral - 2.0).abs() < 1e-8, "∫sin = {integral}");
        let half = sp.integral_to(std::f64::consts::PI / 2.0);
        assert!((half - 1.0).abs() < 1e-8, "∫sin half = {half}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn spline_rejects_unsorted() {
        let _ = CubicSpline::natural(vec![0.0, 2.0, 1.0], vec![0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn linear_rejects_mismatch() {
        let _ = LinearInterp::new(vec![0.0, 1.0], vec![0.0]);
    }
}
