//! Physical and astronomical constants in the LINGER unit system.
//!
//! The code works in comoving megaparsecs with the speed of light set to
//! one, the convention of the original COSMICS/LINGER package.  Times are
//! conformal times in Mpc, wavenumbers in Mpc⁻¹, and the Hubble constant
//! enters as `H0 = h / 2997.92458 Mpc⁻¹`.

/// Speed of light in km/s (exact, SI definition).
pub const C_KM_S: f64 = 299_792.458;

/// Hubble distance `c / (100 km/s/Mpc)` in Mpc.  `H0 = h / HUBBLE_DIST_MPC`.
pub const HUBBLE_DIST_MPC: f64 = 2_997.924_58;

/// CMB temperature today in kelvin (COBE/FIRAS value used by the paper).
pub const T_CMB_K: f64 = 2.726;

/// Photon density parameter times h²: `Ω_γ h² = 2.47e-5 (T/2.726K)⁴`.
///
/// Derived from `ρ_γ = (π²/15) (k_B T)⁴ / (ħc)³ c⁻²` against the critical
/// density `ρ_c = 1.8788e-26 h² kg/m³`.
pub const OMEGA_GAMMA_H2: f64 = 2.470_6e-5;

/// Effective number of massless neutrino species in the standard model
/// of the epoch (three species, instantaneous decoupling).
pub const N_NU_DEFAULT: f64 = 3.0;

/// `(7/8) (4/11)^{4/3}` — energy density of one massless neutrino species
/// relative to the photons after e± annihilation.
pub const NU_PHOTON_RATIO: f64 = 0.227_107_317_660_67;

/// Thomson cross-section in m².
pub const SIGMA_T_M2: f64 = 6.652_458_73e-29;

/// Thomson cross-section times the critical-density hydrogen number
/// density scale, expressed so that the conformal opacity is
/// `dτ/dτ_conf = OPACITY_COEFF * Ω_b h² * (1-Y_He/ ..)` — computed in the
/// recomb crate; here we keep the raw ingredients.
pub const M_PROTON_KG: f64 = 1.672_621_923_69e-27;

/// Critical density today divided by h², in kg/m³.
pub const RHO_CRIT_H2_KG_M3: f64 = 1.878_34e-26;

/// One megaparsec in metres.
pub const MPC_M: f64 = 3.085_677_581_49e22;

/// Boltzmann constant in eV/K.
pub const K_B_EV_K: f64 = 8.617_333_262e-5;

/// Neutrino temperature today relative to photons: `(4/11)^{1/3}`.
pub const T_NU_T_GAMMA: f64 = 0.713_765_855_503_61;

/// Helium mass fraction assumed by the standard-CDM runs of the paper.
pub const Y_HELIUM_DEFAULT: f64 = 0.24;

/// Hydrogen binding energy in eV.
pub const E_ION_H_EV: f64 = 13.605_693_122_99;

/// Helium first ionization energy in eV.
pub const E_ION_HE1_EV: f64 = 24.587_387_94;

/// Helium second ionization energy in eV.
pub const E_ION_HE2_EV: f64 = 54.417_765_28;

/// Lyman-alpha transition energy of hydrogen in eV (needed by the Peebles
/// two-photon escape factor).
pub const E_LYA_EV: f64 = 10.198_8;

/// Electron mass times c² in eV.
pub const M_E_C2_EV: f64 = 510_998.95;

/// `π`.
pub const PI: f64 = std::f64::consts::PI;

/// `4π G` in units where densities are expressed as `8πG ρ a²/3` — the
/// background crate works directly with `Ω` parameters, so Newton's
/// constant never appears explicitly; this constant is retained for the
/// Einstein source terms written as `4πG a² ρ̄ δ = (3/2) ℋ₀² Ω a⁻¹ δ` etc.
pub const FOUR_PI_G_MARKER: f64 = 1.0;

/// Conversion: `Ω_b h²` → hydrogen number density today in m⁻³,
/// `n_H0 = Ω_b h² (1-Y) ρ_crit,h²/m_p`.
#[inline]
pub fn n_hydrogen_today_m3(omega_b_h2: f64, y_helium: f64) -> f64 {
    omega_b_h2 * (1.0 - y_helium) * RHO_CRIT_H2_KG_M3 / M_PROTON_KG
}

/// Conformal Thomson opacity coefficient: `σ_T n_e c` expressed per Mpc of
/// conformal time when `n_e` is the *present-day comoving* electron density
/// in m⁻³ (the scale-factor dependence is applied by the caller).
#[inline]
pub fn thomson_rate_per_mpc(n_e_m3: f64) -> f64 {
    SIGMA_T_M2 * n_e_m3 * MPC_M
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omega_gamma_consistent_with_temperature() {
        // ρ_γ = a_rad T⁴ / c², a_rad = 7.5657e-16 J m⁻³ K⁻⁴
        let a_rad = 7.565_733e-16;
        let rho_gamma = a_rad * T_CMB_K.powi(4) / (C_KM_S * 1e3).powi(2);
        let omega = rho_gamma / RHO_CRIT_H2_KG_M3;
        assert!(
            (omega - OMEGA_GAMMA_H2).abs() / OMEGA_GAMMA_H2 < 2e-3,
            "Ω_γh² = {omega}"
        );
    }

    #[test]
    fn neutrino_ratio_value() {
        let expect = (7.0 / 8.0) * (4.0f64 / 11.0).powf(4.0 / 3.0);
        assert!((NU_PHOTON_RATIO - expect).abs() < 1e-12);
    }

    #[test]
    fn t_nu_ratio_value() {
        let expect = (4.0f64 / 11.0).powf(1.0 / 3.0);
        assert!((T_NU_T_GAMMA - expect).abs() < 1e-11);
    }

    #[test]
    fn hydrogen_density_scale() {
        // Ω_b h² = 0.0125, Y = 0.24 → n_H0 ≈ 0.17 m⁻³ (classic value ~2e-7 cm⁻³)
        let n = n_hydrogen_today_m3(0.0125, 0.24);
        assert!(n > 0.08 && n < 0.3, "n_H0 = {n}");
    }

    #[test]
    fn thomson_rate_positive_scale() {
        let n = n_hydrogen_today_m3(0.0125, 0.24);
        let rate = thomson_rate_per_mpc(n);
        // Present-day comoving Thomson opacity is a small number per Mpc.
        assert!(rate > 1e-7 && rate < 1e-3, "rate = {rate}");
    }
}
