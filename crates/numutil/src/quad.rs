//! Quadrature: Gauss–Legendre, Gauss–Laguerre, Romberg, and trapezoid
//! helpers.
//!
//! Gauss–Laguerre rules integrate the massive-neutrino Fermi–Dirac moments
//! (∫₀^∞ f(q) e^{-q} w(q) dq after factoring the exponential), while
//! Gauss–Legendre handles finite-interval background integrals and σ₈.

/// Nodes and weights of an `n`-point Gauss–Legendre rule on `[-1, 1]`,
/// computed by Newton iteration on the Legendre polynomial (accurate to
/// machine precision for n ≲ 1000).
pub fn gauss_legendre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut x = vec![0.0; n];
    let mut w = vec![0.0; n];
    let m = n.div_ceil(2);
    for i in 0..m {
        // Chebyshev-like initial guess for the i-th root.
        let mut z = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        let mut pp = 0.0;
        for _ in 0..100 {
            // Evaluate P_n(z) and its derivative by recurrence.
            let mut p0 = 1.0;
            let mut p1 = 0.0;
            for j in 0..n {
                let p2 = p1;
                p1 = p0;
                p0 = ((2.0 * j as f64 + 1.0) * z * p1 - j as f64 * p2) / (j as f64 + 1.0);
            }
            pp = n as f64 * (z * p0 - p1) / (z * z - 1.0);
            let dz = p0 / pp;
            z -= dz;
            if dz.abs() < 1e-15 {
                break;
            }
        }
        x[i] = -z;
        x[n - 1 - i] = z;
        let wi = 2.0 / ((1.0 - z * z) * pp * pp);
        w[i] = wi;
        w[n - 1 - i] = wi;
    }
    (x, w)
}

/// Integrate `f` over `[a, b]` with an `n`-point Gauss–Legendre rule.
pub fn gl_integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> f64 {
    let (xs, ws) = gauss_legendre(n);
    let c = 0.5 * (b - a);
    let d = 0.5 * (b + a);
    xs.iter()
        .zip(&ws)
        .map(|(&x, &w)| w * f(c * x + d))
        .sum::<f64>()
        * c
}

/// Nodes and weights of an `n`-point Gauss–Laguerre rule:
/// `∫₀^∞ e^{-x} f(x) dx ≈ Σ w_i f(x_i)`.
///
/// Newton iteration on the Laguerre polynomial; good to near machine
/// precision for n ≲ 60, plenty for the ≤ 32-point neutrino grids.
pub fn gauss_laguerre(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1);
    let mut x = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut z = 0.0f64;
    for i in 0..n {
        // Stroud & Secrest initial guesses.
        if i == 0 {
            z = 3.0 / (1.0 + 2.4 * n as f64);
        } else if i == 1 {
            z += 15.0 / (1.0 + 2.5 * n as f64);
        } else {
            let ai = i as f64 - 1.0;
            z += (1.0 + 2.55 * ai) / (1.9 * ai) * (z - x[i - 2]);
        }
        let mut pp = 0.0;
        let mut p1 = 0.0;
        for _ in 0..200 {
            p1 = 1.0;
            let mut p2 = 0.0;
            for j in 0..n {
                let p3 = p2;
                p2 = p1;
                p1 = ((2.0 * j as f64 + 1.0 - z) * p2 - j as f64 * p3) / (j as f64 + 1.0);
            }
            pp = n as f64 * (p1 - p2) / z;
            let dz = p1 / pp;
            z -= dz;
            if dz.abs() < 1e-14 * z.abs().max(1.0) {
                break;
            }
        }
        x[i] = z;
        // w_i = -1 / (n * P'_n(x_i) * P_{n-1}(x_i)) — expressed via pp:
        w[i] = -1.0 / (pp * n as f64 * poly_laguerre(n - 1, z));
        let _ = p1;
    }
    (x, w)
}

/// Laguerre polynomial `L_n(x)` by recurrence.
fn poly_laguerre(n: usize, x: f64) -> f64 {
    let mut p1 = 1.0;
    let mut p2 = 0.0;
    for j in 0..n {
        let p3 = p2;
        p2 = p1;
        p1 = ((2.0 * j as f64 + 1.0 - x) * p2 - j as f64 * p3) / (j as f64 + 1.0);
    }
    p1
}

/// Romberg integration of `f` over `[a, b]` to relative tolerance `tol`.
///
/// Returns `(value, estimated_error)`.  Falls back to the deepest level
/// (2¹⁶ panels) if the tolerance is not reached.
pub fn romberg<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> (f64, f64) {
    const KMAX: usize = 17;
    let mut r = [[0.0f64; KMAX]; KMAX];
    let mut h = b - a;
    r[0][0] = 0.5 * h * (f(a) + f(b));
    let mut n = 1usize;
    for k in 1..KMAX {
        h *= 0.5;
        // Trapezoid refinement: add the midpoints.
        let mut sum = 0.0;
        for i in 0..n {
            sum += f(a + (2 * i + 1) as f64 * h);
        }
        n *= 2;
        r[k][0] = 0.5 * r[k - 1][0] + h * sum;
        // Richardson extrapolation.
        let mut fac = 1.0;
        for j in 1..=k {
            fac *= 4.0;
            r[k][j] = r[k][j - 1] + (r[k][j - 1] - r[k - 1][j - 1]) / (fac - 1.0);
        }
        let err = (r[k][k] - r[k - 1][k - 1]).abs();
        if k >= 4 && err <= tol * r[k][k].abs().max(1e-300) {
            return (r[k][k], err);
        }
    }
    let last = KMAX - 1;
    (r[last][last], (r[last][last] - r[last - 1][last - 1]).abs())
}

/// Composite trapezoid rule over tabulated samples `(xs, ys)`.
pub fn trapz(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let mut sum = 0.0;
    for i in 1..xs.len() {
        sum += 0.5 * (ys[i] + ys[i - 1]) * (xs[i] - xs[i - 1]);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gl_nodes_symmetric_and_weights_sum() {
        for n in [2usize, 5, 16, 64] {
            let (xs, ws) = gauss_legendre(n);
            let wsum: f64 = ws.iter().sum();
            assert!((wsum - 2.0).abs() < 1e-12, "n={n} wsum={wsum}");
            for i in 0..n {
                assert!((xs[i] + xs[n - 1 - i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gl_exact_for_polynomials() {
        // n-point rule is exact for degree 2n-1
        let val = gl_integrate(|x| x.powi(9) + 3.0 * x.powi(4) - x, -1.0, 1.0, 5);
        let exact = 2.0 * 3.0 / 5.0;
        assert!((val - exact).abs() < 1e-12, "val={val}");
    }

    #[test]
    fn gl_integrates_exp() {
        let val = gl_integrate(f64::exp, 0.0, 1.0, 12);
        assert!((val - (std::f64::consts::E - 1.0)).abs() < 1e-13);
    }

    #[test]
    fn laguerre_weights_sum_to_one() {
        // ∫ e^{-x} dx = 1
        for n in [4usize, 8, 16, 24, 32] {
            let (_, ws) = gauss_laguerre(n);
            let s: f64 = ws.iter().sum();
            assert!((s - 1.0).abs() < 1e-10, "n={n} sum={s}");
        }
    }

    #[test]
    fn laguerre_moments() {
        // ∫ e^{-x} x^k dx = k!
        let (xs, ws) = gauss_laguerre(16);
        for (k, expect) in [(1u32, 1.0f64), (2, 2.0), (3, 6.0), (5, 120.0)] {
            let s: f64 = xs
                .iter()
                .zip(&ws)
                .map(|(&x, &w)| w * x.powi(k as i32))
                .sum();
            assert!((s - expect).abs() / expect < 1e-10, "k={k} s={s}");
        }
    }

    #[test]
    fn laguerre_fermi_dirac_density() {
        // ∫₀^∞ q²/(e^q+1) dq = (3/2) ζ(3) = 1.80309...
        let (xs, ws) = gauss_laguerre(24);
        let s: f64 = xs
            .iter()
            .zip(&ws)
            .map(|(&x, &w)| w * x * x * (x.exp() / (x.exp() + 1.0)))
            .sum();
        let exact = 1.5 * 1.202_056_903_159_594;
        assert!((s - exact).abs() / exact < 1e-8, "s={s} exact={exact}");
    }

    #[test]
    fn romberg_sine() {
        let (v, e) = romberg(f64::sin, 0.0, std::f64::consts::PI, 1e-12);
        assert!((v - 2.0).abs() < 1e-10, "v={v} err={e}");
    }

    #[test]
    fn romberg_sharp_gaussian() {
        let (v, _) = romberg(|x: f64| (-x * x / 0.02).exp(), -1.0, 1.0, 1e-10);
        let exact = (0.02f64 * std::f64::consts::PI).sqrt(); // erf(≫1) ≈ 1
        assert!((v - exact).abs() / exact < 1e-8, "v={v}");
    }

    #[test]
    fn trapz_linear_exact() {
        let xs = vec![0.0, 0.5, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((trapz(&xs, &ys) - 12.0).abs() < 1e-12);
    }
}
