//! Small dense linear algebra: tridiagonal and general LU solves.
//!
//! The spline setup uses a dedicated tridiagonal solver; the general LU
//! path backs the few-by-few systems in the initial-condition solver and
//! the polynomial fits in the benchmark harness.

/// Solve a tridiagonal system with the Thomas algorithm.
///
/// `sub`, `diag`, `sup` are the sub-, main, and super-diagonals
/// (`sub[0]` and `sup[n-1]` are ignored).  Returns `None` if a pivot
/// underflows.
pub fn solve_tridiag(sub: &[f64], diag: &[f64], sup: &[f64], rhs: &[f64]) -> Option<Vec<f64>> {
    let n = diag.len();
    assert!(sub.len() == n && sup.len() == n && rhs.len() == n);
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    if diag[0].abs() < 1e-300 {
        return None;
    }
    c[0] = sup[0] / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let m = diag[i] - sub[i] * c[i - 1];
        if m.abs() < 1e-300 {
            return None;
        }
        c[i] = sup[i] / m;
        d[i] = (rhs[i] - sub[i] * d[i - 1]) / m;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    Some(x)
}

/// LU decomposition with partial pivoting, in place.  Returns the pivot
/// permutation, or `None` for a singular matrix.  `a` is row-major `n×n`.
pub fn lu_decompose(a: &mut [f64], n: usize) -> Option<Vec<usize>> {
    assert_eq!(a.len(), n * n);
    let mut piv: Vec<usize> = (0..n).collect();
    for col in 0..n {
        // Find pivot.
        let mut pmax = a[col * n + col].abs();
        let mut prow = col;
        for r in col + 1..n {
            if a[r * n + col].abs() > pmax {
                pmax = a[r * n + col].abs();
                prow = r;
            }
        }
        if pmax < 1e-300 {
            return None;
        }
        if prow != col {
            for k in 0..n {
                a.swap(col * n + k, prow * n + k);
            }
            piv.swap(col, prow);
        }
        let inv = 1.0 / a[col * n + col];
        for r in col + 1..n {
            let f = a[r * n + col] * inv;
            a[r * n + col] = f;
            for k in col + 1..n {
                a[r * n + k] -= f * a[col * n + k];
            }
        }
    }
    Some(piv)
}

/// Solve `LUx = Pb` given the factorization from [`lu_decompose`].
pub fn lu_solve(lu: &[f64], n: usize, piv: &[usize], b: &[f64]) -> Vec<f64> {
    assert_eq!(lu.len(), n * n);
    assert_eq!(b.len(), n);
    let mut x: Vec<f64> = piv.iter().map(|&p| b[p]).collect();
    // Forward substitution (unit lower triangular).
    for r in 1..n {
        let mut s = x[r];
        for k in 0..r {
            s -= lu[r * n + k] * x[k];
        }
        x[r] = s;
    }
    // Back substitution.
    for r in (0..n).rev() {
        let mut s = x[r];
        for k in r + 1..n {
            s -= lu[r * n + k] * x[k];
        }
        x[r] = s / lu[r * n + r];
    }
    x
}

/// Convenience: solve a general dense system `Ax = b` (destroys copies).
pub fn solve_dense(a: &[f64], n: usize, b: &[f64]) -> Option<Vec<f64>> {
    let mut lu = a.to_vec();
    let piv = lu_decompose(&mut lu, n)?;
    Some(lu_solve(&lu, n, &piv, b))
}

/// Least-squares polynomial fit of degree `deg` via normal equations.
/// Returns coefficients lowest order first.
pub fn polyfit(xs: &[f64], ys: &[f64], deg: usize) -> Option<Vec<f64>> {
    assert_eq!(xs.len(), ys.len());
    let m = deg + 1;
    let mut ata = vec![0.0; m * m];
    let mut atb = vec![0.0; m];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut xi = vec![1.0; m];
        for j in 1..m {
            xi[j] = xi[j - 1] * x;
        }
        for i in 0..m {
            atb[i] += xi[i] * y;
            for j in 0..m {
                ata[i * m + j] += xi[i] * xi[j];
            }
        }
    }
    solve_dense(&ata, m, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tridiag_known_solution() {
        // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] → x = [1; 2; 3]
        let x = solve_tridiag(
            &[0.0, 1.0, 1.0],
            &[2.0, 2.0, 2.0],
            &[1.0, 1.0, 0.0],
            &[4.0, 8.0, 8.0],
        )
        .unwrap();
        for (xi, ei) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - ei).abs() < 1e-12);
        }
    }

    #[test]
    fn lu_solves_3x3() {
        let a = [2.0, 1.0, -1.0, -3.0, -1.0, 2.0, -2.0, 1.0, 2.0];
        let b = [8.0, -11.0, -3.0];
        let x = solve_dense(&a, 3, &b).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expect) {
            assert!((xi - ei).abs() < 1e-12, "x = {x:?}");
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert!(solve_dense(&a, 2, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn polyfit_recovers_quadratic() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 - 2.0 * x + 0.5 * x * x).collect();
        let c = polyfit(&xs, &ys, 2).unwrap();
        assert!((c[0] - 1.5).abs() < 1e-9);
        assert!((c[1] + 2.0).abs() < 1e-9);
        assert!((c[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn lu_random_roundtrip() {
        // A fixed pseudo-random 6x6 system: A x = b, then check residual.
        let n = 6;
        let mut a = vec![0.0; n * n];
        let mut state = 1234567u64;
        let mut rng = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for v in a.iter_mut() {
            *v = rng();
        }
        // diagonally dominate to guarantee nonsingularity
        for i in 0..n {
            a[i * n + i] += 4.0;
        }
        let xtrue: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * xtrue[j];
            }
        }
        let x = solve_dense(&a, n, &b).unwrap();
        for (xi, ei) in x.iter().zip(&xtrue) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }
}
