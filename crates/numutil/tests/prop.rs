//! Property-based tests for the numerical utility layer.

use numutil::interp::{locate, CubicSpline, LinearInterp};
use numutil::linalg::solve_tridiag;
use numutil::quad::{gauss_laguerre, gauss_legendre, gl_integrate, trapz};
use numutil::roots::brent;
use proptest::prelude::*;

fn sorted_grid(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, n).prop_map(|steps| {
        let mut acc = 0.0;
        let mut out = Vec::with_capacity(steps.len() + 1);
        out.push(0.0);
        for s in steps {
            acc += s;
            out.push(acc);
        }
        out
    })
}

proptest! {
    #[test]
    fn locate_bounds_the_point(grid in sorted_grid(20), t in 0.0f64..1.0) {
        let x = grid[0] + t * (grid[grid.len()-1] - grid[0]);
        let i = locate(&grid, x);
        prop_assert!(i + 1 < grid.len());
        if x >= grid[0] && x <= grid[grid.len()-1] {
            prop_assert!(grid[i] <= x + 1e-12);
            prop_assert!(x <= grid[i+1] + 1e-12);
        }
    }

    #[test]
    fn linear_interp_within_data_range(grid in sorted_grid(15), t in 0.0f64..1.0) {
        let ys: Vec<f64> = grid.iter().map(|x| x.sin()).collect();
        let li = LinearInterp::new(grid.clone(), ys.clone());
        let x = grid[0] + t * (grid[grid.len()-1] - grid[0]);
        let v = li.eval(x);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // linear interpolation cannot overshoot the data range
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn spline_interpolates_knots(grid in sorted_grid(10)) {
        let ys: Vec<f64> = grid.iter().map(|x| (x * 1.3).cos()).collect();
        let sp = CubicSpline::natural(grid.clone(), ys.clone());
        for (x, y) in grid.iter().zip(&ys) {
            prop_assert!((sp.eval(*x) - y).abs() < 1e-10);
        }
    }

    #[test]
    fn gauss_legendre_integrates_linear_exactly(a in -5.0f64..0.0, b in 0.1f64..5.0, m in -3.0f64..3.0, c in -3.0f64..3.0) {
        let v = gl_integrate(|x| m*x + c, a, b, 4);
        let exact = 0.5*m*(b*b - a*a) + c*(b - a);
        prop_assert!((v - exact).abs() < 1e-10 * (1.0 + exact.abs()));
    }

    #[test]
    fn gl_weights_positive(n in 2usize..80) {
        let (_, ws) = gauss_legendre(n);
        prop_assert!(ws.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn laguerre_nodes_increasing(n in 2usize..32) {
        let (xs, ws) = gauss_laguerre(n);
        prop_assert!(xs.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(ws.iter().all(|&w| w > 0.0));
        let s: f64 = ws.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-8);
    }

    #[test]
    fn trapz_respects_sign(grid in sorted_grid(10), off in 0.1f64..2.0) {
        let ys: Vec<f64> = grid.iter().map(|_| off).collect();
        let v = trapz(&grid, &ys);
        let exact = off * (grid[grid.len()-1] - grid[0]);
        prop_assert!((v - exact).abs() < 1e-10 * (1.0 + exact));
    }

    #[test]
    fn brent_finds_root_of_shifted_cubic(r in -2.0f64..2.0) {
        let f = move |x: f64| (x - r) * ((x - r).powi(2) + 0.5);
        let root = brent(f, -10.0, 10.0, 1e-13).unwrap();
        prop_assert!((root - r).abs() < 1e-9);
    }

    #[test]
    fn tridiag_residual_small(n in 3usize..12, seed in 0u64..1000) {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let sub: Vec<f64> = (0..n).map(|_| rng()).collect();
        let sup: Vec<f64> = (0..n).map(|_| rng()).collect();
        let diag: Vec<f64> = (0..n).map(|_| 4.0 + rng()).collect();
        let rhs: Vec<f64> = (0..n).map(|_| rng()).collect();
        let x = solve_tridiag(&sub, &diag, &sup, &rhs).unwrap();
        for i in 0..n {
            let mut lhs = diag[i]*x[i];
            if i > 0 { lhs += sub[i]*x[i-1]; }
            if i + 1 < n { lhs += sup[i]*x[i+1]; }
            prop_assert!((lhs - rhs[i]).abs() < 1e-9);
        }
    }
}
