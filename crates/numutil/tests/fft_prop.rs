//! Property tests for the FFT substrate.

use numutil::fft::{fft3_complex, fft_complex, fft_freq};
use proptest::prelude::*;

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, 2 * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_is_identity(data in complex_vec(64)) {
        let mut work = data.clone();
        fft_complex(&mut work, false);
        fft_complex(&mut work, true);
        let scale = data.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (w, d) in work.iter().zip(&data) {
            prop_assert!((w / 64.0 - d).abs() < 1e-10 * scale);
        }
    }

    #[test]
    fn transform_is_linear(a in complex_vec(32), b in complex_vec(32), c in -5.0f64..5.0) {
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft_complex(&mut fa, false);
        fft_complex(&mut fb, false);
        let mut combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + c * y).collect();
        fft_complex(&mut combo, false);
        let scale = fa.iter().chain(&fb).fold(1.0f64, |m, v| m.max(v.abs()));
        for i in 0..combo.len() {
            prop_assert!((combo[i] - (fa[i] + c * fb[i])).abs() < 1e-9 * scale.max(1.0));
        }
    }

    #[test]
    fn parseval_holds(data in complex_vec(128)) {
        let time: f64 = data.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum();
        let mut f = data.clone();
        fft_complex(&mut f, false);
        let freq: f64 = f.chunks(2).map(|c| c[0] * c[0] + c[1] * c[1]).sum::<f64>() / 128.0;
        prop_assert!((time - freq).abs() < 1e-8 * time.max(1.0));
    }

    #[test]
    fn real_input_gives_hermitian_spectrum(reals in proptest::collection::vec(-10.0f64..10.0, 32)) {
        let mut data = vec![0.0; 64];
        for (i, &r) in reals.iter().enumerate() {
            data[2 * i] = r;
        }
        fft_complex(&mut data, false);
        // X[n-k] = conj(X[k])
        for k in 1..16 {
            let (re_k, im_k) = (data[2 * k], data[2 * k + 1]);
            let mk = 32 - k;
            let (re_mk, im_mk) = (data[2 * mk], data[2 * mk + 1]);
            prop_assert!((re_k - re_mk).abs() < 1e-9 * re_k.abs().max(1.0));
            prop_assert!((im_k + im_mk).abs() < 1e-9 * im_k.abs().max(1.0));
        }
    }

    #[test]
    fn fft3_roundtrip(data in proptest::collection::vec(-10.0f64..10.0, 2 * 4 * 4 * 4)) {
        let mut work = data.clone();
        fft3_complex(&mut work, 4, false);
        fft3_complex(&mut work, 4, true);
        for (w, d) in work.iter().zip(&data) {
            prop_assert!((w / 64.0 - d).abs() < 1e-9);
        }
    }
}

#[test]
fn fft_freq_covers_nyquist() {
    // the Nyquist bin of an even-length transform is the positive fold
    assert_eq!(fft_freq(8, 16), 8);
    assert_eq!(fft_freq(9, 16), -7);
    let freqs: Vec<i64> = (0..16).map(|i| fft_freq(i, 16)).collect();
    let mut sorted = freqs.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, (-7..=8).collect::<Vec<_>>());
}
