//! Property tests for the background cosmology.

use background::{Background, CosmoParams};
use proptest::prelude::*;
use std::sync::OnceLock;

fn scdm() -> &'static Background {
    static BG: OnceLock<Background> = OnceLock::new();
    BG.get_or_init(|| Background::new(CosmoParams::standard_cdm()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conformal_time_is_monotone(a1 in 1e-8f64..1.0, a2 in 1e-8f64..1.0) {
        prop_assume!(a1 < a2);
        let bg = scdm();
        prop_assert!(bg.conformal_time(a1) < bg.conformal_time(a2));
    }

    #[test]
    fn a_of_tau_inverts(a in 1e-7f64..1.0) {
        let bg = scdm();
        let tau = bg.conformal_time(a);
        let back = bg.a_of_tau(tau);
        prop_assert!((back - a).abs() / a < 1e-5, "a = {a}, back = {back}");
    }

    #[test]
    fn hubble_decreases_with_expansion_before_lambda(a1 in 1e-7f64..0.9, f in 1.01f64..5.0) {
        // matter+radiation only (SCDM): ℋ strictly decreasing in a
        let bg = scdm();
        let a2 = (a1 * f).min(1.0);
        prop_assert!(bg.conformal_hubble(a2) < bg.conformal_hubble(a1));
    }

    #[test]
    fn densities_are_positive_and_total_matches_hubble(a in 1e-7f64..1.0) {
        let bg = scdm();
        let d = bg.densities(a);
        prop_assert!(d.cdm > 0.0 && d.baryon > 0.0 && d.photon > 0.0 && d.nu_massless > 0.0);
        let h2 = bg.conformal_hubble(a).powi(2);
        prop_assert!((d.total() - h2).abs() < 1e-10 * h2, "flat: ℋ² = Σg");
    }

    #[test]
    fn massive_nu_energy_bounded_by_limits(a in 1e-6f64..1.0, m in 0.01f64..10.0) {
        let mut p = CosmoParams::standard_cdm();
        p.n_nu_massless = 2.0;
        p.n_nu_massive = 1;
        p.m_nu_ev = m;
        let bg = Background::new(p.clone());
        let d = bg.densities(a);
        // bounded below by the massless value and above by the
        // fully-non-relativistic value
        let g_massless = p.h0().powi(2) * p.omega_nu_one_relativistic() / (a * a);
        prop_assert!(d.nu_massive >= g_massless * 0.999,
            "massive ν below massless limit at a = {a}");
        // pressure between 0 and ρ/3
        prop_assert!(d.nu_massive_p >= -1e-30);
        prop_assert!(d.nu_massive_p <= d.nu_massive / 3.0 * 1.001);
    }
}
