//! Differential tests: the hunted [`BgCache`] fast path must reproduce
//! the direct [`Background`] queries *bitwise* — same spline interval,
//! same arithmetic — for every scale factor, every cosmology, and every
//! access pattern (monotone, reversed, random jumps), including exactly
//! at table knots.  These tests lock the cache layer down so the RHS
//! hot path cannot drift from the reference implementation.

use background::{Background, CosmoParams};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Prebuilt cosmologies (construction tabulates 1600-point time maps,
/// so build each once).  Index 2 carries a massive neutrino to exercise
/// the Fermi–Dirac kernel splines.
fn cosmos() -> &'static [Background; 3] {
    static BGS: OnceLock<[Background; 3]> = OnceLock::new();
    BGS.get_or_init(|| {
        let mut massive = CosmoParams::standard_cdm();
        massive.n_nu_massless = 2.0;
        massive.n_nu_massive = 1;
        massive.m_nu_ev = 0.5;
        [
            Background::new(CosmoParams::standard_cdm()),
            Background::new(CosmoParams::lcdm()),
            Background::new(massive),
        ]
    })
}

/// One differential comparison at conformal time `tau`.
fn assert_point_matches(bg: &Background, cache: &mut background::BgCache<'_>, tau: f64) {
    let pt = cache.at_tau(tau);
    let a = bg.a_of_tau(tau);
    assert_eq!(pt.a.to_bits(), a.to_bits(), "a(τ) differs at τ={tau}");
    assert_eq!(
        pt.hub.to_bits(),
        bg.conformal_hubble(a).to_bits(),
        "ℋ differs at τ={tau}"
    );
    assert_eq!(
        pt.dhub.to_bits(),
        bg.dconformal_hubble_dtau(a).to_bits(),
        "ℋ' differs at τ={tau}"
    );
    let d = bg.densities(a);
    for (name, got, want) in [
        ("cdm", pt.d.cdm, d.cdm),
        ("baryon", pt.d.baryon, d.baryon),
        ("photon", pt.d.photon, d.photon),
        ("nu_massless", pt.d.nu_massless, d.nu_massless),
        ("nu_massive", pt.d.nu_massive, d.nu_massive),
        ("nu_massive_p", pt.d.nu_massive_p, d.nu_massive_p),
        ("lambda", pt.d.lambda, d.lambda),
    ] {
        assert_eq!(got.to_bits(), want.to_bits(), "{name} differs at τ={tau}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cache_matches_direct_queries_bitwise(
        idx in 0usize..3,
        a1 in 1e-8f64..1.0,
        a2 in 1e-8f64..1.0,
        a3 in 1e-8f64..1.0,
    ) {
        let bg = &cosmos()[idx];
        let mut cache = bg.cache();
        // three arbitrary scale factors per case: the second and third
        // queries run off whatever hint the previous one left, so both
        // the hunt-up and hunt-down paths get exercised
        for a in [a1, a2, a3] {
            let tau = bg.conformal_time(a);
            assert_point_matches(bg, &mut cache, tau);
        }
    }

    #[test]
    fn cache_survives_monotone_and_reversed_sweeps(idx in 0usize..3) {
        let bg = &cosmos()[idx];
        let mut cache = bg.cache();
        let tau0 = bg.conformal_time(1e-8);
        let tau1 = bg.conformal_time(1.0);
        let n = 160;
        // forward sweep (the integrator's natural pattern) ...
        for i in 0..n {
            let tau = tau0 + (tau1 - tau0) * i as f64 / (n - 1) as f64;
            assert_point_matches(bg, &mut cache, tau);
        }
        // ... then straight back down without resetting the hint
        for i in (0..n).rev() {
            let tau = tau0 + (tau1 - tau0) * i as f64 / (n - 1) as f64;
            assert_point_matches(bg, &mut cache, tau);
        }
    }
}

#[test]
fn cache_is_exact_at_time_map_knots() {
    // The time map tabulates ln a on a uniform 1600-point grid from
    // a = 1e-12 to 1; τ at those scale factors lands exactly on the
    // knots of the inverse spline.  The cache must agree bitwise there
    // too (a knot query is the boundary case of the interval search).
    for bg in cosmos() {
        let mut cache = bg.cache();
        let lna_start = (1e-12f64).ln();
        for i in (0..1600).step_by(37) {
            let lna = lna_start * (1.0 - i as f64 / 1599.0);
            let tau = bg.conformal_time(lna.exp());
            assert_point_matches(bg, &mut cache, tau);
        }
    }
}

#[test]
fn cache_handles_off_table_times() {
    // queries beyond both table ends extrapolate identically
    let bg = &cosmos()[0];
    let mut cache = bg.cache();
    let tau_lo = bg.conformal_time(1e-12);
    for tau in [tau_lo * 0.5, tau_lo, bg.tau0(), bg.tau0() * 1.1] {
        assert_point_matches(bg, &mut cache, tau);
    }
}
