//! Cosmological parameter sets and the presets used by the paper.

use numutil::constants;
use serde::{Deserialize, Serialize};

/// Species labels used for density queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Species {
    /// Cold dark matter.
    Cdm,
    /// Baryons (+ electrons).
    Baryon,
    /// Photons.
    Photon,
    /// Massless neutrinos.
    NuMassless,
    /// Massive neutrinos.
    NuMassive,
    /// Cosmological constant.
    Lambda,
}

/// Cosmological parameters.
///
/// Density parameters are today's values in units of the critical density;
/// `omega_k` is derived, not stored, so the parameter set is always
/// self-consistent.  The defaults reproduce the paper's "standard Cold
/// Dark Matter" model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CosmoParams {
    /// Hubble parameter `h` (`H0 = 100 h km/s/Mpc`).
    pub h: f64,
    /// CDM density parameter today.
    pub omega_c: f64,
    /// Baryon density parameter today.
    pub omega_b: f64,
    /// Cosmological-constant density parameter.
    pub omega_lambda: f64,
    /// CMB temperature today in kelvin.
    pub t_cmb_k: f64,
    /// Helium mass fraction.
    pub y_helium: f64,
    /// Number of massless neutrino species (may be fractional).
    pub n_nu_massless: f64,
    /// Number of massive neutrino species.
    pub n_nu_massive: usize,
    /// Mass of each massive neutrino species in eV.
    pub m_nu_ev: f64,
    /// Scalar spectral index of the primordial spectrum.
    pub n_s: f64,
}

impl CosmoParams {
    /// The paper's "standard Cold Dark Matter" model: Ω = 1, h = 0.5,
    /// Ω_b = 0.05, n = 1, three massless neutrinos, T = 2.726 K.
    pub fn standard_cdm() -> Self {
        Self {
            h: 0.5,
            omega_c: 0.95 - Self::radiation_omega(0.5, constants::T_CMB_K, 3.0),
            omega_b: 0.05,
            omega_lambda: 0.0,
            t_cmb_k: constants::T_CMB_K,
            y_helium: constants::Y_HELIUM_DEFAULT,
            n_nu_massless: constants::N_NU_DEFAULT,
            n_nu_massive: 0,
            m_nu_ev: 0.0,
            n_s: 1.0,
        }
    }

    /// A flat Λ-dominated model of the era (ΛCDM, h = 0.65, Ω_Λ = 0.7).
    pub fn lcdm() -> Self {
        let h = 0.65;
        Self {
            h,
            omega_c: 0.25,
            omega_b: 0.05,
            omega_lambda: 0.7 - Self::radiation_omega(h, constants::T_CMB_K, 3.0),
            t_cmb_k: constants::T_CMB_K,
            y_helium: constants::Y_HELIUM_DEFAULT,
            n_nu_massless: constants::N_NU_DEFAULT,
            n_nu_massive: 0,
            m_nu_ev: 0.0,
            n_s: 1.0,
        }
    }

    /// Mixed dark matter: one massive neutrino species carrying ~20% of
    /// the critical density (the C+HDM models contemporaneous with the
    /// paper).  Ω_c closes the budget exactly (flat universe) against
    /// the Fermi–Dirac kernel value of Ω_ν.
    pub fn mixed_dark_matter() -> Self {
        let h = 0.5;
        let m_nu = 4.66; // eV → Ω_ν ≈ 0.198 at h = 0.5
        let mut p = Self {
            h,
            omega_c: 0.0,
            omega_b: 0.05,
            omega_lambda: 0.0,
            t_cmb_k: constants::T_CMB_K,
            y_helium: constants::Y_HELIUM_DEFAULT,
            n_nu_massless: 2.0,
            n_nu_massive: 1,
            m_nu_ev: m_nu,
            n_s: 1.0,
        };
        // with omega_c = 0, omega_k() returns 1 − (everything else)
        p.omega_c = p.omega_k();
        p
    }

    fn radiation_omega(h: f64, t_cmb: f64, n_nu: f64) -> f64 {
        let og = constants::OMEGA_GAMMA_H2 * (t_cmb / constants::T_CMB_K).powi(4) / (h * h);
        og * (1.0 + n_nu * constants::NU_PHOTON_RATIO)
    }

    /// `H0` in Mpc⁻¹ (c = 1 units).
    #[inline]
    pub fn h0(&self) -> f64 {
        self.h / constants::HUBBLE_DIST_MPC
    }

    /// Photon density parameter today.
    #[inline]
    pub fn omega_gamma(&self) -> f64 {
        constants::OMEGA_GAMMA_H2 * (self.t_cmb_k / constants::T_CMB_K).powi(4) / (self.h * self.h)
    }

    /// Massless-neutrino density parameter today.
    #[inline]
    pub fn omega_nu_massless(&self) -> f64 {
        self.omega_gamma() * self.n_nu_massless * constants::NU_PHOTON_RATIO
    }

    /// Density parameter one *massless* neutrino species would have — the
    /// normalization used for the massive-neutrino Fermi–Dirac kernels.
    #[inline]
    pub fn omega_nu_one_relativistic(&self) -> f64 {
        self.omega_gamma() * constants::NU_PHOTON_RATIO
    }

    /// Whether any massive neutrino species is present.
    #[inline]
    pub fn has_massive_nu(&self) -> bool {
        self.n_nu_massive > 0 && self.m_nu_ev > 0.0
    }

    /// Curvature parameter `Ω_k = 1 − ΣΩ_i` where the massive-neutrino
    /// contribution is approximated by its instantaneous value at `a = 1`
    /// from the relativistic normalization times the kernel ratio; for the
    /// flat presets this is consistent to machine precision.
    pub fn omega_k(&self) -> f64 {
        let mut sum = self.omega_c
            + self.omega_b
            + self.omega_lambda
            + self.omega_gamma()
            + self.omega_nu_massless();
        if self.has_massive_nu() {
            let t_nu0_ev = constants::K_B_EV_K * self.t_cmb_k * constants::T_NU_T_GAMMA;
            let r = self.m_nu_ev / t_nu0_ev;
            let kernel =
                special::fermi::fermi_dirac_energy(r) / special::fermi::fermi_dirac_energy(0.0);
            sum += self.omega_nu_one_relativistic() * self.n_nu_massive as f64 * kernel;
        }
        1.0 - sum
    }

    /// Baryon density `Ω_b h²`, the combination recombination depends on.
    #[inline]
    pub fn omega_b_h2(&self) -> f64 {
        self.omega_b * self.h * self.h
    }

    /// Panic on unphysical parameters; called by `Background::new`.
    pub fn validate(&self) {
        assert!(self.h > 0.1 && self.h < 2.0, "h out of range: {}", self.h);
        assert!(self.omega_c >= 0.0, "negative Ω_c");
        assert!(
            self.omega_b > 0.0,
            "Ω_b must be positive (baryons required)"
        );
        assert!(self.t_cmb_k > 0.0, "T_cmb must be positive");
        assert!(
            (0.0..0.5).contains(&self.y_helium),
            "Y_He out of range: {}",
            self.y_helium
        );
        assert!(self.n_nu_massless >= 0.0, "negative N_ν");
        assert!(self.m_nu_ev >= 0.0, "negative neutrino mass");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scdm_is_flat() {
        let p = CosmoParams::standard_cdm();
        assert!(p.omega_k().abs() < 1e-12, "Ω_k = {}", p.omega_k());
    }

    #[test]
    fn lcdm_is_flat() {
        let p = CosmoParams::lcdm();
        assert!(p.omega_k().abs() < 1e-12, "Ω_k = {}", p.omega_k());
    }

    #[test]
    fn scdm_values_match_paper() {
        let p = CosmoParams::standard_cdm();
        assert_eq!(p.h, 0.5);
        assert_eq!(p.omega_b, 0.05);
        assert_eq!(p.n_s, 1.0);
        assert_eq!(p.omega_lambda, 0.0);
        assert!((p.omega_c - 0.95).abs() < 1e-3); // minus tiny radiation share
    }

    #[test]
    fn h0_units() {
        let p = CosmoParams::standard_cdm();
        // H0 = 0.5/2997.9 Mpc⁻¹ → Hubble radius 5995.8 Mpc
        assert!((1.0 / p.h0() - 5_995.849_16).abs() < 0.01);
    }

    #[test]
    fn omega_gamma_h_half() {
        let p = CosmoParams::standard_cdm();
        // Ω_γ = 2.47e-5/0.25 ≈ 9.88e-5
        assert!((p.omega_gamma() - 2.4706e-5 / 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "Ω_b must be positive")]
    fn validate_rejects_zero_baryons() {
        let mut p = CosmoParams::standard_cdm();
        p.omega_b = 0.0;
        p.validate();
    }

    #[test]
    fn mdm_has_massive_species() {
        let p = CosmoParams::mixed_dark_matter();
        assert!(p.has_massive_nu());
        assert_eq!(p.n_nu_massive, 1);
    }
}
