//! FRW background cosmology for the LINGER/PLINGER reproduction.
//!
//! Supplies the homogeneous expansion history every perturbation equation
//! is written against: the conformal Hubble rate `ℋ(a)`, the per-species
//! densities in "Einstein units" `g_i = (8πG/3) a² ρ̄_i`, the conformal
//! time ↔ scale factor maps, and the massive-neutrino background from
//! Fermi–Dirac kernels.  Units are comoving Mpc with c = 1 throughout.

pub mod params;

pub use params::{CosmoParams, Species};

use numutil::constants;
use numutil::interp::CubicSpline;
use numutil::quad::gl_integrate;
use special::fermi::{fermi_dirac_energy, fermi_dirac_pressure};

/// Precomputed background expansion history.
///
/// Construction tabulates the massive-neutrino kernels and the conformal
/// time map; all queries afterwards are spline lookups plus a handful of
/// arithmetic operations, cheap enough for the inner ODE loop.
pub struct Background {
    params: CosmoParams,
    /// `ln I_ρ(r)` vs `ln r` for the massive-neutrino energy kernel.
    nu_rho_spline: Option<CubicSpline>,
    /// `ln I_p(r)` vs `ln r` for the pressure kernel.
    nu_p_spline: Option<CubicSpline>,
    /// `I_ρ(0)` normalization.
    nu_kernel_rel: f64,
    /// τ(ln a) spline.
    tau_of_lna: CubicSpline,
    /// ln a(τ) spline (inverse map).
    lna_of_tau: CubicSpline,
    /// Conformal time today (a = 1), Mpc.
    tau0: f64,
}

/// Densities in Einstein units at one scale factor:
/// `g = (8πG/3) a² ρ̄` for each species, all in Mpc⁻².
#[derive(Debug, Clone, Copy, Default)]
pub struct EinsteinDensities {
    /// CDM.
    pub cdm: f64,
    /// Baryons.
    pub baryon: f64,
    /// Photons.
    pub photon: f64,
    /// Massless neutrinos.
    pub nu_massless: f64,
    /// Massive neutrinos (energy density).
    pub nu_massive: f64,
    /// Massive-neutrino pressure, same units (`(8πG/3) a² p̄`).
    pub nu_massive_p: f64,
    /// Cosmological constant.
    pub lambda: f64,
}

impl EinsteinDensities {
    /// Total `(8πG/3) a² ρ̄`.
    pub fn total(&self) -> f64 {
        self.cdm + self.baryon + self.photon + self.nu_massless + self.nu_massive + self.lambda
    }
}

impl Background {
    /// Build the background for `params`, tabulating kernels and the
    /// conformal-time map from `a = 10⁻¹²` to today.
    pub fn new(params: CosmoParams) -> Self {
        params.validate();
        let (nu_rho_spline, nu_p_spline) = if params.has_massive_nu() {
            // r spans ultra-relativistic (early) to deeply non-relativistic.
            let n = 256;
            let lr_min = (1e-6f64).ln();
            let lr_max = (1e8f64).ln();
            let mut lrs = Vec::with_capacity(n);
            let mut lrho = Vec::with_capacity(n);
            let mut lp = Vec::with_capacity(n);
            for i in 0..n {
                let lr = lr_min + (lr_max - lr_min) * i as f64 / (n - 1) as f64;
                let r = lr.exp();
                lrs.push(lr);
                lrho.push(fermi_dirac_energy(r).ln());
                lp.push(fermi_dirac_pressure(r).ln());
            }
            (
                Some(CubicSpline::natural(lrs.clone(), lrho)),
                Some(CubicSpline::natural(lrs, lp)),
            )
        } else {
            (None, None)
        };
        let nu_kernel_rel = fermi_dirac_energy(0.0);

        let mut bg = Self {
            params,
            nu_rho_spline,
            nu_p_spline,
            nu_kernel_rel,
            // placeholder splines, replaced below
            tau_of_lna: CubicSpline::natural(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]),
            lna_of_tau: CubicSpline::natural(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0]),
            tau0: 0.0,
        };
        bg.build_time_map();
        bg
    }

    /// The parameter set.
    pub fn params(&self) -> &CosmoParams {
        &self.params
    }

    fn build_time_map(&mut self) {
        // τ(a) = ∫₀^a da' / (a'² H(a')) = ∫ da' / (a' ℋ(a')).
        // Deep in radiation domination τ ≈ a / (H0 √Ω_r), which anchors the
        // integral analytically below a_start.
        let n = 1600;
        let lna_start = (1e-12f64).ln();
        let lna_end = 0.0f64;
        let mut lnas = Vec::with_capacity(n);
        let mut taus = Vec::with_capacity(n);
        let a_start = lna_start.exp();
        let mut tau = a_start / (a_start * self.conformal_hubble(a_start));
        lnas.push(lna_start);
        taus.push(tau);
        for i in 1..n {
            let lna0 = lna_start + (lna_end - lna_start) * (i - 1) as f64 / (n - 1) as f64;
            let lna1 = lna_start + (lna_end - lna_start) * i as f64 / (n - 1) as f64;
            // dτ = d(ln a) / ℋ
            tau += gl_integrate(|lna| 1.0 / self.conformal_hubble(lna.exp()), lna0, lna1, 8);
            lnas.push(lna1);
            taus.push(tau);
        }
        // `tau` holds the last accumulated value, i.e. τ(a = 1)
        self.tau0 = tau;
        self.lna_of_tau = CubicSpline::natural(taus.clone(), lnas.clone());
        self.tau_of_lna = CubicSpline::natural(lnas, taus);
    }

    /// Per-species densities in Einstein units at scale factor `a`
    /// (normalized to `a = 1` today).
    pub fn densities(&self, a: f64) -> EinsteinDensities {
        self.densities_impl(a, None)
    }

    /// One body for the direct and hinted density paths, so the cached
    /// fast path reuses literally the same expressions (and bits) as the
    /// public queries — only the spline interval search differs.
    fn densities_impl(&self, a: f64, hint: Option<&mut usize>) -> EinsteinDensities {
        let p = &self.params;
        let h0sq = p.h0() * p.h0();
        let mut d = EinsteinDensities {
            cdm: h0sq * p.omega_c / a,
            baryon: h0sq * p.omega_b / a,
            photon: h0sq * p.omega_gamma() / (a * a),
            nu_massless: h0sq * p.omega_nu_massless() / (a * a),
            lambda: h0sq * p.omega_lambda * a * a,
            ..Default::default()
        };
        if p.has_massive_nu() {
            let r = self.nu_mass_ratio(a);
            let (irho, ip) = self.nu_kernels_impl(r, hint);
            let base = h0sq * p.omega_nu_one_relativistic() * p.n_nu_massive as f64 / (a * a);
            d.nu_massive = base * irho / self.nu_kernel_rel;
            d.nu_massive_p = base * ip / self.nu_kernel_rel;
        }
        d
    }

    /// `r = a m_ν c² / (k_B T_ν0)`, the mass/temperature ratio entering
    /// the Fermi–Dirac kernels.
    #[inline]
    pub fn nu_mass_ratio(&self, a: f64) -> f64 {
        let t_nu0_ev = constants::K_B_EV_K * self.params.t_cmb_k * constants::T_NU_T_GAMMA;
        a * self.params.m_nu_ev / t_nu0_ev
    }

    fn nu_kernels_impl(&self, r: f64, hint: Option<&mut usize>) -> (f64, f64) {
        match (&self.nu_rho_spline, &self.nu_p_spline) {
            (Some(srho), Some(sp)) => {
                let lr = r.clamp(1e-6, 1e8).ln();
                match hint {
                    // ρ and p kernels share one abscissa, so one hint
                    // serves both (the second lookup starts on the
                    // interval the first just found)
                    Some(h) => (srho.eval_hunt(lr, h).exp(), sp.eval_hunt(lr, h).exp()),
                    None => (srho.eval(lr).exp(), sp.eval(lr).exp()),
                }
            }
            _ => (self.nu_kernel_rel, self.nu_kernel_rel / 3.0),
        }
    }

    /// `ℋ` from densities already in hand — shared by
    /// [`Self::conformal_hubble`] and [`BgCache::at_tau`] so both paths
    /// run the identical expression.
    #[inline]
    fn hubble_from(&self, d: &EinsteinDensities) -> f64 {
        let h0sq = self.params.h0() * self.params.h0();
        let curv = h0sq * self.params.omega_k();
        (d.total() + curv).max(0.0).sqrt()
    }

    /// `dℋ/dτ` from densities already in hand.
    #[inline]
    fn dhubble_from(&self, d: &EinsteinDensities) -> f64 {
        // matter: w = 0 → −½ g; radiation: w = 1/3 → −g; Λ: w = −1 → +g
        let mut sum = -0.5 * (d.cdm + d.baryon) - (d.photon + d.nu_massless) + d.lambda;
        if self.params.has_massive_nu() {
            sum += -0.5 * (d.nu_massive + 3.0 * d.nu_massive_p);
        }
        sum
    }

    /// Conformal Hubble rate `ℋ = ȧ/a` (dot = d/dτ) in Mpc⁻¹.
    pub fn conformal_hubble(&self, a: f64) -> f64 {
        let d = self.densities(a);
        self.hubble_from(&d)
    }

    /// `dℋ/dτ` in Mpc⁻².
    ///
    /// From the acceleration equation:
    /// `dℋ/dτ = −(1/2) (8πG/3) a² (ρ̄ + 3p̄) + (8πG/3) a² Λ-term`, which in
    /// Einstein units reads `ℋ' = −½ Σ g_i (1 + 3w_i) + g_Λ` with the
    /// curvature term dropping out.
    pub fn dconformal_hubble_dtau(&self, a: f64) -> f64 {
        let d = self.densities(a);
        self.dhubble_from(&d)
    }

    /// Conformal time at scale factor `a` (Mpc).
    pub fn conformal_time(&self, a: f64) -> f64 {
        self.tau_of_lna.eval(a.ln())
    }

    /// Scale factor at conformal time `tau` (Mpc).
    pub fn a_of_tau(&self, tau: f64) -> f64 {
        self.lna_of_tau.eval(tau).exp()
    }

    /// Conformal time today, Mpc.
    pub fn tau0(&self) -> f64 {
        self.tau0
    }

    /// Fraction of the radiation density carried by (massless + still
    /// relativistic massive) neutrinos at early times,
    /// `R_ν = ρ_ν / (ρ_γ + ρ_ν)` — enters the adiabatic initial conditions.
    pub fn r_nu_early(&self) -> f64 {
        let p = &self.params;
        let nu = p.omega_nu_massless() + p.omega_nu_one_relativistic() * p.n_nu_massive as f64;
        nu / (nu + p.omega_gamma())
    }

    /// A stateful fast-path reader over this background's tables — see
    /// [`BgCache`].
    pub fn cache(&self) -> BgCache<'_> {
        BgCache {
            bg: self,
            h_time: 0,
            h_nu: 0,
        }
    }

    /// Density parameter of each species today (massive ν evaluated from
    /// the kernel at `a = 1`).
    pub fn omega_today(&self, s: Species) -> f64 {
        let d = self.densities(1.0);
        let h0sq = self.params.h0() * self.params.h0();
        match s {
            Species::Cdm => d.cdm / h0sq,
            Species::Baryon => d.baryon / h0sq,
            Species::Photon => d.photon / h0sq,
            Species::NuMassless => d.nu_massless / h0sq,
            Species::NuMassive => d.nu_massive / h0sq,
            Species::Lambda => d.lambda / h0sq,
        }
    }
}

/// Everything the Einstein–Boltzmann right-hand side needs from the
/// background at one conformal time, computed in a single pass.
#[derive(Debug, Clone, Copy)]
pub struct BgPoint {
    /// Scale factor `a(τ)`.
    pub a: f64,
    /// Conformal Hubble rate `ℋ`, Mpc⁻¹.
    pub hub: f64,
    /// `dℋ/dτ`, Mpc⁻².
    pub dhub: f64,
    /// Per-species Einstein-unit densities.
    pub d: EinsteinDensities,
}

/// Stateful fast path over [`Background`] for the inner ODE loop.
///
/// Holds hunt hints (last-found spline intervals) for the `a(τ)` map
/// and the massive-neutrino kernels, so the near-monotone query
/// sequence of an integration finds its interval in O(1) instead of a
/// fresh bisection per lookup, and evaluates `a`, `ℋ`, `ℋ'`, and the
/// densities from one table walk instead of three.  Results are
/// bitwise identical to the corresponding [`Background`] queries: the
/// interval index is unique, the interpolation arithmetic is shared,
/// and `ℋ`/`ℋ'` are computed by the same `*_from` expressions the
/// direct path uses.  Cheap to construct — one per `LingerRhs` (or per
/// worker) costs two `usize` hints.
pub struct BgCache<'a> {
    bg: &'a Background,
    h_time: usize,
    h_nu: usize,
}

impl<'a> BgCache<'a> {
    /// The background this cache reads.
    pub fn background(&self) -> &'a Background {
        self.bg
    }

    /// Scale factor, expansion rates, and densities at conformal time
    /// `tau` — the per-eval background block of the RHS, in one call.
    #[inline]
    pub fn at_tau(&mut self, tau: f64) -> BgPoint {
        let bg = self.bg;
        let a = bg.lna_of_tau.eval_hunt(tau, &mut self.h_time).exp();
        let d = bg.densities_impl(a, Some(&mut self.h_nu));
        BgPoint {
            a,
            hub: bg.hubble_from(&d),
            dhub: bg.dhubble_from(&d),
            d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scdm() -> Background {
        Background::new(CosmoParams::standard_cdm())
    }

    #[test]
    fn hubble_today_is_h0() {
        let bg = scdm();
        let h0 = bg.params().h0();
        // at a=1, ℋ = a H = H0 (radiation adds ~1e-4 relative)
        let hc = bg.conformal_hubble(1.0);
        assert!((hc - h0).abs() / h0 < 2e-4, "ℋ(1) = {hc}, H0 = {h0}");
    }

    #[test]
    fn radiation_dominates_early() {
        let bg = scdm();
        let d = bg.densities(1e-8);
        let rad = d.photon + d.nu_massless;
        let mat = d.cdm + d.baryon;
        assert!(rad / mat > 1e3);
    }

    #[test]
    fn matter_radiation_equality_redshift() {
        // SCDM (Ω=1, h=0.5): a_eq = Ω_r/Ω_m ≈ 4.15e-5/(h²) / 1 → z_eq ≈ 24000·Ωh²...
        let bg = scdm();
        let p = bg.params().clone();
        let omega_r = p.omega_gamma() + p.omega_nu_massless();
        let a_eq = omega_r / (p.omega_c + p.omega_b);
        let d = bg.densities(a_eq);
        let rad = d.photon + d.nu_massless;
        let mat = d.cdm + d.baryon;
        assert!((rad - mat).abs() / mat < 1e-10);
        // For h=0.5 equality is near z ~ 6000 (Ω h² = 0.25)
        let z_eq = 1.0 / a_eq - 1.0;
        assert!(z_eq > 4000.0 && z_eq < 8000.0, "z_eq = {z_eq}");
    }

    #[test]
    fn conformal_time_scales_in_radiation_era() {
        // τ ∝ a in radiation domination
        let bg = scdm();
        let t1 = bg.conformal_time(1e-8);
        let t2 = bg.conformal_time(2e-8);
        assert!((t2 / t1 - 2.0).abs() < 1e-3, "ratio {}", t2 / t1);
    }

    #[test]
    fn conformal_time_scales_in_matter_era() {
        // τ ∝ √a in matter domination, up to the radiation-era offset:
        // τ(a) = (2/H0√Ωm)(√(a+a_eq) − √a_eq), so the 0.08/0.02 ratio lands
        // slightly above 2.
        let bg = scdm();
        let t1 = bg.conformal_time(0.02);
        let t2 = bg.conformal_time(0.08);
        let ratio = t2 / t1;
        assert!(ratio > 1.95 && ratio < 2.15, "ratio {ratio}");
        // exact prediction with the offset:
        let p = bg.params();
        let a_eq = (p.omega_gamma() + p.omega_nu_massless()) / (p.omega_c + p.omega_b);
        let expect =
            ((0.08f64 + a_eq).sqrt() - a_eq.sqrt()) / ((0.02f64 + a_eq).sqrt() - a_eq.sqrt());
        assert!((ratio - expect).abs() < 0.01, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn tau0_for_scdm() {
        // SCDM h=0.5: τ₀ ≈ 2 c/H0 (1/√a integral) = 2·5995.8 ≈ 11990 Mpc,
        // slightly reduced by radiation
        let bg = scdm();
        assert!(
            bg.tau0() > 11000.0 && bg.tau0() < 12100.0,
            "τ₀ = {}",
            bg.tau0()
        );
    }

    #[test]
    fn a_of_tau_inverts_conformal_time() {
        let bg = scdm();
        for &a in &[1e-6, 1e-4, 1e-2, 0.3, 1.0] {
            let tau = bg.conformal_time(a);
            let a_back = bg.a_of_tau(tau);
            assert!(
                (a_back - a).abs() / a < 1e-6,
                "a = {a}, round-trip {a_back}"
            );
        }
    }

    #[test]
    fn dh_dtau_matches_finite_difference() {
        let bg = scdm();
        for &a in &[1e-6, 1e-3, 0.1, 0.9] {
            let tau = bg.conformal_time(a);
            let dt = tau * 1e-5;
            let hp = bg.conformal_hubble(bg.a_of_tau(tau + dt));
            let hm = bg.conformal_hubble(bg.a_of_tau(tau - dt));
            let fd = (hp - hm) / (2.0 * dt);
            let an = bg.dconformal_hubble_dtau(a);
            assert!(
                (fd - an).abs() / an.abs().max(1e-12) < 1e-3,
                "a={a}: fd={fd}, analytic={an}"
            );
        }
    }

    #[test]
    fn r_nu_early_standard_value() {
        // 3 massless neutrinos: R_ν = 3·0.2271/(1+3·0.2271) ≈ 0.405
        let bg = scdm();
        let r = bg.r_nu_early();
        assert!((r - 0.405).abs() < 0.005, "R_ν = {r}");
    }

    #[test]
    fn massive_nu_matches_massless_when_relativistic() {
        let mut p = CosmoParams::standard_cdm();
        p.n_nu_massless = 2.0;
        p.n_nu_massive = 1;
        p.m_nu_ev = 0.1;
        let bg = Background::new(p);
        // early on (a tiny) the massive species must act like a massless one
        let d = bg.densities(1e-9);
        let per_massless = d.nu_massless / 2.0;
        assert!(
            (d.nu_massive - per_massless).abs() / per_massless < 1e-3,
            "massive {} vs massless-per-species {}",
            d.nu_massive,
            per_massless
        );
        // and the pressure must be ρ/3
        assert!((d.nu_massive_p - d.nu_massive / 3.0).abs() / d.nu_massive < 1e-3);
    }

    #[test]
    fn massive_nu_redshifts_like_matter_late() {
        let mut p = CosmoParams::standard_cdm();
        p.n_nu_massless = 2.0;
        p.n_nu_massive = 1;
        p.m_nu_ev = 10.0; // heavy → non-relativistic well before z=100
        let bg = Background::new(p);
        let d1 = bg.densities(0.005);
        let d2 = bg.densities(0.01);
        // g = (8πG/3)a²ρ ∝ 1/a for matter
        let ratio = d1.nu_massive / d2.nu_massive;
        assert!((ratio - 2.0).abs() < 0.05, "ratio = {ratio}");
        // pressure negligible
        assert!(d2.nu_massive_p / d2.nu_massive < 0.01);
    }

    #[test]
    fn omega_nu_massive_tracks_mass_formula() {
        // Ω_ν h² ≈ m_ν / 93.1 eV for one species
        let mut p = CosmoParams::standard_cdm();
        p.n_nu_massless = 2.0;
        p.n_nu_massive = 1;
        p.m_nu_ev = 5.0;
        let bg = Background::new(p.clone());
        let omega_nu = bg.omega_today(Species::NuMassive);
        let expect = p.m_nu_ev / 93.14 / (p.h * p.h);
        assert!(
            (omega_nu - expect).abs() / expect < 0.03,
            "Ω_ν = {omega_nu}, formula {expect}"
        );
    }

    #[test]
    fn flat_universe_energy_budget() {
        let bg = scdm();
        let d = bg.densities(1.0);
        let h0sq = bg.params().h0().powi(2);
        let total_omega = d.total() / h0sq + bg.params().omega_k();
        assert!((total_omega - 1.0).abs() < 1e-10, "ΣΩ = {total_omega}");
    }

    #[test]
    fn lcdm_preset_late_time_acceleration() {
        let bg = Background::new(CosmoParams::lcdm());
        // ℋ' > 0 today for Λ domination
        assert!(bg.dconformal_hubble_dtau(1.0) > 0.0);
        // but decelerating in matter era
        assert!(bg.dconformal_hubble_dtau(0.1) < 0.0);
    }
}
