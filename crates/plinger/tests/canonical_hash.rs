//! Golden values and round-trip stability of the canonical hashes.
//!
//! The canonical cosmology/job hashes are cache keys: persistent
//! workers key their physics tables on [`cosmo_hash`] and the service's
//! `ResultCache` keys on [`job_hash`].  Both must be *stable* — across
//! platforms, across wire round-trips, and across releases — so the
//! three preset cosmologies are pinned to golden values here, and a
//! property test checks that encode/decode round-trips never move a
//! hash.  If an intentional parameter or encoding change shifts a
//! golden value, update it here *and* remember that every persisted
//! cache keyed on the old value silently invalidates.

use background::CosmoParams;
use boltzmann::Preset;
use plinger::{cosmo_hash, hash_reals, job_hash, RunSpec};
use proptest::prelude::*;

const GOLD_SCDM: u64 = 0x7d5a_d26a_08b0_e3c6;
const GOLD_LCDM: u64 = 0x19d7_23bc_2956_7b8b;
const GOLD_MDM: u64 = 0xd095_b814_c039_fadc;

#[test]
fn preset_cosmologies_hash_to_golden_values() {
    let golden = [
        ("standard_cdm", CosmoParams::standard_cdm(), GOLD_SCDM),
        ("lcdm", CosmoParams::lcdm(), GOLD_LCDM),
        (
            "mixed_dark_matter",
            CosmoParams::mixed_dark_matter(),
            GOLD_MDM,
        ),
    ];
    for (name, params, want) in golden {
        assert_eq!(
            cosmo_hash(&params),
            want,
            "canonical hash of {name} moved — physics caches keyed on \
             the old value are invalidated"
        );
    }
}

#[test]
fn preset_hashes_are_pairwise_distinct() {
    assert_ne!(GOLD_SCDM, GOLD_LCDM);
    assert_ne!(GOLD_SCDM, GOLD_MDM);
    assert_ne!(GOLD_LCDM, GOLD_MDM);
}

#[test]
fn every_field_reaches_the_cosmology_hash() {
    // perturbing any single field must move the hash: a field the hash
    // ignored would let two distinguishable cosmologies share a warm
    // physics cache
    let base = CosmoParams::standard_cdm();
    let h0 = cosmo_hash(&base);
    let perturbed: Vec<(&str, CosmoParams)> = vec![
        (
            "h",
            CosmoParams {
                h: 0.51,
                ..base.clone()
            },
        ),
        (
            "omega_c",
            CosmoParams {
                omega_c: 0.3,
                ..base.clone()
            },
        ),
        (
            "omega_b",
            CosmoParams {
                omega_b: 0.06,
                ..base.clone()
            },
        ),
        (
            "omega_lambda",
            CosmoParams {
                omega_lambda: 0.1,
                ..base.clone()
            },
        ),
        (
            "t_cmb_k",
            CosmoParams {
                t_cmb_k: 2.8,
                ..base.clone()
            },
        ),
        (
            "y_helium",
            CosmoParams {
                y_helium: 0.25,
                ..base.clone()
            },
        ),
        (
            "n_nu_massless",
            CosmoParams {
                n_nu_massless: 2.0,
                ..base.clone()
            },
        ),
        (
            "n_nu_massive",
            CosmoParams {
                n_nu_massive: 1,
                ..base.clone()
            },
        ),
        (
            "m_nu_ev",
            CosmoParams {
                m_nu_ev: 1.0,
                ..base.clone()
            },
        ),
        (
            "n_s",
            CosmoParams {
                n_s: 0.96,
                ..base.clone()
            },
        ),
    ];
    for (field, p) in perturbed {
        assert_ne!(cosmo_hash(&p), h0, "hash is blind to {field}");
    }
}

proptest! {
    #[test]
    fn hashes_survive_wire_round_trips(
        h in 0.3f64..1.0,
        omega_c in 0.0f64..1.0,
        omega_b in 0.01f64..0.2,
        omega_lambda in 0.0f64..0.8,
        m_nu_ev in 0.0f64..10.0,
        n_s in 0.8f64..1.2,
        ks in proptest::collection::vec(1e-4f64..1.0, 1..40),
        lmax_g in proptest::option::of(4usize..2000),
        tau_end in proptest::option::of(10.0f64..15000.0),
    ) {
        // NaN-free parameters (the strategies above generate only
        // finite values) must hash identically before and after an
        // encode/decode round trip, field by field in canonical order —
        // the master hashes its RunSpec, the worker hashes the decoded
        // broadcast, and cache reuse depends on the two agreeing
        let mut spec = RunSpec::standard_cdm(ks);
        spec.cosmo = CosmoParams {
            h,
            omega_c,
            omega_b,
            omega_lambda,
            m_nu_ev,
            n_s,
            ..CosmoParams::standard_cdm()
        };
        spec.preset = Preset::Draft;
        spec.lmax_g = lmax_g;
        spec.tau_end = tau_end;
        let back = RunSpec::decode(&spec.encode()).unwrap();
        prop_assert_eq!(cosmo_hash(&back.cosmo), cosmo_hash(&spec.cosmo));
        prop_assert_eq!(job_hash(&back), job_hash(&spec));
        // and re-encoding is byte-stable, so the hash never drifts with
        // repeated hops
        prop_assert_eq!(back.encode(), spec.encode());
    }

    #[test]
    fn hash_reals_is_content_addressed(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
    ) {
        // equal content ⇒ equal hash (the cache-correctness direction)
        prop_assert_eq!(hash_reals(&xs), hash_reals(&xs.clone()));
        // any single-element change moves the hash in practice; check a
        // representative perturbation rather than quantifying collisions
        if let Some(first) = xs.first().copied() {
            let mut changed = xs.clone();
            changed[0] = first + 1.0;
            prop_assert_ne!(hash_reals(&changed), hash_reals(&xs));
        }
    }
}

/// Build an ensemble from raw axis draws: sorting and deduplicating
/// each axis keeps the injectivity property honest — two shards that
/// share a parameter point are *supposed* to share a hash.
fn make_ensemble(
    mut omega_b: Vec<f64>,
    mut h: Vec<f64>,
    mut n_s: Vec<f64>,
    ks: Vec<f64>,
) -> plinger::EnsembleSpec {
    for axis in [&mut omega_b, &mut h, &mut n_s] {
        axis.sort_by(|a, b| a.partial_cmp(b).expect("finite axis values"));
        axis.dedup();
    }
    let mut base = RunSpec::standard_cdm(ks);
    base.preset = Preset::Draft;
    plinger::EnsembleSpec {
        base,
        omega_b,
        h,
        n_s,
    }
}

proptest! {
    #[test]
    fn shard_hashes_are_injective_over_the_grid(
        omega_b in proptest::collection::vec(0.02f64..0.12, 1..4),
        h in proptest::collection::vec(0.4f64..0.9, 1..4),
        n_s in proptest::collection::vec(0.8f64..1.2, 1..4),
        ks in proptest::collection::vec(1e-4f64..1.0, 2..8),
    ) {
        // every shard is a distinct parameter point, so every shard
        // must map to a distinct cache key — a collision would let one
        // cosmology's spectrum be served for another's
        let ens = make_ensemble(omega_b, h, n_s, ks);
        let n = ens.n_shards();
        let hashes: std::collections::HashSet<u64> =
            (0..n).map(|i| ens.shard_hash(i)).collect();
        prop_assert_eq!(hashes.len(), n, "shard hash collision");
        // and each one is exactly the single-job hash of that shard's
        // spec: the ensemble path and the one-off path share the cache
        for i in 0..n {
            prop_assert_eq!(ens.shard_hash(i), job_hash(&ens.shard_spec(i)));
        }
    }

    #[test]
    fn shard_hashes_are_visit_order_independent(
        omega_b in proptest::collection::vec(0.02f64..0.12, 1..4),
        h in proptest::collection::vec(0.4f64..0.9, 1..4),
        n_s in proptest::collection::vec(0.8f64..1.2, 1..4),
        ks in proptest::collection::vec(1e-4f64..1.0, 2..8),
        seed in 1.0f64..1e15,
    ) {
        // a shard's identity is its grid index, never its position in
        // the work queue: hashing shards in any visit order yields the
        // same per-index keys, so priority reordering and requeues
        // cannot move a result to the wrong cache slot
        let ens = make_ensemble(omega_b, h, n_s, ks);
        let n = ens.n_shards();
        let forward: Vec<u64> = (0..n).map(|i| ens.shard_hash(i)).collect();
        // xorshift-shuffled visit order from the drawn seed
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = (seed as u64) | 1;
        for i in (1..n).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut revisited = vec![0u64; n];
        for &i in &order {
            revisited[i] = ens.shard_hash(i);
        }
        prop_assert_eq!(revisited, forward);
    }

    #[test]
    fn ensemble_spec_wire_roundtrip(
        omega_b in proptest::collection::vec(0.02f64..0.12, 1..4),
        h in proptest::collection::vec(0.4f64..0.9, 1..4),
        n_s in proptest::collection::vec(0.8f64..1.2, 1..4),
        ks in proptest::collection::vec(1e-4f64..1.0, 2..8),
    ) {
        // the wire form is canonical: decode inverts encode exactly,
        // re-encoding is byte-stable, and every hash-derived identity —
        // the sweep key and each shard's cache key — survives the hop
        let ens = make_ensemble(omega_b, h, n_s, ks);
        let wire = ens.encode();
        let back = plinger::EnsembleSpec::decode(&wire).expect("decode");
        prop_assert_eq!(&back, &ens);
        prop_assert_eq!(back.encode(), wire);
        prop_assert_eq!(plinger::ensemble_hash(&back), plinger::ensemble_hash(&ens));
        for i in 0..ens.n_shards() {
            prop_assert_eq!(back.shard_hash(i), ens.shard_hash(i));
        }
    }
}
