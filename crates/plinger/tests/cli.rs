//! End-to-end tests of the released command-line tools: `linger`
//! (serial) and `plinger` (parallel, threads and TCP subprocesses) must
//! produce byte-identical output files.

use std::process::Command;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("plinger_cli_{tag}"));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn run_tool(exe: &str, args: &[&str]) {
    let status = Command::new(exe)
        .args(args)
        .status()
        .unwrap_or_else(|e| panic!("failed to run {exe}: {e}"));
    assert!(status.success(), "{exe} {args:?} failed: {status}");
}

const COMMON: &[&str] = &[
    "--preset", "draft", "--nk", "3", "--kmin", "4e-4", "--kmax", "2e-3",
];

#[test]
fn linger_writes_both_output_units() {
    let dir = tmpdir("serial");
    let prefix = dir.join("run").to_string_lossy().to_string();
    let mut args = COMMON.to_vec();
    args.extend_from_slice(&["--output", &prefix]);
    run_tool(env!("CARGO_BIN_EXE_linger"), &args);

    let ascii = std::fs::read_to_string(format!("{prefix}.linger")).unwrap();
    assert!(ascii.contains("# linger output: nk = 3"));
    assert_eq!(ascii.lines().count(), 5);
    let records = plinger::output_files::read_binary(format!("{prefix}.lingerd")).unwrap();
    assert_eq!(records.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plinger_threads_match_linger_bitwise() {
    let dir = tmpdir("threads");
    let serial = dir.join("serial").to_string_lossy().to_string();
    let parallel = dir.join("par").to_string_lossy().to_string();

    let mut args = COMMON.to_vec();
    args.extend_from_slice(&["--output", &serial]);
    run_tool(env!("CARGO_BIN_EXE_linger"), &args);

    let mut args = COMMON.to_vec();
    args.extend_from_slice(&["--output", &parallel, "--workers", "2"]);
    run_tool(env!("CARGO_BIN_EXE_plinger"), &args);

    let a = std::fs::read(format!("{serial}.lingerd")).unwrap();
    let b = std::fs::read(format!("{parallel}.lingerd")).unwrap();
    assert_eq!(a, b, "binary moment files must be byte-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn plinger_tcp_processes_match_linger_bitwise() {
    let dir = tmpdir("tcp");
    let serial = dir.join("serial").to_string_lossy().to_string();
    let parallel = dir.join("tcp").to_string_lossy().to_string();

    let mut args = COMMON.to_vec();
    args.extend_from_slice(&["--output", &serial]);
    run_tool(env!("CARGO_BIN_EXE_linger"), &args);

    let mut args = COMMON.to_vec();
    args.extend_from_slice(&["--output", &parallel, "--workers", "2", "--tcp"]);
    run_tool(env!("CARGO_BIN_EXE_plinger"), &args);

    let a = std::fs::read(format!("{serial}.lingerd")).unwrap();
    let b = std::fs::read(format!("{parallel}.lingerd")).unwrap();
    assert_eq!(a, b, "TCP-farm moment file must equal the serial one");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = Command::new(env!("CARGO_BIN_EXE_linger"))
        .args(["--bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"), "stderr: {err}");
    assert!(err.contains("usage"), "usage text missing");
}
