//! Property tests for the farm's protocol pieces and simulator.

use plinger::{simulate_farm, RunSpec, SchedulePolicy, SimParams};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = SchedulePolicy> {
    prop_oneof![
        Just(SchedulePolicy::LargestFirst),
        Just(SchedulePolicy::SmallestFirst),
        Just(SchedulePolicy::Fifo),
        any::<u64>().prop_map(SchedulePolicy::Random),
    ]
}

proptest! {
    #[test]
    fn schedule_order_is_a_permutation(
        ks in proptest::collection::vec(1e-4f64..1.0, 1..60),
        policy in arb_policy(),
    ) {
        let order = policy.order(&ks);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..ks.len()).collect::<Vec<_>>());
    }

    #[test]
    fn spec_wire_roundtrip(
        ks in proptest::collection::vec(1e-4f64..1.0, 1..40),
        lmax_g in proptest::option::of(4usize..2000),
        tau_end in proptest::option::of(10.0f64..15000.0),
    ) {
        let mut spec = RunSpec::standard_cdm(ks.clone());
        spec.lmax_g = lmax_g;
        spec.tau_end = tau_end;
        let back = RunSpec::decode(&spec.encode()).unwrap();
        prop_assert_eq!(back.ks, ks);
        prop_assert_eq!(back.lmax_g, lmax_g);
        match (back.tau_end, tau_end) {
            (Some(a), Some(b)) => prop_assert_eq!(a, b),
            (None, None) => {},
            _ => prop_assert!(false, "tau_end mismatch"),
        }
    }

    #[test]
    fn simulator_conserves_work_and_bounds_efficiency(
        durations in proptest::collection::vec(0.01f64..5.0, 2..80),
        n_workers in 1usize..40,
        policy in arb_policy(),
    ) {
        let ks: Vec<f64> = (0..durations.len()).map(|i| 1e-3 * (i + 1) as f64).collect();
        let total: f64 = durations.iter().sum();
        let longest = durations.iter().cloned().fold(0.0, f64::max);
        let r = simulate_farm(&SimParams {
            durations: durations.clone(),
            policy,
            ks,
            n_workers,
            overhead: 0.0,
            startup: 0.0,
            speeds: Vec::new(),
        });
        // CPU conservation
        prop_assert!((r.busy.iter().sum::<f64>() - total).abs() < 1e-9);
        // makespan bounds: max(longest, total/N) ≤ wall ≤ total
        let lower = longest.max(total / n_workers as f64);
        prop_assert!(r.wall_seconds >= lower - 1e-9);
        prop_assert!(r.wall_seconds <= total + 1e-9);
        // list-scheduling guarantee: wall ≤ total/N + longest
        prop_assert!(r.wall_seconds <= total / n_workers as f64 + longest + 1e-9);
        let e = r.efficiency();
        prop_assert!(e > 0.0 && e <= 1.0 + 1e-12);
    }

    #[test]
    fn largest_first_meets_the_lpt_guarantee(
        durations in proptest::collection::vec(0.01f64..5.0, 4..60),
        n_workers in 2usize..16,
    ) {
        // Graham's LPT bound: makespan ≤ (4/3 − 1/3m) · OPT, and
        // OPT ≥ max(total/m, longest); so LPT's makespan can exceed the
        // *lower bound* by at most 4/3 of the gap structure.  We check
        // the universally valid chain: wall(LPT) ≤ (4/3)·wall(any OPT
        // witness) is unobservable, but wall(LPT) ≤ total/m + p_max(1−1/m)
        // — Graham's bound for any list schedule — must hold with slack.
        let m = n_workers as f64;
        let ks: Vec<f64> = durations.clone(); // cost grows with k by construction
        let total: f64 = durations.iter().sum();
        let p_max = durations.iter().cloned().fold(0.0, f64::max);
        let r = simulate_farm(&SimParams {
            durations: durations.clone(),
            policy: SchedulePolicy::LargestFirst,
            ks,
            n_workers,
            overhead: 0.0,
            startup: 0.0,
            speeds: Vec::new(),
        });
        prop_assert!(
            r.wall_seconds <= total / m + p_max * (1.0 - 1.0 / m) + 1e-9,
            "LPT violates Graham's bound: wall = {}", r.wall_seconds
        );
    }
}
