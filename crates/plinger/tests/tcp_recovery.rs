//! Process-level self-healing: `run_tcp_processes` must survive a
//! worker subprocess that dies mid-run, either by relaunching it
//! (respawn budget > 0) or by redistributing its work onto the
//! survivors (respawn budget 0), finishing bit-identical to the serial
//! reference either way.

use boltzmann::Preset;
use plinger::{
    run_serial, run_tcp_processes, CancelReason, FarmError, FaultPlan, JobControl, MasterConfig,
    RecoveryPolicy, RunSpec, SchedulePolicy, TcpFarmOptions, TcpFarmPool,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_plinger"))
}

fn spec_of(ks: &[f64]) -> RunSpec {
    let mut spec = RunSpec::standard_cdm(ks.to_vec());
    spec.preset = Preset::Draft;
    spec
}

fn assert_bitwise(outputs: &[boltzmann::ModeOutput], serial: &[boltzmann::ModeOutput]) {
    assert_eq!(outputs.len(), serial.len());
    for (out, s) in outputs.iter().zip(serial) {
        assert_eq!(out.k, s.k);
        assert_eq!(out.delta_c.to_bits(), s.delta_c.to_bits());
        for (a, b) in out.delta_t.iter().zip(&s.delta_t) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

fn fast_master(recovery: RecoveryPolicy) -> MasterConfig {
    MasterConfig {
        poll: Duration::from_millis(10),
        drain_timeout: Duration::from_secs(2),
        heartbeat_timeout: Duration::from_secs(5),
        recovery,
        ..MasterConfig::default()
    }
}

#[test]
fn killed_worker_is_respawned_and_run_finishes() {
    // worker 1 exits after one mode (scripted vanish, abnormal exit
    // code); the watch relaunches it, re-handshakes it under the same
    // rank, and the farm finishes with a respawn on the ledger
    let spec = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4, 1.2e-3]);
    let opts = TcpFarmOptions {
        master: fast_master(RecoveryPolicy::requeue()),
        respawn_limit: 2,
        fault: Some(FaultPlan::DropWorker {
            rank: 1,
            after_modes: 1,
        }),
    };
    let rep = run_tcp_processes(&spec, SchedulePolicy::Fifo, 2, &exe(), &opts).unwrap();
    let (serial, _) = run_serial(&spec).unwrap();
    assert_bitwise(&rep.outputs, &serial);
    assert_eq!(rep.recovery.respawns, 1, "{:?}", rep.recovery);
    assert!(rep.recovery.failed_modes.is_empty());
}

#[test]
fn no_respawn_budget_recovers_through_survivors() {
    // same loss, but respawns are off: the single survivor must absorb
    // the whole queue via requeue alone
    let spec = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4]);
    let opts = TcpFarmOptions {
        master: fast_master(RecoveryPolicy::Requeue {
            max_attempts: 2,
            respawn: false,
        }),
        respawn_limit: 0,
        fault: Some(FaultPlan::DropWorker {
            rank: 1,
            after_modes: 0,
        }),
    };
    let rep = run_tcp_processes(&spec, SchedulePolicy::Fifo, 2, &exe(), &opts).unwrap();
    let (serial, _) = run_serial(&spec).unwrap();
    assert_bitwise(&rep.outputs, &serial);
    assert_eq!(rep.recovery.respawns, 0);
    assert!(rep.recovery.requeues >= 1, "{:?}", rep.recovery);
}

#[test]
fn tcp_pool_respawns_killed_worker_across_jobs() {
    // the subprocess pool keeps the respawn listener alive between
    // jobs: worker 1 exits abnormally mid-job-1, is relaunched and
    // re-handshaked under its rank, and the replacement process serves
    // job 2 on the same warm pool — both jobs bitwise vs serial
    let job1 = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4, 1.2e-3]);
    let job2 = spec_of(&[3.0e-4, 9.0e-4, 5.0e-4, 1.0e-3, 6.0e-4]);
    let opts = TcpFarmOptions {
        master: fast_master(RecoveryPolicy::requeue()),
        respawn_limit: 2,
        fault: Some(FaultPlan::DropWorker {
            rank: 1,
            after_modes: 1,
        }),
    };
    let mut pool = TcpFarmPool::start(2, &exe(), &opts).unwrap();

    let rep1 = pool.run_job(&job1, SchedulePolicy::Fifo).unwrap();
    let (serial1, _) = run_serial(&job1).unwrap();
    assert_bitwise(&rep1.outputs, &serial1);
    assert_eq!(rep1.recovery.respawns, 1, "{:?}", rep1.recovery);
    assert!(rep1.recovery.failed_modes.is_empty());

    let rep2 = pool.run_job(&job2, SchedulePolicy::Fifo).unwrap();
    let (serial2, _) = run_serial(&job2).unwrap();
    assert_bitwise(&rep2.outputs, &serial2);
    assert!(rep2.recovery.is_clean(), "{:?}", rep2.recovery);
    // the replacement process is a full pool member again
    assert!(
        rep2.worker_stats[0].modes >= 1,
        "respawned rank idle in job 2: {:?}",
        rep2.worker_stats
    );
    let modes2: usize = rep2.worker_stats.iter().map(|w| w.modes).sum();
    assert_eq!(modes2, job2.ks.len(), "job-2 stats polluted by job 1");
    assert_eq!(pool.shutdown(), 2);
}

#[test]
fn tcp_pool_cancelled_job_frees_the_subprocess_workers() {
    // the deadline expires while the subprocess workers hold modes; the
    // cooperative tag-12 cancel must pull them back over the sockets,
    // and the same pool then serves a full job bitwise vs serial
    let job1 = spec_of(&[
        2.0e-4, 8.0e-4, 4.0e-4, 1.2e-3, 6.0e-4, 9.0e-4, 3.0e-4, 1.0e-3, 5.0e-4, 1.4e-3, 7.0e-4,
        1.1e-3,
    ]);
    let job2 = spec_of(&[3.0e-4, 9.0e-4, 5.0e-4, 1.0e-3, 7.0e-4]);
    let opts = TcpFarmOptions {
        master: fast_master(RecoveryPolicy::requeue()),
        respawn_limit: 0,
        fault: None,
    };
    let mut pool = TcpFarmPool::start(2, &exe(), &opts).unwrap();

    let ctrl = JobControl {
        deadline: Some(Instant::now() + Duration::from_millis(15)),
        cancel: None,
    };
    let err = pool
        .run_job_with(&job1, SchedulePolicy::Fifo, &ctrl)
        .unwrap_err();
    match err {
        FarmError::Cancelled { reason, unfinished } => {
            assert_eq!(reason, CancelReason::DeadlineExceeded);
            assert!(
                !unfinished.is_empty(),
                "cancel fired after the job finished"
            );
        }
        other => panic!("expected Cancelled, got {other}"),
    }

    let rep = pool.run_job(&job2, SchedulePolicy::Fifo).unwrap();
    let (serial, _) = run_serial(&job2).unwrap();
    assert_bitwise(&rep.outputs, &serial);
    assert!(rep.recovery.is_clean(), "{:?}", rep.recovery);
    for (i, w) in rep.worker_stats.iter().enumerate() {
        assert!(
            w.modes >= 1,
            "rank {} idle after the cancelled job: {:?}",
            i + 1,
            rep.worker_stats
        );
    }
    // only the finished job counts
    assert_eq!(pool.shutdown(), 1);
}
