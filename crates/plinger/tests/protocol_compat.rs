//! Wire-format compatibility of the master session.
//!
//! The tag-7 statistics payload grew from 4 reals to 8 when the
//! integrator counters were added; the master must keep decoding the
//! old layout from live traffic.  Conversely, a tag-7 payload of any
//! other shape must surface as a typed protocol error, not a
//! plausible-looking report.

use msgpass::channel::{ChannelEndpoint, ChannelWorld};
use msgpass::Transport;
use plinger::{
    master_loop, FarmError, MasterConfig, RunSpec, SchedulePolicy, WorkerEvent, TAG_INIT,
    TAG_REQUEST, TAG_STATS, TAG_STOP,
};
use std::thread;
use std::time::Duration;

fn fast_cfg() -> MasterConfig {
    MasterConfig {
        poll: Duration::from_millis(5),
        drain_timeout: Duration::from_millis(300),
        ..MasterConfig::default()
    }
}

fn split_pair() -> (ChannelEndpoint, ChannelEndpoint) {
    let mut eps = ChannelWorld::new(2);
    let worker = eps.drain(1..).next().unwrap();
    let master = eps.pop().unwrap();
    (master, worker)
}

#[test]
fn legacy_four_real_stats_accepted_end_to_end() {
    // an empty k-grid reduces the protocol to its bookkeeping frame:
    // init → request → stop → stats, with a pre-extension goodbye
    let spec = RunSpec::standard_cdm(Vec::new());
    let (mut master_ep, mut wep) = split_pair();
    let h = thread::spawn(move || {
        let mut buf = Vec::new();
        wep.recv(0, TAG_INIT, &mut buf).unwrap();
        wep.send(0, TAG_REQUEST, &[0.0]).unwrap();
        wep.recv(0, TAG_STOP, &mut buf).unwrap();
        // the 1995-shaped goodbye: modes, busy, total, bytes — no
        // integrator counters
        wep.send(0, TAG_STATS, &[3.0, 1.25, 2.5, 4096.0]).unwrap();
    });
    let mut watch = || -> Vec<WorkerEvent> { Vec::new() };
    let ledger = master_loop(
        &mut master_ep,
        &spec,
        SchedulePolicy::Fifo,
        &fast_cfg(),
        &mut watch,
    )
    .unwrap();
    h.join().unwrap();
    assert_eq!(ledger.worker_stats.len(), 1);
    let ws = &ledger.worker_stats[0];
    assert_eq!(ws.modes, 3);
    assert_eq!(ws.busy_seconds, 1.25);
    assert_eq!(ws.total_seconds, 2.5);
    assert_eq!(ws.bytes_sent, 4096);
    // the counters the old layout never carried read as zero
    assert_eq!(ws.steps_accepted, 0);
    assert_eq!(ws.steps_rejected, 0);
    assert_eq!(ws.rhs_evals, 0);
}

#[test]
fn garbled_stats_payload_is_a_protocol_error() {
    let spec = RunSpec::standard_cdm(Vec::new());
    let (mut master_ep, mut wep) = split_pair();
    let h = thread::spawn(move || {
        let mut buf = Vec::new();
        wep.recv(0, TAG_INIT, &mut buf).unwrap();
        wep.send(0, TAG_REQUEST, &[0.0]).unwrap();
        wep.recv(0, TAG_STOP, &mut buf).unwrap();
        // neither 4 nor 8 reals: must be rejected, not zero-padded
        wep.send(0, TAG_STATS, &[1.0, 2.0, 3.0]).unwrap();
    });
    let mut watch = || -> Vec<WorkerEvent> { Vec::new() };
    let err = master_loop(
        &mut master_ep,
        &spec,
        SchedulePolicy::Fifo,
        &fast_cfg(),
        &mut watch,
    )
    .unwrap_err();
    h.join().unwrap();
    match err {
        FarmError::Protocol { rank, detail } => {
            assert_eq!(rank, 1);
            assert!(detail.contains("stats"), "{detail}");
        }
        other => panic!("expected Protocol, got {other}"),
    }
}
