//! Cross-transport telemetry invariants.
//!
//! The farm's measured message ledger must (a) agree with the workers'
//! own byte accounting, and (b) be *identical* across the channel,
//! shmem, and TCP substrates — the protocol is deterministic, so the
//! per-tag message counts are a property of the run, not the wire.

use boltzmann::Preset;
use msgpass::channel::ChannelWorld;
use msgpass::instrument::TRACKED_TAGS;
use msgpass::shmem::ShmemWorld;
use msgpass::tcp::TcpWorld;
use msgpass::World;
use plinger::{Farm, FarmReport, RunSpec, SchedulePolicy};
use proptest::prelude::*;

fn spec_for(ks: Vec<f64>) -> RunSpec {
    let mut spec = RunSpec::standard_cdm(ks);
    spec.preset = Preset::Draft;
    spec
}

fn run_farm<W: World>(spec: &RunSpec, workers: usize) -> FarmReport {
    Farm::<W>::new(workers)
        .run(spec, SchedulePolicy::LargestFirst)
        .unwrap_or_else(|e| panic!("farm failed: {e}"))
}

/// The invariants every transport must satisfy on its own.
fn check_internal_consistency(rep: &FarmReport, transport: &str) {
    let merged = rep.telemetry.merged_comm();
    // closed world: every message sent is received exactly once
    for t in 0..TRACKED_TAGS {
        assert_eq!(
            merged.sent_count[t], merged.recv_count[t],
            "{transport}: tag {t} sent/recv count mismatch"
        );
        assert_eq!(
            merged.sent_bytes[t], merged.recv_bytes[t],
            "{transport}: tag {t} sent/recv byte mismatch"
        );
    }
    // the endpoint-layer byte counters for the data path (header tag 4 +
    // payload tag 5) equal what the workers themselves accounted
    let wire_bytes = merged.sent_bytes[4] + merged.sent_bytes[5];
    let stats_bytes: u64 = rep.worker_stats.iter().map(|w| w.bytes_sent as u64).sum();
    assert_eq!(
        wire_bytes, stats_bytes,
        "{transport}: endpoint byte counters disagree with WorkerStats::bytes_sent"
    );
    // and with the master's own tally of received data bytes
    assert_eq!(
        wire_bytes, rep.bytes_received as u64,
        "{transport}: endpoint byte counters disagree with FarmReport::bytes_received"
    );
}

/// Zero out the tag-9 heartbeat slot: heartbeats are emitted on a wall
/// clock (only when a mode runs ≥100 ms), so their count is a property
/// of the machine, not the protocol.  Per-tag sent==recv still holds
/// for them (checked above); cross-transport equality does not.
fn mask_heartbeat(mut counts: [u64; TRACKED_TAGS]) -> [u64; TRACKED_TAGS] {
    counts[plinger::TAG_HEARTBEAT as usize] = 0;
    counts
}

#[test]
fn telemetry_agrees_across_transports() {
    let spec = spec_for(vec![0.001, 0.004, 0.02, 0.008]);
    let workers = 2;

    let reps: Vec<(&str, FarmReport)> = vec![
        ("channel", run_farm::<ChannelWorld>(&spec, workers)),
        ("shmem", run_farm::<ShmemWorld>(&spec, workers)),
        ("tcp", run_farm::<TcpWorld>(&spec, workers)),
    ];
    for (name, rep) in &reps {
        check_internal_consistency(rep, name);
    }

    // per-tag counts are a protocol property: identical on every substrate
    let reference = reps[0].1.telemetry.merged_comm();
    for (name, rep) in &reps[1..] {
        let merged = rep.telemetry.merged_comm();
        assert_eq!(
            mask_heartbeat(merged.sent_count),
            mask_heartbeat(reference.sent_count),
            "per-tag send counts differ between channel and {name}"
        );
        assert_eq!(
            mask_heartbeat(merged.sent_bytes),
            mask_heartbeat(reference.sent_bytes),
            "per-tag send bytes differ between channel and {name}"
        );
    }

    // the counts themselves follow from the protocol: one init broadcast
    // per worker, one assignment per mode, one header + one payload per
    // mode, one stop and one stats report per worker
    let nk = spec.ks.len() as u64;
    let nw = workers as u64;
    let m = &reference;
    assert_eq!(m.sent_count[1], nw, "tag 1 (init)");
    assert_eq!(m.sent_count[3], nk, "tag 3 (assign)");
    assert_eq!(m.sent_count[4], nk, "tag 4 (header)");
    assert_eq!(m.sent_count[5], nk, "tag 5 (data)");
    assert_eq!(m.sent_count[6], nw, "tag 6 (stop)");
    assert_eq!(m.sent_count[7], nw, "tag 7 (stats)");
    assert_eq!(m.sent_count[8], 0, "tag 8 (fail)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Byte accounting holds for arbitrary small farms on both
    /// thread-backed substrates.
    #[test]
    fn byte_ledger_matches_worker_stats(nk in 1usize..4, workers in 1usize..3) {
        let ks: Vec<f64> = (0..nk).map(|i| 1.0e-3 * (i + 1) as f64).collect();
        let spec = spec_for(ks);
        let channel = run_farm::<ChannelWorld>(&spec, workers);
        check_internal_consistency(&channel, "channel");
        let shmem = run_farm::<ShmemWorld>(&spec, workers);
        check_internal_consistency(&shmem, "shmem");
        prop_assert_eq!(
            mask_heartbeat(channel.telemetry.merged_comm().sent_count),
            mask_heartbeat(shmem.telemetry.merged_comm().sent_count)
        );
    }
}
