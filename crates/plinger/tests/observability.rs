//! The observability stability contract: every metric family the
//! service exposes is catalogued in `docs/OBSERVABILITY.md`, and the
//! Prometheus rendering carries the full histogram surface.  A name
//! drifting out of the doc (or a new family landing undocumented)
//! fails here before it breaks someone's dashboard.

use plinger::ServiceMetrics;

/// The frozen family list (sans `plinger_` prefix).  Extending the
/// surface means adding here AND to `docs/OBSERVABILITY.md`.
const CONTRACT: &[&str] = &[
    // service counters
    "requests_total",
    "cache_hits_total",
    "cache_misses_total",
    "cache_bytes_served_total",
    "errors_total",
    "pool_jobs_total",
    "los_jobs_total",
    // request-lifecycle counters (load shedding, deadlines, cancels)
    "requests_shed_total",
    "jobs_cancelled_total",
    "deadline_expired_total",
    // persistent-cache counters
    "cache_persist_writes_total",
    "cache_persist_loads_total",
    "cache_persist_discards_total",
    // ensemble-sweep counters
    "ensemble_requests_total",
    "ensemble_shards_total",
    "ensemble_shard_hits_total",
    // service gauges
    "queue_depth",
    "workers_alive",
    "draining",
    // request latency histograms
    "request_queue_wait_ns",
    "request_run_ns",
    "request_total_ns",
    // farm comm aggregate (per-tag variants documented as patterns)
    "msgs_sent",
    "msgs_recv",
    "bytes_sent",
    "bytes_recv",
    "send_ns",
    "recv_ns",
    // run-report-only gauge
    "master_idle_seconds",
];

fn doc() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OBSERVABILITY.md");
    std::fs::read_to_string(path).expect("docs/OBSERVABILITY.md exists")
}

/// Strip a `_tagN` suffix so per-tag families match their pattern.
fn base_name(name: &str) -> &str {
    match name.rfind("_tag") {
        Some(i) if name[i + 4..].chars().all(|c| c.is_ascii_digit()) => &name[..i],
        _ => name,
    }
}

#[test]
fn every_contract_name_is_documented() {
    let doc = doc();
    for name in CONTRACT {
        assert!(
            doc.contains(name),
            "{name} missing from docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn service_snapshot_names_stay_inside_the_contract() {
    let m = ServiceMetrics::new(2);
    m.requests.inc();
    m.queue_wait_ns.record(1_000);
    m.run_ns.record(2_000);
    m.total_ns.record(3_000);
    let snap = m.snapshot();
    let names = snap
        .counters
        .keys()
        .chain(snap.gauges.keys())
        .chain(snap.histograms.keys());
    for name in names {
        assert!(
            CONTRACT.contains(&base_name(name)),
            "undocumented metric family {name}: add it to CONTRACT and docs/OBSERVABILITY.md"
        );
    }
}

#[test]
fn exposition_carries_prefix_and_histogram_surface() {
    let m = ServiceMetrics::new(2);
    m.requests.inc();
    m.total_ns.record(5_000);
    let text = telemetry::render_prometheus(&m.snapshot(), "plinger");
    assert!(text.contains("# TYPE plinger_requests_total counter"));
    assert!(text.contains("plinger_requests_total 1"));
    assert!(text.contains("# TYPE plinger_workers_alive gauge"));
    assert!(text.contains("# TYPE plinger_request_total_ns histogram"));
    assert!(text.contains("plinger_request_total_ns_bucket{le=\"+Inf\"} 1"));
    assert!(text.contains("plinger_request_total_ns_sum 5000"));
    assert!(text.contains("plinger_request_total_ns_count 1"));
    assert!(text.contains("# TYPE plinger_request_total_ns_p99 gauge"));
}
