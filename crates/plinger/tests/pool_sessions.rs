//! Warm-pool determinism and cache discipline.
//!
//! A [`FarmPool`] must serve consecutive jobs bit-identical to fresh
//! `Farm::run` calls on every thread-backed transport, rebuild the
//! worker physics caches only when the canonical cosmology hash
//! changes (counter evidence in the run report, span evidence in the
//! pool shutdown), and reset per-job accounting — worker stats, idle
//! time, comm tables — between jobs instead of accumulating it.

use boltzmann::Preset;
use msgpass::channel::ChannelWorld;
use msgpass::shmem::ShmemWorld;
use msgpass::tcp::TcpWorld;
use msgpass::World;
use plinger::{
    build_run_report, run_serial, Farm, FarmPool, FarmReport, RunSpec, SchedulePolicy, TAG_INIT,
    TAG_JOBDONE, TAG_NEWJOB, TAG_STOP,
};

fn spec_of(ks: &[f64]) -> RunSpec {
    let mut spec = RunSpec::standard_cdm(ks.to_vec());
    spec.preset = Preset::Draft;
    spec
}

fn assert_bitwise(outputs: &[boltzmann::ModeOutput], reference: &[boltzmann::ModeOutput]) {
    assert_eq!(outputs.len(), reference.len(), "mode count mismatch");
    for (out, r) in outputs.iter().zip(reference) {
        assert_eq!(out.k, r.k, "grid order mismatch");
        assert_eq!(out.delta_c.to_bits(), r.delta_c.to_bits());
        assert_eq!(out.psi.to_bits(), r.psi.to_bits());
        for (a, b) in out.delta_t.iter().zip(&r.delta_t) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

fn rebuilds(rep: &FarmReport) -> usize {
    rep.worker_stats.iter().map(|w| w.ctx_rebuilds).sum()
}

/// Three consecutive pooled jobs vs three fresh farms, on one
/// transport.  Job 2 shares job 1's cosmology (different grid); job 3
/// changes cosmology, so only jobs 1 and 3 may rebuild physics tables.
fn pool_matches_fresh_farms<W: World>() {
    let n_workers = 2;
    let job1 = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4, 1.2e-3, 6.0e-4]);
    let job2 = spec_of(&[3.0e-4, 9.0e-4, 5.0e-4, 1.0e-3]);
    let mut job3 = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4]);
    job3.cosmo = background::CosmoParams::lcdm();

    let mut pool = FarmPool::<W>::start(n_workers).expect("pool start");
    let reps: Vec<FarmReport> = [&job1, &job2, &job3]
        .iter()
        .map(|spec| {
            pool.session(SchedulePolicy::LargestFirst)
                .run(spec)
                .expect("pooled job")
        })
        .collect();
    assert_eq!(pool.jobs_run(), 3);
    let shutdown = pool.shutdown();
    assert_eq!(shutdown.jobs, 3);

    for (spec, rep) in [&job1, &job2, &job3].iter().zip(&reps) {
        let fresh = Farm::<W>::new(n_workers)
            .run(spec, SchedulePolicy::LargestFirst)
            .expect("fresh farm");
        assert_bitwise(&rep.outputs, &fresh.outputs);
        let (serial, _) = run_serial(spec).expect("serial");
        assert_bitwise(&rep.outputs, &serial);
        assert!(rep.recovery.is_clean(), "{:?}", rep.recovery);
        // per-job stats reset: each report counts only its own modes
        let modes: usize = rep.worker_stats.iter().map(|w| w.modes).sum();
        assert_eq!(modes, spec.ks.len(), "stats accumulated across jobs");
    }

    // caches rebuilt exactly when the cosmology hash changed
    assert_eq!(rebuilds(&reps[0]), n_workers, "cold pool builds per rank");
    assert_eq!(rebuilds(&reps[1]), 0, "warm same-cosmology job rebuilt");
    assert_eq!(rebuilds(&reps[2]), n_workers, "cosmology change missed");
    let builds = shutdown
        .worker_spans
        .iter()
        .filter(|s| s.name == "build_ctx")
        .count();
    assert_eq!(builds, 2 * n_workers, "build_ctx spans disagree");
}

#[test]
fn pool_matches_fresh_farms_channel() {
    pool_matches_fresh_farms::<ChannelWorld>();
}

#[test]
fn pool_matches_fresh_farms_shmem() {
    pool_matches_fresh_farms::<ShmemWorld>();
}

#[test]
fn pool_matches_fresh_farms_tcp() {
    pool_matches_fresh_farms::<TcpWorld>();
}

/// A line-of-sight job through the warm pool must match the serial
/// LOS path bit for bit — including the recorded source extension that
/// rides the result payload.
fn los_pool_matches_serial<W: World>() {
    let mut spec = spec_of(&[6.0e-4, 1.6e-3, 1.0e-3, 2.4e-3]);
    spec.method = boltzmann::SpectrumMethod::LineOfSight;

    let mut pool = FarmPool::<W>::start(2).expect("pool start");
    let rep = pool
        .session(SchedulePolicy::LargestFirst)
        .run(&spec)
        .expect("pooled LOS job");
    pool.shutdown();

    let (serial, _) = run_serial(&spec).expect("serial LOS");
    assert_bitwise(&rep.outputs, &serial);
    for (out, r) in rep.outputs.iter().zip(&serial) {
        let src = out.sources.as_ref().expect("pooled LOS output has sources");
        let rsrc = r.sources.as_ref().expect("serial LOS output has sources");
        assert_eq!(src.tau_obs.to_bits(), rsrc.tau_obs.to_bits());
        for (cols, rcols) in [
            (&src.tau, &rsrc.tau),
            (&src.s0, &rsrc.s0),
            (&src.s1, &rsrc.s1),
            (&src.s2, &rsrc.s2),
            (&src.sp, &rsrc.sp),
        ] {
            assert_eq!(cols.len(), rcols.len());
            for (a, b) in cols.iter().zip(rcols.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "source column diverged");
            }
        }
        // identical integration work: the observer adds no RHS evals
        assert_eq!(out.stats.rhs_evals, r.stats.rhs_evals);
    }
}

#[test]
fn los_pool_matches_serial_channel() {
    los_pool_matches_serial::<ChannelWorld>();
}

#[test]
fn los_pool_matches_serial_shmem() {
    los_pool_matches_serial::<ShmemWorld>();
}

#[test]
fn los_pool_matches_serial_tcp() {
    los_pool_matches_serial::<TcpWorld>();
}

#[test]
fn pooled_jobs_open_with_tag_10_and_close_with_tag_11() {
    // per-job comm tables are deltas against the between-jobs baseline:
    // every job shows its own tag-10 opens and tag-11 releases, never a
    // tag-1 broadcast (no respawn happened) or a tag-6 stop (the pool
    // outlives the job)
    let spec = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4]);
    let mut pool = FarmPool::<ChannelWorld>::start(2).expect("pool start");
    for _ in 0..2 {
        let rep = pool
            .session(SchedulePolicy::Fifo)
            .run(&spec)
            .expect("pooled job");
        let merged = rep.telemetry.merged_comm();
        assert_eq!(
            merged.sent_count[TAG_NEWJOB as usize], 2,
            "one open per rank"
        );
        assert_eq!(
            merged.sent_count[TAG_JOBDONE as usize], 2,
            "one release per rank"
        );
        assert_eq!(
            merged.sent_count[TAG_INIT as usize], 0,
            "one-shot broadcast leaked"
        );
        assert_eq!(
            merged.sent_count[TAG_STOP as usize], 0,
            "job stopped the pool"
        );
    }
    pool.shutdown();
}

#[test]
fn run_report_carries_ctx_rebuild_counters() {
    // the cache-discipline evidence must survive into the run report:
    // workers[].ctx_rebuilds is 1 on the cold job and 0 on the warm one
    let spec = spec_of(&[2.0e-4, 8.0e-4]);
    let mut pool = FarmPool::<ChannelWorld>::start(2).expect("pool start");
    let cold = pool.session(SchedulePolicy::Fifo).run(&spec).expect("cold");
    let warm = pool.session(SchedulePolicy::Fifo).run(&spec).expect("warm");
    pool.shutdown();
    for (rep, want) in [(&cold, 1.0), (&warm, 0.0)] {
        let json = build_run_report(rep, "channel");
        let workers = json
            .get("workers")
            .and_then(|w| w.as_array())
            .expect("workers block");
        assert_eq!(workers.len(), 2);
        for w in workers {
            let n = w
                .get("ctx_rebuilds")
                .and_then(|v| v.as_f64())
                .expect("ctx_rebuilds field");
            assert_eq!(n, want, "report rebuild counter wrong");
        }
    }
}

#[test]
fn per_job_idle_accounting_does_not_accumulate() {
    // total_seconds is the span of one job, not the pool's lifetime:
    // after several warm jobs a worker's per-job clock must still be
    // bounded by that job's wall time
    let spec = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4, 1.0e-3]);
    let mut pool = FarmPool::<ChannelWorld>::start(2).expect("pool start");
    let mut last = None;
    for _ in 0..3 {
        last = Some(
            pool.session(SchedulePolicy::Fifo)
                .run(&spec)
                .expect("pooled job"),
        );
    }
    let rep = last.expect("three jobs ran");
    pool.shutdown();
    for w in &rep.worker_stats {
        assert!(
            w.total_seconds <= rep.wall_seconds + 0.25,
            "per-job clock {} outlived the job wall {}",
            w.total_seconds,
            rep.wall_seconds
        );
        assert!(w.busy_seconds <= w.total_seconds + 1e-9);
    }
    // derived idle/imbalance come from the same per-job stats
    assert!(rep.idle_seconds() < 3.0 * rep.wall_seconds.max(0.05));
}

/// Regression: `Session::run` used to build its own default
/// `JobControl`, silently discarding anything attached with
/// [`plinger::FarmPool::session`] + `with_control` — a session-scoped
/// job could never be cancelled.  Both levers must now reach the
/// master: a pre-fired cancel flag aborts before any mode completes,
/// and the same pool then serves the next session bitwise-clean.
#[test]
fn session_control_is_not_dropped() {
    use plinger::{CancelReason, FarmError, JobControl};
    use std::sync::atomic::AtomicBool;

    let job1 = spec_of(&[2.0e-4, 8.0e-4, 4.0e-4, 1.2e-3, 6.0e-4]);
    let job2 = spec_of(&[3.0e-4, 9.0e-4, 5.0e-4]);
    let mut pool = FarmPool::<ChannelWorld>::start(2).expect("pool start");

    let abandon = AtomicBool::new(true);
    let err = pool
        .session(SchedulePolicy::Fifo)
        .with_control(JobControl {
            deadline: None,
            cancel: Some(&abandon),
        })
        .run(&job1)
        .expect_err("pre-fired cancel flag was ignored by the session");
    match err {
        FarmError::Cancelled { reason, unfinished } => {
            assert_eq!(reason, CancelReason::Cancelled);
            assert_eq!(unfinished.len(), job1.ks.len(), "job partially ran");
        }
        other => panic!("expected Cancelled, got {other}"),
    }

    // a session without control still runs to completion on the same
    // pool, and the cancelled job never counted
    let rep = pool
        .session(SchedulePolicy::Fifo)
        .run(&job2)
        .expect("clean session after cancel");
    let (serial, _) = run_serial(&job2).expect("serial");
    assert_bitwise(&rep.outputs, &serial);
    assert_eq!(pool.jobs_run(), 1);
    pool.shutdown();
}
