//! End-to-end exercise of the `plinger-serve` binary: a warm pool
//! behind a TCP request/response loop, a content-addressed result
//! cache, and concurrent clients multiplexed onto one pool.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdout, Command, Stdio};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_plinger-serve")
}

/// Start a server on an ephemeral port with extra flags and parse the
/// startup line for the address; the reader stays attached so later
/// stdout lines (metrics address, summary) can be collected.
fn start_server_with(
    max_requests: usize,
    extra: &[&str],
) -> (Child, BufReader<ChildStdout>, String) {
    let mut args = vec![
        "--listen",
        "127.0.0.1:0",
        "--transport",
        "channel",
        "--workers",
        "2",
    ];
    let max = max_requests.to_string();
    args.extend_from_slice(&["--max-requests", &max]);
    args.extend_from_slice(extra);
    let mut child = Command::new(exe())
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn plinger-serve");
    let stdout = child.stdout.take().expect("server stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("plinger-serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    (child, reader, addr)
}

fn start_server(max_requests: usize) -> (Child, BufReader<ChildStdout>, String) {
    start_server_with(max_requests, &[])
}

/// One HTTP/1.0 GET over raw TCP, returning the full response text.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics listener");
    // one write_all: write! would issue one syscall per fragment and
    // the request could land at the server split mid-line
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .expect("send GET");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("read response");
    out
}

/// Run one client request and return its `key=value` output fields.
fn client(addr: &str, extra: &[&str]) -> HashMap<String, String> {
    let mut args = vec![
        "--connect",
        addr,
        "--preset",
        "draft",
        "--kmin",
        "2e-4",
        "--kmax",
        "1e-3",
    ];
    args.extend_from_slice(extra);
    let out = Command::new(exe())
        .args(&args)
        .output()
        .expect("run client");
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .filter_map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

#[test]
fn repeated_requests_hit_the_result_cache() {
    let (mut server, mut reader, addr) = start_server(3);

    // two identical requests, then a distinct grid
    let first = client(&addr, &["--nk", "3"]);
    let second = client(&addr, &["--nk", "3"]);
    let third = client(&addr, &["--nk", "4", "--metrics"]);

    assert_eq!(first["cache_hit"], "0", "cold request served from cache");
    assert_eq!(second["cache_hit"], "1", "identical request missed");
    assert_eq!(third["cache_hit"], "0", "distinct request hit");
    // cache hits are bitwise replays: the client hashes the body it
    // decodes, so equal hashes mean byte-identical responses
    assert_eq!(first["fnv"], second["fnv"], "cache hit changed the bytes");
    assert_ne!(first["fnv"], third["fnv"], "distinct jobs collided");
    assert_eq!(first["outputs"], "3");
    assert_eq!(third["outputs"], "4");
    // the metrics round-trip sees the whole session
    assert_eq!(third["requests"], "3");
    assert_eq!(third["hits"], "1");
    assert_eq!(third["misses"], "2");
    assert_eq!(third["jobs"], "2", "a cache hit reached the pool");
    assert_eq!(third["workers"], "2");
    // the extended payload rides behind the historical five counters
    assert_eq!(third["alive"], "2");
    assert_eq!(third["queue_depth"], "0");
    assert_eq!(third["errors"], "0");
    assert_ne!(third["bytes_served"], "0", "no response bytes counted");

    // after --max-requests connections the server exits and prints its
    // summary: one hit, two misses, two pool jobs
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 3 requests, cache hits=1 misses=2, pool jobs=2"),
        "unexpected summary: {rest:?}"
    );
}

#[test]
fn concurrent_distinct_requests_share_one_pool() {
    let (mut server, mut reader, addr) = start_server(2);

    // two different jobs in flight at once: both must come back clean
    // from the same two-worker pool
    let a = addr.clone();
    let t1 = std::thread::spawn(move || client(&a, &["--nk", "3"]));
    let b = addr.clone();
    let t2 = std::thread::spawn(move || client(&b, &["--nk", "5"]));
    let r1 = t1.join().expect("client 1");
    let r2 = t2.join().expect("client 2");

    assert_eq!(r1["cache_hit"], "0");
    assert_eq!(r2["cache_hit"], "0");
    assert_eq!(r1["outputs"], "3");
    assert_eq!(r2["outputs"], "5");
    assert_ne!(r1["fnv"], r2["fnv"]);

    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 2 requests, cache hits=0 misses=2, pool jobs=2"),
        "unexpected summary: {rest:?}"
    );
}

#[test]
fn metrics_endpoint_serves_prometheus_and_healthz_mid_run() {
    let (mut server, mut reader, addr) = start_server_with(3, &["--metrics-addr", "127.0.0.1:0"]);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics line");
    let maddr = line
        .trim()
        .strip_prefix("plinger-serve: metrics on ")
        .unwrap_or_else(|| panic!("unexpected metrics line: {line:?}"))
        .to_string();

    // ready before any request: workers warm, queue empty
    let health = http_get(&maddr, "/healthz");
    assert!(health.starts_with("HTTP/1.0 200"), "healthz: {health:?}");
    assert!(health.ends_with("ok\n"), "healthz body: {health:?}");

    let cold = http_get(&maddr, "/metrics");
    assert!(
        cold.contains("plinger_requests_total 0"),
        "cold scrape: {cold:?}"
    );
    assert!(cold.contains("plinger_workers_alive 2"), "{cold:?}");

    // one miss, one hit — then scrape again while the server still runs
    client(&addr, &["--nk", "3"]);
    client(&addr, &["--nk", "3"]);
    let warm = http_get(&maddr, "/metrics");
    assert!(
        warm.contains("plinger_requests_total 2"),
        "warm scrape: {warm:?}"
    );
    assert!(warm.contains("plinger_cache_hits_total 1"), "{warm:?}");
    assert!(warm.contains("plinger_cache_misses_total 1"), "{warm:?}");
    assert!(warm.contains("plinger_pool_jobs_total 1"), "{warm:?}");
    // request latency histograms move with the traffic and carry the
    // full Prometheus histogram surface
    assert!(
        warm.contains("plinger_request_total_ns_count 2"),
        "{warm:?}"
    );
    assert!(warm.contains("plinger_request_total_ns_sum"), "{warm:?}");
    assert!(
        warm.contains("plinger_request_total_ns_bucket{le=\"+Inf\"} 2"),
        "{warm:?}"
    );
    assert!(
        warm.contains("plinger_request_queue_wait_ns_count 2"),
        "{warm:?}"
    );
    // farm comm counters folded from the pooled job
    assert!(warm.contains("plinger_msgs_sent"), "{warm:?}");

    // unknown paths and non-GET methods are rejected
    assert!(http_get(&maddr, "/nope").starts_with("HTTP/1.0 404"));
    let mut stream = TcpStream::connect(&maddr).expect("connect");
    stream
        .write_all(b"POST /metrics HTTP/1.0\r\n\r\n")
        .expect("send POST");
    let mut resp = String::new();
    stream.read_to_string(&mut resp).expect("read response");
    assert!(resp.starts_with("HTTP/1.0 405"), "{resp:?}");

    // third request lets --max-requests close the server down
    client(&addr, &["--nk", "4"]);
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
}

/// Run one client and return its raw output (no success assertion).
fn client_raw(addr: &str, extra: &[&str]) -> std::process::Output {
    let mut args = vec![
        "--connect",
        addr,
        "--preset",
        "draft",
        "--kmin",
        "2e-4",
        "--kmax",
        "1e-3",
    ];
    args.extend_from_slice(extra);
    Command::new(exe())
        .args(&args)
        .output()
        .expect("run client")
}

/// Send `kill -TERM` to a child process.
fn sigterm(server: &Child) {
    let pid = server.id();
    let killed = Command::new("sh")
        .args(["-c", &format!("kill -TERM {pid}")])
        .status()
        .expect("send SIGTERM");
    assert!(killed.success(), "kill -TERM failed");
}

#[test]
fn overload_sheds_busy_and_clients_retry_to_success() {
    // queue limit 1: concurrent requests are shed with typed busy
    // frames, retried by the clients until they all land
    let (mut server, mut reader, addr) =
        start_server_with(0, &["--queue-limit", "1", "--metrics-addr", "127.0.0.1:0"]);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics line");
    let maddr = line
        .trim()
        .strip_prefix("plinger-serve: metrics on ")
        .unwrap_or_else(|| panic!("unexpected metrics line: {line:?}"))
        .to_string();

    let handles: Vec<_> = (3..7)
        .map(|nk| {
            let a = addr.clone();
            let nk = nk.to_string();
            std::thread::spawn(move || {
                client(
                    &a,
                    &["--nk", &nk, "--retries", "10", "--retry-base-ms", "40"],
                )
            })
        })
        .collect();
    let results: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    for r in &results {
        assert_eq!(r["cache_hit"], "0", "distinct grids cannot hit");
    }

    // the burst overran the one-deep queue at least once
    let scrape = http_get(&maddr, "/metrics");
    let shed: u64 = scrape
        .lines()
        .find_map(|l| l.strip_prefix("plinger_requests_shed_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no shed counter in scrape: {scrape}"));
    assert!(shed >= 1, "queue limit 1 never shed under a 4-client burst");
    assert!(http_get(&maddr, "/healthz").starts_with("HTTP/1.0 200"));

    // SIGTERM with nothing in flight: immediate clean exit
    sigterm(&server);
    let status = server.wait().expect("server exit");
    assert!(status.success(), "drain exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 4 requests"),
        "unexpected summary: {rest:?}"
    );
}

#[test]
fn sigterm_drain_flips_healthz_and_closes_idle_connections() {
    use bytes::BytesMut;
    use plinger::service::{SpectrumRequest, TAG_REQ_SPECTRUM, TAG_RESP_SPECTRUM};
    use plinger::RunSpec;

    let (mut server, mut reader, addr) = start_server_with(
        0,
        &["--drain-timeout", "2000", "--metrics-addr", "127.0.0.1:0"],
    );
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics line");
    let maddr = line
        .trim()
        .strip_prefix("plinger-serve: metrics on ")
        .unwrap_or_else(|| panic!("unexpected metrics line: {line:?}"))
        .to_string();

    // speak the wire protocol directly so the connection can be held
    // open (keep-alive) after its answer — the drain must close it,
    // not wedge on it
    let mut spec = RunSpec::standard_cdm(vec![2.0e-4, 5.0e-4, 1.0e-3]);
    spec.preset = boltzmann::Preset::Draft;
    let mut stream = TcpStream::connect(&addr).expect("raw connection");
    stream
        .write_all(&msgpass::codec::encode(
            0,
            TAG_REQ_SPECTRUM,
            &SpectrumRequest::new(spec).encode(),
        ))
        .expect("send raw request");
    let mut buf = BytesMut::new();
    let reply = loop {
        if let Some(msg) = msgpass::codec::decode(&mut buf).expect("well-formed frame") {
            break msg;
        }
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk).expect("read reply");
        assert!(n > 0, "server hung up before answering");
        buf.extend_from_slice(&chunk[..n]);
    };
    assert_eq!(reply.tag, TAG_RESP_SPECTRUM, "raw request failed");

    // the connection was served and is now idle; its read-timeout
    // window restarts here, so the drain below has a full poll period
    // in which /healthz must report not-ready before the close lands
    sigterm(&server);
    let mut saw_not_ready = false;
    for _ in 0..40 {
        let health = http_get(&maddr, "/healthz");
        if health.starts_with("HTTP/1.0 503") {
            saw_not_ready = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(saw_not_ready, "healthz never reported the drain");

    // the served keep-alive connection is closed, not waited out
    let status = server.wait().expect("server exit");
    assert!(status.success(), "drain exited with {status}");
    let n = stream.read(&mut [0u8; 64]).expect("read after close");
    assert_eq!(n, 0, "server exited without closing the connection");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 1 requests"),
        "unexpected summary: {rest:?}"
    );
}

#[test]
fn disk_cache_survives_a_server_restart_bitwise() {
    let dir = std::env::temp_dir().join(format!("plinger_serve_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();

    // first server run: one miss, persisted to disk
    let (mut server, mut reader, addr) = start_server_with(1, &["--cache-dir", &dir_s]);
    let first = client(&addr, &["--nk", "3"]);
    assert_eq!(first["cache_hit"], "0");
    let status = server.wait().expect("server exit");
    assert!(status.success(), "first server exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");

    // a fresh process warm-loads the directory and serves the same
    // spec from cache, bitwise identical to the first response
    let (mut server, mut reader, addr) =
        start_server_with(2, &["--cache-dir", &dir_s, "--metrics-addr", "127.0.0.1:0"]);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics line");
    let maddr = line
        .trim()
        .strip_prefix("plinger-serve: metrics on ")
        .unwrap_or_else(|| panic!("unexpected metrics line: {line:?}"))
        .to_string();
    let warmed = http_get(&maddr, "/metrics");
    assert!(
        warmed.contains("plinger_cache_persist_loads_total 1"),
        "warm load not counted: {warmed:?}"
    );

    let second = client(&addr, &["--nk", "3"]);
    assert_eq!(second["cache_hit"], "1", "restart lost the cache");
    assert_eq!(second["fnv"], first["fnv"], "restart changed the bytes");

    let hit = http_get(&maddr, "/metrics");
    assert!(
        hit.contains("plinger_cache_hits_total 1"),
        "hit not counted after restart: {hit:?}"
    );
    // second connection lets --max-requests close the server down
    client(&addr, &["--nk", "4"]);
    let status = server.wait().expect("server exit");
    assert!(status.success(), "second server exited with {status}");
    let mut rest2 = String::new();
    reader.read_to_string(&mut rest2).expect("read summary");
    assert!(
        rest2.contains("cache hits=1"),
        "unexpected summary: {rest2:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expired_deadline_cancels_but_the_pool_survives() {
    let (mut server, mut reader, addr) = start_server_with(2, &[]);

    // a 1 ms budget on a 12-mode job: refused up front or cancelled
    // mid-run, but either way the deadline is enforced
    let out = client_raw(
        &addr,
        &["--kmax", "2e-3", "--nk", "12", "--deadline-ms", "1"],
    );
    assert!(!out.status.success(), "expired deadline served anyway");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("deadline"), "client stderr: {stderr:?}");

    // the cancelled job released the workers: a normal request on the
    // same pool completes
    let ok = client(&addr, &["--nk", "3"]);
    assert_eq!(ok["cache_hit"], "0");
    assert_eq!(ok["outputs"], "3");

    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 2 requests"),
        "unexpected summary: {rest:?}"
    );
}

#[test]
fn killed_worker_leaves_a_flight_recorder_dump() {
    let dir = std::env::temp_dir().join(format!("plinger_flight_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();

    // one worker, no respawn budget, scripted to vanish on its first
    // assignment: the job must fail and leave its story behind
    let mut child = Command::new(exe())
        .args([
            "--listen",
            "127.0.0.1:0",
            "--transport",
            "channel",
            "--workers",
            "1",
            "--respawn-limit",
            "0",
            "--fault",
            "drop:1:0",
            "--max-requests",
            "1",
            "--report-dir",
            &dir_s,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn plinger-serve");
    let stdout = child.stdout.take().expect("server stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("plinger-serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();

    let out = Command::new(exe())
        .args(["--connect", &addr, "--preset", "draft", "--nk", "3"])
        .output()
        .expect("run client");
    assert!(!out.status.success(), "request against a dead pool passed");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("farm failed"), "client stderr: {stderr:?}");

    child.wait().expect("server exit");
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("report dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight_") && n.ends_with(".jsonl"))
        })
        .collect();
    assert_eq!(dumps.len(), 1, "expected one flight dump in {dir_s}");
    let name = dumps[0].file_name().unwrap().to_string_lossy().into_owned();
    let job = name
        .strip_prefix("flight_")
        .and_then(|n| n.strip_suffix(".jsonl"))
        .expect("dump name carries the job hash");
    assert_eq!(job.len(), 16, "job hash is 16 hex digits: {name}");
    let body = std::fs::read_to_string(&dumps[0]).expect("read dump");
    // every recorded event carries the failing job's hash, and the
    // request + worker-death story is present
    assert!(body.contains("request_accepted"), "dump: {body}");
    assert!(body.contains("worker_dead"), "dump: {body}");
    assert!(body.contains(job), "dump lacks the job hash: {body}");
    for l in body.lines() {
        assert!(l.contains(job), "event without job hash: {l}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
