//! End-to-end exercise of the `plinger-serve` binary: a warm pool
//! behind a TCP request/response loop, a content-addressed result
//! cache, and concurrent clients multiplexed onto one pool.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};
use std::process::{Child, ChildStdout, Command, Stdio};

fn exe() -> &'static str {
    env!("CARGO_BIN_EXE_plinger-serve")
}

/// Start a server on an ephemeral port and parse the startup line for
/// the address; the reader stays attached so the summary line can be
/// collected after exit.
fn start_server(max_requests: usize) -> (Child, BufReader<ChildStdout>, String) {
    let mut child = Command::new(exe())
        .args([
            "--listen",
            "127.0.0.1:0",
            "--transport",
            "channel",
            "--workers",
            "2",
            "--max-requests",
            &max_requests.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn plinger-serve");
    let stdout = child.stdout.take().expect("server stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    let addr = line
        .trim()
        .strip_prefix("plinger-serve: listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    (child, reader, addr)
}

/// Run one client request and return its `key=value` output fields.
fn client(addr: &str, extra: &[&str]) -> HashMap<String, String> {
    let mut args = vec![
        "--connect",
        addr,
        "--preset",
        "draft",
        "--kmin",
        "2e-4",
        "--kmax",
        "1e-3",
    ];
    args.extend_from_slice(extra);
    let out = Command::new(exe())
        .args(&args)
        .output()
        .expect("run client");
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .split_whitespace()
        .filter_map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
        })
        .collect()
}

#[test]
fn repeated_requests_hit_the_result_cache() {
    let (mut server, mut reader, addr) = start_server(3);

    // two identical requests, then a distinct grid
    let first = client(&addr, &["--nk", "3"]);
    let second = client(&addr, &["--nk", "3"]);
    let third = client(&addr, &["--nk", "4", "--metrics"]);

    assert_eq!(first["cache_hit"], "0", "cold request served from cache");
    assert_eq!(second["cache_hit"], "1", "identical request missed");
    assert_eq!(third["cache_hit"], "0", "distinct request hit");
    // cache hits are bitwise replays: the client hashes the body it
    // decodes, so equal hashes mean byte-identical responses
    assert_eq!(first["fnv"], second["fnv"], "cache hit changed the bytes");
    assert_ne!(first["fnv"], third["fnv"], "distinct jobs collided");
    assert_eq!(first["outputs"], "3");
    assert_eq!(third["outputs"], "4");
    // the metrics round-trip sees the whole session
    assert_eq!(third["requests"], "3");
    assert_eq!(third["hits"], "1");
    assert_eq!(third["misses"], "2");
    assert_eq!(third["jobs"], "2", "a cache hit reached the pool");
    assert_eq!(third["workers"], "2");

    // after --max-requests connections the server exits and prints its
    // summary: one hit, two misses, two pool jobs
    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 3 requests, cache hits=1 misses=2, pool jobs=2"),
        "unexpected summary: {rest:?}"
    );
}

#[test]
fn concurrent_distinct_requests_share_one_pool() {
    let (mut server, mut reader, addr) = start_server(2);

    // two different jobs in flight at once: both must come back clean
    // from the same two-worker pool
    let a = addr.clone();
    let t1 = std::thread::spawn(move || client(&a, &["--nk", "3"]));
    let b = addr.clone();
    let t2 = std::thread::spawn(move || client(&b, &["--nk", "5"]));
    let r1 = t1.join().expect("client 1");
    let r2 = t2.join().expect("client 2");

    assert_eq!(r1["cache_hit"], "0");
    assert_eq!(r2["cache_hit"], "0");
    assert_eq!(r1["outputs"], "3");
    assert_eq!(r2["outputs"], "5");
    assert_ne!(r1["fnv"], r2["fnv"]);

    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("read summary");
    assert!(
        rest.contains("served 2 requests, cache hits=0 misses=2, pool jobs=2"),
        "unexpected summary: {rest:?}"
    );
}
