//! Recovery policy and bookkeeping for a self-healing farm.
//!
//! The paper's farm is embarrassingly restartable: every k-mode is
//! independent, so any unfinished mode can be handed to any surviving
//! worker.  [`RecoveryPolicy`] decides what the master does with that
//! freedom when a worker is lost mid-run:
//!
//! * [`RecoveryPolicy::FailFast`] — the historical behaviour: drain the
//!   survivors and return [`crate::FarmError::WorkerLost`].
//! * [`RecoveryPolicy::Requeue`] — return the dead rank's in-flight
//!   mode to the queue and redistribute; the run finishes as long as at
//!   least one worker lives.  A mode that kills or fails workers
//!   `max_attempts` times is *quarantined* into
//!   [`RecoveryLog::failed_modes`] instead of failing the run.
//!
//! Every recovery action is counted in [`RecoveryLog`], which rides in
//! `FarmReport` and lands in `run_report.json` under `"recovery"`.

use msgpass::Rank;

/// What the master does when a worker is lost mid-run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Drain survivors and fail the run with
    /// [`crate::FarmError::WorkerLost`] — the pre-recovery behaviour.
    #[default]
    FailFast,
    /// Requeue the lost rank's in-flight work onto survivors and keep
    /// going; quarantine a mode after `max_attempts` dispatches.
    Requeue {
        /// Dispatch budget per mode (≥ 1; the first dispatch counts).
        max_attempts: usize,
        /// Allow process-level respawn where the deployment supports it
        /// (`run_tcp_processes`); ignored by thread-backed farms.
        respawn: bool,
    },
}

impl RecoveryPolicy {
    /// The default self-healing configuration: two attempts per mode,
    /// respawn allowed.
    pub fn requeue() -> Self {
        RecoveryPolicy::Requeue {
            max_attempts: 2,
            respawn: true,
        }
    }

    /// True for any `Requeue` variant.
    pub fn recovers(&self) -> bool {
        matches!(self, RecoveryPolicy::Requeue { .. })
    }

    /// The per-mode dispatch budget (usize::MAX under `FailFast`, which
    /// never requeues, so the budget is moot).
    pub fn max_attempts(&self) -> usize {
        match self {
            RecoveryPolicy::FailFast => usize::MAX,
            RecoveryPolicy::Requeue { max_attempts, .. } => (*max_attempts).max(1),
        }
    }
}

/// Liveness/membership change reported by the deployment layer's watch
/// callback into `master_session`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerEvent {
    /// The rank's thread exited or its process died.
    Dead(Rank),
    /// A replacement process was re-handshaked under the rank
    /// (TCP deployment only); the master must re-send the tag-1 spec.
    Respawned(Rank),
}

/// One quarantined mode: it exhausted its attempt budget.
#[derive(Debug, Clone, PartialEq)]
pub struct FailedMode {
    /// Index into the k-grid.
    pub ik: usize,
    /// Wavenumber, Mpc⁻¹.
    pub k: f64,
    /// Dispatches consumed before quarantine.
    pub attempts: usize,
    /// Human-readable reason from the last failure.
    pub reason: String,
}

/// Counters for every recovery action the master took.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    /// Modes returned to the queue after a worker loss or failure.
    pub requeues: usize,
    /// Ranks declared dead for heartbeat silence (a subset of all
    /// deaths; socket-close/thread-exit detections don't count here).
    pub heartbeat_misses: usize,
    /// Tag-9 heartbeats the master consumed.
    pub heartbeats: usize,
    /// Worker processes relaunched and re-handshaked mid-run.
    pub respawns: usize,
    /// Messages consumed from ranks already marked dead (stale results
    /// racing the death detection).
    pub late_results: usize,
    /// Modes that exhausted their attempt budget.
    pub failed_modes: Vec<FailedMode>,
    /// The session ended by cooperative tag-12 cancellation (deadline
    /// expiry or an explicit cancel).  A cancelled session returns
    /// [`crate::FarmError::Cancelled`] rather than a report, so this
    /// flag is bookkeeping for the drain path — it distinguishes a
    /// deliberate abort from a crash in the master's own ledger.
    pub cancelled: bool,
}

impl RecoveryLog {
    /// True when no recovery action of any kind was needed.
    pub fn is_clean(&self) -> bool {
        self.requeues == 0
            && self.heartbeat_misses == 0
            && self.respawns == 0
            && self.late_results == 0
            && self.failed_modes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failfast_is_the_default() {
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::FailFast);
        assert!(!RecoveryPolicy::FailFast.recovers());
        assert_eq!(RecoveryPolicy::FailFast.max_attempts(), usize::MAX);
    }

    #[test]
    fn requeue_ctor_and_budget_floor() {
        let p = RecoveryPolicy::requeue();
        assert!(p.recovers());
        assert_eq!(p.max_attempts(), 2);
        let degenerate = RecoveryPolicy::Requeue {
            max_attempts: 0,
            respawn: false,
        };
        assert_eq!(degenerate.max_attempts(), 1, "budget is floored at 1");
    }

    #[test]
    fn clean_log_detects_any_action() {
        let mut log = RecoveryLog::default();
        assert!(log.is_clean());
        log.requeues = 1;
        assert!(!log.is_clean());
        let mut log = RecoveryLog {
            heartbeats: 42, // heartbeats alone are not a recovery action
            ..Default::default()
        };
        assert!(log.is_clean());
        log.failed_modes.push(FailedMode {
            ik: 3,
            k: 0.1,
            attempts: 2,
            reason: "integrator blew up".into(),
        });
        assert!(!log.is_clean());
    }
}
