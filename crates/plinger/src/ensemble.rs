//! Ensemble sharding: one warm pool servicing a whole parameter sweep.
//!
//! Real consumers of a Boltzmann solver — MCMC chains, emulator
//! training, Fisher forecasts — need thousands of spectra over a
//! cosmology grid, not one.  The farm already parallelizes over `k`
//! *within* one cosmology; this module adds the outer level: an
//! [`EnsembleSpec`] names axes over `Ω_b`, `h`, and `n_s` against a
//! base [`RunSpec`], and [`run_ensemble`] drives the resulting shard
//! queue over a [`FarmPool`], one pooled job per
//! shard, multiplexed onto the inner chunked k-scheduler.
//!
//! Three properties make this more than a `for` loop:
//!
//! * **Determinism** — each shard runs as an ordinary pooled job with
//!   identical dispatch semantics, so the sweep's outputs are bitwise
//!   identical to a serial loop of single-cosmology
//!   [`run_job`](crate::FarmPool::run_job) calls (pinned per transport
//!   in `tests/ensemble_pinning.rs`).  Shard priorities reorder which
//!   shard runs *when*, never what a shard computes.
//! * **Amortized, overlapped context builds** — each shard's release
//!   messages carry a tag-13 prefetch hint naming the *next* shard, so
//!   workers build the next cosmology's background/thermo tables while
//!   their peers finish the current shard's tail chunks.  The rebuild
//!   moves off the critical path: prefetched jobs report
//!   `ctx_rebuilds == 0` and the work shows up as
//!   [`prefetch_builds`](crate::WorkerStats::prefetch_builds) instead.
//! * **Two-level recovery** — inside a shard the existing
//!   requeue/heartbeat/respawn machinery applies unchanged, and each
//!   shard keeps its own recovery ledger (its [`FarmReport`]); a shard
//!   whose *job* fails outright is requeued whole, budgeted by
//!   [`EnsembleOptions::max_shard_attempts`], and quarantined into
//!   [`EnsembleReport::failed`] once the budget is spent.

use std::collections::VecDeque;
use std::time::Instant;

use background::CosmoParams;
use msgpass::World;
use telemetry::log::{self as tlog, Level};

use crate::error::FarmError;
use crate::farm::FarmReport;
use crate::master::JobControl;
use crate::pool::{FarmPool, TcpFarmPool};
use crate::protocol::{hash_reals, job_hash, RunSpec, SpecDecodeError};
use crate::schedule::SchedulePolicy;

/// A parameter sweep: axes over `Ω_b`, `h`, and `n_s` applied to a base
/// [`RunSpec`].  The cartesian product of the axes defines the shards;
/// shard `i` (canonical index) is the base spec with its cosmology's
/// swept fields replaced by the grid point
/// `i = (i_ob · n_h + i_h) · n_ns + i_ns`.
///
/// The canonical wire encoding ([`EnsembleSpec::encode`]) is
/// `[n_ob, n_h, n_ns, ob…, h…, ns…, base…]` with `base…` the tag-1
/// encoding of the base spec; [`ensemble_hash`] is the content hash of
/// that encoding, and [`EnsembleSpec::shard_hash`] is the ordinary
/// [`job_hash`] of the shard's spec — so a shard's cache entry is
/// indistinguishable from (and shared with) a single-spectrum request
/// for the same cosmology.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSpec {
    /// The spec every shard derives from (its `cosmo.omega_b`,
    /// `cosmo.h`, and `cosmo.n_s` are overridden per shard; everything
    /// else — grid, gauge, preset, method — is shared).
    pub base: RunSpec,
    /// Baryon-density axis (`Ω_b` values), non-empty.
    pub omega_b: Vec<f64>,
    /// Hubble-parameter axis (`h` values), non-empty.
    pub h: Vec<f64>,
    /// Spectral-index axis (`n_s` values), non-empty.
    pub n_s: Vec<f64>,
}

/// An ensemble wire payload that cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsembleDecodeError {
    /// Payload shorter than the three axis counts.
    TooShort {
        /// Actual length.
        got: usize,
    },
    /// An axis count is zero (an empty axis defines no shards).
    EmptyAxis,
    /// Payload too short for the axis lengths it declares.
    AxisMismatch {
        /// Reals needed for the declared axes (counts included).
        want: usize,
        /// Actual length.
        got: usize,
    },
    /// The trailing base spec failed to decode.
    Base(SpecDecodeError),
}

impl std::fmt::Display for EnsembleDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnsembleDecodeError::TooShort { got } => {
                write!(f, "ensemble payload too short: {got} reals (need ≥ 3)")
            }
            EnsembleDecodeError::EmptyAxis => write!(f, "ensemble axis is empty"),
            EnsembleDecodeError::AxisMismatch { want, got } => {
                write!(f, "ensemble axes need {want} reals, got {got}")
            }
            EnsembleDecodeError::Base(e) => write!(f, "ensemble base spec: {e}"),
        }
    }
}

impl std::error::Error for EnsembleDecodeError {}

impl From<EnsembleDecodeError> for FarmError {
    fn from(e: EnsembleDecodeError) -> Self {
        FarmError::Protocol {
            rank: 0,
            detail: e.to_string(),
        }
    }
}

impl EnsembleSpec {
    /// A sweep with a single grid point per axis — the degenerate
    /// ensemble equal to its base spec.
    pub fn singleton(base: RunSpec) -> Self {
        let c = &base.cosmo;
        Self {
            omega_b: vec![c.omega_b],
            h: vec![c.h],
            n_s: vec![c.n_s],
            base,
        }
    }

    /// Number of shards: the product of the axis lengths.
    pub fn n_shards(&self) -> usize {
        self.omega_b.len() * self.h.len() * self.n_s.len()
    }

    /// The grid point of shard `i` in canonical index order
    /// (`n_s` fastest, then `h`, then `Ω_b`).
    ///
    /// # Panics
    /// When `i >= self.n_shards()`.
    pub fn shard_point(&self, i: usize) -> (f64, f64, f64) {
        assert!(i < self.n_shards(), "shard {i} out of range");
        let n_ns = self.n_s.len();
        let n_h = self.h.len();
        let i_ns = i % n_ns;
        let i_h = (i / n_ns) % n_h;
        let i_ob = i / (n_ns * n_h);
        (self.omega_b[i_ob], self.h[i_h], self.n_s[i_ns])
    }

    /// Shard `i`'s cosmology: the base cosmology with the swept fields
    /// replaced and Ω_c adjusted to keep the base's curvature.
    ///
    /// Substituting Ω_b or h into a closed budget would otherwise open
    /// the universe (the perturbation equations are flat-space only),
    /// so the sweep trades baryons against cold dark matter at fixed
    /// total — the standard parameter-sweep convention.  The
    /// adjustment is part of the shard's canonical identity: both the
    /// scheduler and the serial pinning loop see the identical
    /// re-closed `CosmoParams`, wherever the spec was decoded.
    pub fn shard_cosmo(&self, i: usize) -> CosmoParams {
        let (omega_b, h, n_s) = self.shard_point(i);
        let mut cosmo = CosmoParams {
            omega_b,
            h,
            n_s,
            ..self.base.cosmo.clone()
        };
        cosmo.omega_c += cosmo.omega_k() - self.base.cosmo.omega_k();
        cosmo
    }

    /// The full single-cosmology [`RunSpec`] of shard `i` — what the
    /// pool actually runs, and what serial pinning loops over.
    pub fn shard_spec(&self, i: usize) -> RunSpec {
        RunSpec {
            cosmo: self.shard_cosmo(i),
            ..self.base.clone()
        }
    }

    /// Canonical per-shard job identity: the ordinary [`job_hash`] of
    /// [`EnsembleSpec::shard_spec`].  Depends only on the shard's own
    /// grid point (never on visit order or on the other shards), so a
    /// result cached under it is shared with single-spectrum requests
    /// for the same cosmology.
    pub fn shard_hash(&self, i: usize) -> u64 {
        job_hash(&self.shard_spec(i))
    }

    /// Encode as the canonical ensemble wire payload
    /// `[n_ob, n_h, n_ns, ob…, h…, ns…, base…]`.
    pub fn encode(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(
            3 + self.omega_b.len() + self.h.len() + self.n_s.len() + 19 + self.base.ks.len() + 1,
        );
        v.push(self.omega_b.len() as f64);
        v.push(self.h.len() as f64);
        v.push(self.n_s.len() as f64);
        v.extend_from_slice(&self.omega_b);
        v.extend_from_slice(&self.h);
        v.extend_from_slice(&self.n_s);
        v.extend_from_slice(&self.base.encode());
        v
    }

    /// Decode the payload written by [`EnsembleSpec::encode`].  The
    /// base spec's own decoder polices the tail, so a truncated or
    /// padded payload is an error, not a garbled sweep.
    pub fn decode(v: &[f64]) -> Result<Self, EnsembleDecodeError> {
        if v.len() < 3 {
            return Err(EnsembleDecodeError::TooShort { got: v.len() });
        }
        let n_ob = v[0] as usize;
        let n_h = v[1] as usize;
        let n_ns = v[2] as usize;
        if n_ob == 0 || n_h == 0 || n_ns == 0 {
            return Err(EnsembleDecodeError::EmptyAxis);
        }
        let want = 3 + n_ob + n_h + n_ns;
        if v.len() < want {
            return Err(EnsembleDecodeError::AxisMismatch { want, got: v.len() });
        }
        let omega_b = v[3..3 + n_ob].to_vec();
        let h = v[3 + n_ob..3 + n_ob + n_h].to_vec();
        let n_s = v[3 + n_ob + n_h..want].to_vec();
        let base = RunSpec::decode(&v[want..]).map_err(EnsembleDecodeError::Base)?;
        Ok(Self {
            base,
            omega_b,
            h,
            n_s,
        })
    }
}

/// Canonical content hash of a whole sweep: [`hash_reals`] over the
/// ensemble wire encoding.  Used as the sweep's identity in logs and
/// service frames; per-shard cache keys use
/// [`EnsembleSpec::shard_hash`] instead.
pub fn ensemble_hash(ens: &EnsembleSpec) -> u64 {
    hash_reals(&ens.encode())
}

/// Knobs of one ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleOptions {
    /// Inner k-scheduling policy, applied to every shard.
    pub policy: SchedulePolicy,
    /// Optional shard priorities, one per shard in canonical index
    /// order: higher runs first (stable on ties, so equal priorities
    /// preserve canonical order).  `None` visits shards canonically.
    /// Priorities change only the visit order — per-shard results and
    /// hashes are order-independent.
    pub priorities: Option<Vec<f64>>,
    /// Whole-shard attempt budget: a shard whose job returns an error
    /// (other than cancellation) is requeued at the front of the shard
    /// queue until it has been attempted this many times, then recorded
    /// in [`EnsembleReport::failed`].  Minimum 1.
    pub max_shard_attempts: usize,
    /// Append a tag-13 next-shard prefetch hint to each shard's release
    /// messages (on by default; turn off to measure the unamortized
    /// baseline).
    pub prefetch: bool,
}

impl Default for EnsembleOptions {
    fn default() -> Self {
        Self {
            policy: SchedulePolicy::LargestFirst,
            priorities: None,
            max_shard_attempts: 2,
            prefetch: true,
        }
    }
}

impl EnsembleOptions {
    /// The shard visit order: canonical indices, stably sorted by
    /// descending priority when priorities are given.
    fn order(&self, n_shards: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n_shards).collect();
        if let Some(prio) = &self.priorities {
            order.sort_by(|&a, &b| {
                let pa = prio.get(a).copied().unwrap_or(0.0);
                let pb = prio.get(b).copied().unwrap_or(0.0);
                pb.partial_cmp(&pa).unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        order
    }
}

/// One finished shard: its canonical index, identity, and per-shard
/// report (whose recovery ledger is the shard's own — requeues,
/// heartbeat misses, and respawns inside this shard never bleed into
/// its neighbours).
#[derive(Debug)]
pub struct ShardResult {
    /// Canonical shard index.
    pub shard: usize,
    /// The shard's [`job_hash`] (its cache key).
    pub job: u64,
    /// The shard's cosmology.
    pub cosmo: CosmoParams,
    /// Job attempts this shard consumed (1 on an undisturbed run).
    pub attempts: usize,
    /// The shard's own per-job farm report.
    pub report: FarmReport,
}

/// What an ensemble run hands back: per-shard results in canonical
/// shard order plus sweep-level accounting.
#[derive(Debug, Default)]
pub struct EnsembleReport {
    /// Finished shards, sorted by canonical index.
    pub results: Vec<ShardResult>,
    /// Shards that exhausted their attempt budget: `(index, error)`.
    pub failed: Vec<(usize, String)>,
    /// Wall-clock seconds of the whole sweep.
    pub wall_seconds: f64,
    /// Whole-shard requeues taken (0 on an undisturbed sweep).
    pub shard_requeues: usize,
    /// Critical-path context rebuilds summed over all shard reports.
    /// With prefetch on, this stays well below `shards × workers` —
    /// the measured amortization of the two-level scheduler.
    pub ctx_rebuilds: usize,
    /// Context builds that ran off the critical path (while workers
    /// were parked between shards, answering prefetch hints).
    pub prefetch_builds: usize,
}

impl EnsembleReport {
    /// Modes completed across every shard.
    pub fn total_modes(&self) -> usize {
        self.results
            .iter()
            .map(|r| r.report.completion_log.len())
            .sum()
    }
}

/// The pool-side contract the ensemble scheduler drives: one job with
/// optional control and a next-job prefetch hint.  Implemented by both
/// [`FarmPool`] and [`TcpFarmPool`]; tests substitute a scripted pool
/// to exercise shard-level recovery without physics.
pub trait ShardRunner {
    /// Run one shard's job, optionally announcing the next shard.
    fn run_shard(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
        prefetch: Option<&RunSpec>,
    ) -> Result<FarmReport, FarmError>;
}

impl<W: World> ShardRunner for FarmPool<W> {
    fn run_shard(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
        prefetch: Option<&RunSpec>,
    ) -> Result<FarmReport, FarmError> {
        self.run_job_prefetched(spec, policy, ctrl, prefetch)
    }
}

impl ShardRunner for TcpFarmPool {
    fn run_shard(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
        prefetch: Option<&RunSpec>,
    ) -> Result<FarmReport, FarmError> {
        self.run_job_prefetched(spec, policy, ctrl, prefetch)
    }
}

/// Drive a whole sweep over one warm pool: pop shards off the outer
/// queue (in priority order), run each as an ordinary pooled job with
/// the *next* queued shard as its prefetch hint, requeue a shard whose
/// job fails (budgeted), and collect per-shard reports.
///
/// Cancellation propagates immediately: a fired deadline or cancel flag
/// in `ctrl` aborts the in-flight shard cooperatively and returns
/// [`FarmError::Cancelled`]; finished shards' results are dropped with
/// the error exactly as a cancelled single job drops its partial
/// outputs (callers that want partial sweeps run shard-sized requests
/// through the service instead, where every finished shard is cached).
pub fn run_ensemble<P: ShardRunner>(
    pool: &mut P,
    ens: &EnsembleSpec,
    opts: &EnsembleOptions,
    ctrl: &JobControl<'_>,
) -> Result<EnsembleReport, FarmError> {
    let t0 = Instant::now();
    let n = ens.n_shards();
    let sweep = ensemble_hash(ens);
    let mut queue: VecDeque<usize> = opts.order(n).into();
    let mut attempts = vec![0usize; n];
    let mut rep = EnsembleReport::default();
    tlog::log(
        Level::Info,
        "ensemble",
        "sweep_start",
        &[
            ("ensemble", tlog::job_hex(sweep)),
            ("shards", n.to_string()),
        ],
    );
    while let Some(si) = queue.pop_front() {
        if let Some(reason) = ctrl.triggered() {
            // between shards: nothing in flight to drain, but the sweep
            // must stop just as promptly as a mid-shard trigger would
            return Err(FarmError::Cancelled {
                reason,
                unfinished: Vec::new(),
            });
        }
        attempts[si] += 1;
        let spec = ens.shard_spec(si);
        let job = job_hash(&spec);
        let label = tlog::shard_label(sweep, si);
        let prefetch_spec = if opts.prefetch {
            queue.front().map(|&nj| ens.shard_spec(nj))
        } else {
            None
        };
        tlog::log(
            Level::Info,
            "ensemble",
            "shard_start",
            &[
                ("shard", label.clone()),
                ("job", tlog::job_hex(job)),
                ("attempt", attempts[si].to_string()),
            ],
        );
        match pool.run_shard(&spec, opts.policy, ctrl, prefetch_spec.as_ref()) {
            Ok(report) => {
                rep.ctx_rebuilds += report
                    .worker_stats
                    .iter()
                    .map(|w| w.ctx_rebuilds)
                    .sum::<usize>();
                rep.prefetch_builds += report
                    .worker_stats
                    .iter()
                    .map(|w| w.prefetch_builds)
                    .sum::<usize>();
                tlog::log(
                    Level::Info,
                    "ensemble",
                    "shard_done",
                    &[
                        ("shard", label),
                        ("job", tlog::job_hex(job)),
                        ("modes", report.completion_log.len().to_string()),
                        ("requeues", report.recovery.requeues.to_string()),
                    ],
                );
                rep.results.push(ShardResult {
                    shard: si,
                    job,
                    cosmo: spec.cosmo,
                    attempts: attempts[si],
                    report,
                });
            }
            Err(e @ FarmError::Cancelled { .. }) => return Err(e),
            Err(e) if attempts[si] < opts.max_shard_attempts.max(1) => {
                rep.shard_requeues += 1;
                tlog::log(
                    Level::Warn,
                    "ensemble",
                    "shard_requeue",
                    &[
                        ("shard", label),
                        ("job", tlog::job_hex(job)),
                        ("reason", e.to_string()),
                    ],
                );
                queue.push_front(si);
            }
            Err(e) => {
                tlog::log(
                    Level::Error,
                    "ensemble",
                    "shard_failed",
                    &[
                        ("shard", label),
                        ("job", tlog::job_hex(job)),
                        ("reason", e.to_string()),
                    ],
                );
                rep.failed.push((si, e.to_string()));
            }
        }
    }
    rep.results.sort_by_key(|r| r.shard);
    rep.wall_seconds = t0.elapsed().as_secs_f64();
    tlog::log(
        Level::Info,
        "ensemble",
        "sweep_done",
        &[
            ("ensemble", tlog::job_hex(sweep)),
            ("shards", rep.results.len().to_string()),
            ("failed", rep.failed.len().to_string()),
            ("shard_requeues", rep.shard_requeues.to_string()),
            ("ctx_rebuilds", rep.ctx_rebuilds.to_string()),
            ("prefetch_builds", rep.prefetch_builds.to_string()),
            ("wall_ms", format!("{:.1}", rep.wall_seconds * 1000.0)),
        ],
    );
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CancelReason;
    use crate::recovery::RecoveryLog;
    use boltzmann::Preset;
    use std::sync::atomic::AtomicBool;

    fn sweep_3x2x2() -> EnsembleSpec {
        let mut base = RunSpec::standard_cdm(vec![0.002, 0.01, 0.03]);
        base.preset = Preset::Draft;
        EnsembleSpec {
            base,
            omega_b: vec![0.04, 0.05, 0.06],
            h: vec![0.5, 0.7],
            n_s: vec![0.95, 1.0],
        }
    }

    #[test]
    fn canonical_index_order_is_ns_fastest() {
        let ens = sweep_3x2x2();
        assert_eq!(ens.n_shards(), 12);
        assert_eq!(ens.shard_point(0), (0.04, 0.5, 0.95));
        assert_eq!(ens.shard_point(1), (0.04, 0.5, 1.0));
        assert_eq!(ens.shard_point(2), (0.04, 0.7, 0.95));
        assert_eq!(ens.shard_point(4), (0.05, 0.5, 0.95));
        assert_eq!(ens.shard_point(11), (0.06, 0.7, 1.0));
    }

    #[test]
    fn wire_roundtrip_is_lossless_and_stable() {
        let ens = sweep_3x2x2();
        let wire = ens.encode();
        let back = EnsembleSpec::decode(&wire).unwrap();
        assert_eq!(back, ens);
        assert_eq!(back.encode(), wire, "re-encoding must be byte-stable");
        assert_eq!(ensemble_hash(&back), ensemble_hash(&ens));
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let ens = sweep_3x2x2();
        let wire = ens.encode();
        assert_eq!(
            EnsembleSpec::decode(&wire[..2]),
            Err(EnsembleDecodeError::TooShort { got: 2 })
        );
        let mut empty = wire.clone();
        empty[1] = 0.0;
        assert_eq!(
            EnsembleSpec::decode(&empty),
            Err(EnsembleDecodeError::EmptyAxis)
        );
        assert_eq!(
            EnsembleSpec::decode(&wire[..6]),
            Err(EnsembleDecodeError::AxisMismatch { want: 10, got: 6 })
        );
        let mut truncated = wire.clone();
        truncated.pop();
        assert!(matches!(
            EnsembleSpec::decode(&truncated),
            Err(EnsembleDecodeError::Base(_))
        ));
    }

    #[test]
    fn shard_hash_matches_hand_built_spec() {
        let ens = sweep_3x2x2();
        for i in 0..ens.n_shards() {
            let (ob, h, ns) = ens.shard_point(i);
            let mut spec = ens.base.clone();
            spec.cosmo.omega_b = ob;
            spec.cosmo.h = h;
            spec.cosmo.n_s = ns;
            // the sweep trades Ω_b against Ω_c to keep the base's
            // curvature — part of the shard's canonical identity
            spec.cosmo.omega_c += spec.cosmo.omega_k() - ens.base.cosmo.omega_k();
            assert_eq!(ens.shard_hash(i), job_hash(&spec), "shard {i}");
        }
    }

    #[test]
    fn shard_cosmos_keep_the_base_curvature() {
        let ens = sweep_3x2x2();
        let base_k = ens.base.cosmo.omega_k();
        for i in 0..ens.n_shards() {
            let k = ens.shard_cosmo(i).omega_k();
            assert!(
                (k - base_k).abs() < 1e-12,
                "shard {i}: Ω_k = {k}, base {base_k}"
            );
        }
    }

    #[test]
    fn priorities_reorder_but_preserve_canonical_ties() {
        let opts = EnsembleOptions {
            priorities: Some(vec![0.0, 5.0, 1.0, 5.0]),
            ..EnsembleOptions::default()
        };
        assert_eq!(opts.order(4), vec![1, 3, 2, 0]);
        let default = EnsembleOptions::default();
        assert_eq!(default.order(4), vec![0, 1, 2, 3]);
    }

    /// A scripted pool: returns an empty report per shard, failing the
    /// first `fail_first` attempts of one poisoned shard.
    struct ScriptedPool {
        poisoned: u64,
        failures_left: usize,
        jobs: Vec<u64>,
        prefetches: Vec<Option<u64>>,
    }

    impl ShardRunner for ScriptedPool {
        fn run_shard(
            &mut self,
            spec: &RunSpec,
            _policy: SchedulePolicy,
            _ctrl: &JobControl<'_>,
            prefetch: Option<&RunSpec>,
        ) -> Result<FarmReport, FarmError> {
            let job = job_hash(spec);
            self.jobs.push(job);
            self.prefetches.push(prefetch.map(job_hash));
            if job == self.poisoned && self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(FarmError::AllWorkersLost { unfinished: vec![] });
            }
            Ok(FarmReport {
                outputs: Vec::new(),
                wall_seconds: 0.0,
                worker_stats: Vec::new(),
                bytes_received: 0,
                completion_log: Vec::new(),
                telemetry: crate::report::FarmTelemetry::default(),
                recovery: RecoveryLog::default(),
            })
        }
    }

    #[test]
    fn failed_shard_is_requeued_whole_then_succeeds() {
        let ens = sweep_3x2x2();
        let mut pool = ScriptedPool {
            poisoned: ens.shard_hash(5),
            failures_left: 1,
            jobs: Vec::new(),
            prefetches: Vec::new(),
        };
        let rep = run_ensemble(
            &mut pool,
            &ens,
            &EnsembleOptions::default(),
            &JobControl::default(),
        )
        .unwrap();
        assert_eq!(rep.results.len(), 12, "every shard finishes");
        assert_eq!(rep.shard_requeues, 1);
        assert!(rep.failed.is_empty());
        // the retry ran immediately after the failure (front requeue)
        assert_eq!(pool.jobs[5], ens.shard_hash(5));
        assert_eq!(pool.jobs[6], ens.shard_hash(5));
        assert_eq!(rep.results[5].attempts, 2);
        assert_eq!(rep.results[4].attempts, 1);
    }

    #[test]
    fn attempt_budget_exhaustion_quarantines_the_shard() {
        let ens = sweep_3x2x2();
        let mut pool = ScriptedPool {
            poisoned: ens.shard_hash(0),
            failures_left: 99,
            jobs: Vec::new(),
            prefetches: Vec::new(),
        };
        let rep = run_ensemble(
            &mut pool,
            &ens,
            &EnsembleOptions::default(),
            &JobControl::default(),
        )
        .unwrap();
        assert_eq!(rep.results.len(), 11);
        assert_eq!(rep.failed.len(), 1);
        assert_eq!(rep.failed[0].0, 0);
        assert_eq!(rep.shard_requeues, 1, "budget is 2 attempts by default");
    }

    #[test]
    fn prefetch_hints_name_the_next_queued_shard() {
        let ens = sweep_3x2x2();
        let mut pool = ScriptedPool {
            poisoned: 0,
            failures_left: 0,
            jobs: Vec::new(),
            prefetches: Vec::new(),
        };
        run_ensemble(
            &mut pool,
            &ens,
            &EnsembleOptions::default(),
            &JobControl::default(),
        )
        .unwrap();
        let n = ens.n_shards();
        for i in 0..n - 1 {
            assert_eq!(
                pool.prefetches[i],
                Some(ens.shard_hash(i + 1)),
                "shard {i} must announce shard {}",
                i + 1
            );
        }
        assert_eq!(pool.prefetches[n - 1], None, "last shard has no successor");

        // and prefetch can be disabled for baseline measurements
        let mut pool = ScriptedPool {
            poisoned: 0,
            failures_left: 0,
            jobs: Vec::new(),
            prefetches: Vec::new(),
        };
        let opts = EnsembleOptions {
            prefetch: false,
            ..EnsembleOptions::default()
        };
        run_ensemble(&mut pool, &ens, &opts, &JobControl::default()).unwrap();
        assert!(pool.prefetches.iter().all(Option::is_none));
    }

    #[test]
    fn cancel_between_shards_propagates() {
        let ens = sweep_3x2x2();
        let mut pool = ScriptedPool {
            poisoned: 0,
            failures_left: 0,
            jobs: Vec::new(),
            prefetches: Vec::new(),
        };
        let flag = AtomicBool::new(true);
        let ctrl = JobControl {
            cancel: Some(&flag),
            ..JobControl::default()
        };
        match run_ensemble(&mut pool, &ens, &EnsembleOptions::default(), &ctrl) {
            Err(FarmError::Cancelled { reason, .. }) => {
                assert_eq!(reason, CancelReason::Cancelled)
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(pool.jobs.is_empty(), "no shard may start after the trigger");
    }
}
