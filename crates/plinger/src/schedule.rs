//! Work-dispatch order for the master.
//!
//! The paper: "Since larger wavenumbers require greater computation, one
//! simple method by which we minimized this idle time was to compute the
//! largest k first."  Largest-first is therefore the default; the other
//! policies exist for the scheduling ablation (`abl_sched` in
//! DESIGN.md), which quantifies how much that one-line choice buys.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Dispatch-order policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Largest wavenumber first — the paper's choice.
    LargestFirst,
    /// Smallest wavenumber first (pessimal: the longest job lands last).
    SmallestFirst,
    /// Grid order as given.
    Fifo,
    /// Uniformly random permutation with a fixed seed.
    Random(u64),
}

impl SchedulePolicy {
    /// Indices of `ks` in dispatch order.
    pub fn order(&self, ks: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ks.len()).collect();
        match self {
            SchedulePolicy::LargestFirst => {
                idx.sort_by(|&a, &b| ks[b].total_cmp(&ks[a]));
            }
            SchedulePolicy::SmallestFirst => {
                idx.sort_by(|&a, &b| ks[a].total_cmp(&ks[b]));
            }
            SchedulePolicy::Fifo => {}
            SchedulePolicy::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(*seed);
                idx.shuffle(&mut rng);
            }
        }
        idx
    }
}

/// The master's pending-work queue: the dispatch order plus a per-mode
/// attempt counter, so requeued modes can be retried and budgeted.
///
/// Modes leave through [`Self::pop`] (incrementing their attempt
/// count) and come back through [`Self::requeue_front`] when the worker
/// holding them is lost — to the *front*, so a recovered mode is
/// retried before untouched work, preserving the largest-first rationale
/// (the requeued mode is the one most likely to be long).
#[derive(Debug, Clone)]
pub struct WorkQueue {
    pending: std::collections::VecDeque<usize>,
    attempts: Vec<usize>,
}

impl WorkQueue {
    /// Build from a dispatch order over `nk` modes (as produced by
    /// [`SchedulePolicy::order`]).
    pub fn new(order: &[usize], nk: usize) -> Self {
        Self {
            pending: order.iter().copied().collect(),
            attempts: vec![0; nk],
        }
    }

    /// Pop the next mode to dispatch, counting the attempt.
    pub fn pop(&mut self) -> Option<usize> {
        let ik = self.pending.pop_front()?;
        if let Some(a) = self.attempts.get_mut(ik) {
            *a += 1;
        }
        Some(ik)
    }

    /// Pop up to `n` modes in dispatch order (counting an attempt for
    /// each), for one chunked tag-3 assignment.  Returns fewer than `n`
    /// — possibly none — when the queue runs dry, so the tail of the
    /// run degrades gracefully to smaller chunks.
    pub fn pop_chunk(&mut self, n: usize) -> Vec<usize> {
        let mut chunk = Vec::with_capacity(n.max(1).min(self.pending.len()));
        while chunk.len() < n.max(1) {
            match self.pop() {
                Some(ik) => chunk.push(ik),
                None => break,
            }
        }
        chunk
    }

    /// Return a lost mode to the head of the queue.
    pub fn requeue_front(&mut self, ik: usize) {
        self.pending.push_front(ik);
    }

    /// Return a whole lost chunk to the head of the queue, preserving
    /// its internal dispatch order (the chunk's first mode is retried
    /// first).
    pub fn requeue_chunk_front(&mut self, iks: &[usize]) {
        for &ik in iks.iter().rev() {
            self.pending.push_front(ik);
        }
    }

    /// How many times `ik` has been handed out so far.
    pub fn attempts(&self, ik: usize) -> usize {
        self.attempts.get(ik).copied().unwrap_or(0)
    }

    /// Modes still waiting for dispatch.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no modes wait for dispatch.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KS: [f64; 5] = [0.01, 0.5, 0.05, 0.2, 0.001];

    #[test]
    fn largest_first_sorts_descending() {
        let order = SchedulePolicy::LargestFirst.order(&KS);
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn smallest_first_sorts_ascending() {
        let order = SchedulePolicy::SmallestFirst.order(&KS);
        assert_eq!(order, vec![4, 0, 2, 3, 1]);
    }

    #[test]
    fn fifo_keeps_grid_order() {
        let order = SchedulePolicy::Fifo.order(&KS);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn work_queue_counts_attempts_and_requeues_to_front() {
        let order = SchedulePolicy::LargestFirst.order(&KS);
        let mut q = WorkQueue::new(&order, KS.len());
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        let first = q.pop().unwrap();
        assert_eq!(first, 1); // largest k
        assert_eq!(q.attempts(1), 1);
        assert_eq!(q.attempts(3), 0);
        // worker died holding ik=1: requeue; it must come back first
        q.requeue_front(1);
        assert_eq!(q.pop().unwrap(), 1);
        assert_eq!(q.attempts(1), 2);
        // drain the rest
        let rest: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![3, 2, 0, 4]);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_chunk_keeps_dispatch_order_across_chunks() {
        let order = SchedulePolicy::LargestFirst.order(&KS);
        let mut q = WorkQueue::new(&order, KS.len());
        // chunk = 2: successive chunks walk the same largest-first order
        assert_eq!(q.pop_chunk(2), vec![1, 3]);
        assert_eq!(q.pop_chunk(2), vec![2, 0]);
        // tail chunk is short, then empty
        assert_eq!(q.pop_chunk(2), vec![4]);
        assert!(q.pop_chunk(2).is_empty());
        // every pop counted an attempt
        for ik in 0..KS.len() {
            assert_eq!(q.attempts(ik), 1);
        }
        // chunk = 0 still hands out one mode at a time
        q.requeue_front(4);
        assert_eq!(q.pop_chunk(0), vec![4]);
    }

    #[test]
    fn requeue_chunk_front_preserves_internal_order() {
        let order = SchedulePolicy::LargestFirst.order(&KS);
        let mut q = WorkQueue::new(&order, KS.len());
        let chunk = q.pop_chunk(3);
        assert_eq!(chunk, vec![1, 3, 2]);
        // the worker holding [1, 3, 2] died: the whole chunk goes back
        // to the front in its original order, ahead of untouched work
        q.requeue_chunk_front(&chunk);
        let drained: Vec<usize> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn random_is_a_seeded_permutation() {
        let o1 = SchedulePolicy::Random(42).order(&KS);
        let o2 = SchedulePolicy::Random(42).order(&KS);
        assert_eq!(o1, o2, "same seed must reproduce");
        let mut sorted = o1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        let o3 = SchedulePolicy::Random(43).order(&KS);
        assert!(o1 != o3 || KS.len() < 3, "different seeds should differ");
    }
}
