//! Work-dispatch order for the master.
//!
//! The paper: "Since larger wavenumbers require greater computation, one
//! simple method by which we minimized this idle time was to compute the
//! largest k first."  Largest-first is therefore the default; the other
//! policies exist for the scheduling ablation (`abl_sched` in
//! DESIGN.md), which quantifies how much that one-line choice buys.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Dispatch-order policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Largest wavenumber first — the paper's choice.
    LargestFirst,
    /// Smallest wavenumber first (pessimal: the longest job lands last).
    SmallestFirst,
    /// Grid order as given.
    Fifo,
    /// Uniformly random permutation with a fixed seed.
    Random(u64),
}

impl SchedulePolicy {
    /// Indices of `ks` in dispatch order.
    pub fn order(&self, ks: &[f64]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..ks.len()).collect();
        match self {
            SchedulePolicy::LargestFirst => {
                idx.sort_by(|&a, &b| ks[b].total_cmp(&ks[a]));
            }
            SchedulePolicy::SmallestFirst => {
                idx.sort_by(|&a, &b| ks[a].total_cmp(&ks[b]));
            }
            SchedulePolicy::Fifo => {}
            SchedulePolicy::Random(seed) => {
                let mut rng = StdRng::seed_from_u64(*seed);
                idx.shuffle(&mut rng);
            }
        }
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KS: [f64; 5] = [0.01, 0.5, 0.05, 0.2, 0.001];

    #[test]
    fn largest_first_sorts_descending() {
        let order = SchedulePolicy::LargestFirst.order(&KS);
        assert_eq!(order, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn smallest_first_sorts_ascending() {
        let order = SchedulePolicy::SmallestFirst.order(&KS);
        assert_eq!(order, vec![4, 0, 2, 3, 1]);
    }

    #[test]
    fn fifo_keeps_grid_order() {
        let order = SchedulePolicy::Fifo.order(&KS);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn random_is_a_seeded_permutation() {
        let o1 = SchedulePolicy::Random(42).order(&KS);
        let o2 = SchedulePolicy::Random(42).order(&KS);
        assert_eq!(o1, o2, "same seed must reproduce");
        let mut sorted = o1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        let o3 = SchedulePolicy::Random(43).order(&KS);
        assert!(o1 != o3 || KS.len() < 3, "different seeds should differ");
    }
}
