//! Persistent farm sessions: a worker pool that outlives any one run.
//!
//! [`Farm`](crate::Farm) assembles a world, runs one job, and tears
//! everything down; every run pays the worker-side
//! [`Background`](background::Background)/
//! [`ThermoHistory`](recomb::ThermoHistory) construction again even
//! when consecutive runs share a cosmology.  [`FarmPool`] splits that
//! lifetime: the pool owns the world and its resident workers (threads
//! running [`crate::worker::worker_pool_session`], with warm physics
//! caches and integrator scratch), while a [`Session`] borrows the pool
//! for exactly one k-grid job.  Per-job state — work queue, recovery
//! ledger, heartbeat clocks, idle accounting, telemetry — lives inside
//! [`crate::master::master_job_session`] and is rebuilt from scratch
//! every job; only endpoints and caches persist.
//!
//! Self-healing persists across jobs too.  A worker that dies mid-job
//! is respawned *into the pool*, not just the run: the dead thread is
//! joined, its endpoint recovered, and a fresh persistent session
//! spawned on it (budgeted by [`PoolOptions::respawn_limit`]), so the
//! replacement rank serves every later job.  A thread that panicked
//! takes its endpoint down with it and the rank stays dead.  The
//! multi-process analogue is [`TcpFarmPool`], which keeps the
//! subprocess workers, the respawn listener, and the master socket
//! alive between jobs.
//!
//! Determinism: a pooled job runs the same master loop, the same
//! dispatch order, and bit-identical mode integrations as a fresh
//! [`Farm::run`](crate::Farm::run) — warm caches are keyed on the
//! canonical cosmology hash and rebuilt whenever it changes, and cache
//! reuse never alters results, only skips table construction.  The
//! pool-vs-fresh bitwise tests in `tests/pool_sessions.rs` pin this.

use std::path::Path;
use std::process::Child;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use msgpass::instrument::{CommSnapshot, EndpointStats, Instrumented};
use msgpass::tcp::{PendingMaster, RespawnPort, TcpEndpoint};
use msgpass::{Transport, World};
use telemetry::SpanEvent;

use crate::error::FarmError;
use crate::farm::{
    finish_report, spawn_tcp_worker, watch_tcp_children, worker_fault_arg, FarmReport, FaultPlan,
    TcpFarmOptions,
};
use crate::master::{master_job_session_prefetch, JobControl, MasterConfig, SessionKind};
use crate::protocol::{RunSpec, TAG_STOP};
use crate::recovery::{RecoveryPolicy, WorkerEvent};
use crate::schedule::SchedulePolicy;
use crate::worker::{worker_pool_session, PoolWorkerOutcome, WorkerFault};

/// Pool-level knobs (the per-job knobs live in [`MasterConfig`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolOptions {
    /// Total worker respawns allowed over the pool's lifetime.  Respawn
    /// also requires the recovery policy to be
    /// `RecoveryPolicy::Requeue { respawn: true, .. }`.
    pub respawn_limit: usize,
    /// Worker-level fault to script into the initial workers (tests).
    pub fault: Option<FaultPlan>,
}

/// One resident worker of a thread pool: its liveness flag, its thread
/// (which returns the endpoint on clean exit so a replacement session
/// can be spawned on it), and its comm-counter handle.
struct PoolWorker<W: World> {
    alive: Arc<AtomicBool>,
    handle: Option<WorkerHandle<W>>,
    stats: Arc<EndpointStats>,
    /// This rank's death was already reported with no replacement
    /// possible; stop re-joining it.
    handled: bool,
}

type WorkerReturn<W> = (
    Result<PoolWorkerOutcome, FarmError>,
    Instrumented<<W as World>::Endpoint>,
);
type WorkerHandle<W> = JoinHandle<WorkerReturn<W>>;

fn spawn_pool_worker<W: World>(
    mut ep: Instrumented<W::Endpoint>,
    fault: Option<WorkerFault>,
    epoch: Instant,
) -> (Arc<AtomicBool>, WorkerHandle<W>) {
    let alive = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&alive);
    let handle = std::thread::spawn(move || {
        let out = worker_pool_session(&mut ep, fault, epoch);
        flag.store(false, Ordering::SeqCst);
        // hand the endpoint back: a vanished-but-clean worker's endpoint
        // is reusable by a replacement session under the same rank
        (out, ep)
    });
    (alive, handle)
}

/// What a pool hands back when it shuts down cleanly.
#[derive(Debug, Default)]
pub struct PoolShutdown {
    /// Jobs the pool ran to a report.
    pub jobs: usize,
    /// Worker-side span timelines across all jobs (harvested at thread
    /// joins; per-job reports carry master spans only, because worker
    /// threads are still running when a job's report is cut).
    pub worker_spans: Vec<SpanEvent>,
}

/// A warm farm: one world whose workers stay resident — physics caches,
/// integrator scratch, and heartbeat clocks intact — across any number
/// of jobs.
///
/// ```no_run
/// use msgpass::channel::ChannelWorld;
/// use plinger::{FarmPool, RunSpec, SchedulePolicy};
///
/// let mut pool = FarmPool::<ChannelWorld>::start(4).expect("pool");
/// let a = RunSpec::standard_cdm(vec![0.001, 0.01]);
/// let rep1 = pool.session(SchedulePolicy::LargestFirst).run(&a).expect("job 1");
/// let rep2 = pool.session(SchedulePolicy::LargestFirst).run(&a).expect("job 2");
/// // same cosmology: job 2 rebuilt no physics tables
/// assert_eq!(rep2.worker_stats.iter().map(|w| w.ctx_rebuilds).sum::<usize>(), 0);
/// let _ = (rep1, pool.shutdown());
/// ```
pub struct FarmPool<W: World> {
    master: Option<Instrumented<W::Endpoint>>,
    master_stats: Arc<EndpointStats>,
    workers: Vec<PoolWorker<W>>,
    config: MasterConfig,
    epoch: Instant,
    respawn_allowed: bool,
    respawns_left: usize,
    /// Cumulative per-endpoint snapshots at the end of the previous job
    /// (master first, then workers in rank order) — the baseline the
    /// next job's per-job comm table is a delta against.
    comm_prev: Vec<CommSnapshot>,
    /// Worker spans harvested from joined (dead or stopped) threads.
    spans: Vec<SpanEvent>,
    jobs_run: usize,
    closed: bool,
}

impl<W: World> FarmPool<W> {
    /// Start a pool of `n_workers` resident workers with the default
    /// master configuration (FailFast; see [`MasterConfig`]).
    pub fn start(n_workers: usize) -> Result<Self, FarmError> {
        Self::start_with(n_workers, MasterConfig::default(), PoolOptions::default())
    }

    /// [`FarmPool::start`] with explicit per-job and pool-level knobs.
    pub fn start_with(
        n_workers: usize,
        config: MasterConfig,
        opts: PoolOptions,
    ) -> Result<Self, FarmError> {
        if n_workers < 1 {
            return Err(FarmError::Setup(msgpass::CommError::Unsupported(
                "a farm needs at least one worker",
            )));
        }
        let eps = W::endpoints(n_workers + 1).map_err(FarmError::Setup)?;
        if eps.len() != n_workers + 1 {
            return Err(FarmError::Setup(msgpass::CommError::Protocol(format!(
                "transport {} built {} endpoints for {} ranks",
                W::NAME,
                eps.len(),
                n_workers + 1
            ))));
        }
        let epoch = Instant::now();
        let mut eps = eps.into_iter();
        let (master, master_stats) = match eps.next() {
            Some(ep) => Instrumented::new(ep),
            None => {
                return Err(FarmError::Setup(msgpass::CommError::Protocol(
                    "world produced no master endpoint".into(),
                )))
            }
        };
        let workers: Vec<PoolWorker<W>> = eps
            .enumerate()
            .map(|(i, ep)| {
                let (wrapped, stats) = Instrumented::new(ep);
                let fault = opts.fault.and_then(|f| f.worker_fault(i + 1));
                let (alive, handle) = spawn_pool_worker::<W>(wrapped, fault, epoch);
                PoolWorker {
                    alive,
                    handle: Some(handle),
                    stats,
                    handled: false,
                }
            })
            .collect();
        let comm_prev = std::iter::once(master_stats.snapshot(0))
            .chain(
                workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w.stats.snapshot(i + 1)),
            )
            .collect();
        let respawn_allowed = matches!(
            config.recovery,
            RecoveryPolicy::Requeue { respawn: true, .. }
        );
        Ok(Self {
            master: Some(master),
            master_stats,
            workers,
            config,
            epoch,
            respawn_allowed,
            respawns_left: if respawn_allowed {
                opts.respawn_limit
            } else {
                0
            },
            comm_prev,
            spans: Vec::new(),
            jobs_run: 0,
            closed: false,
        })
    }

    /// Workers in the pool (dead or alive — the rank count is fixed at
    /// start).
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Workers whose session thread is currently running — the
    /// readiness signal behind the service's `/healthz`.
    pub fn workers_alive(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::SeqCst))
            .count()
    }

    /// Jobs run to a report so far.
    pub fn jobs_run(&self) -> usize {
        self.jobs_run
    }

    /// Borrow the pool for one job under `policy`.
    pub fn session(&mut self, policy: SchedulePolicy) -> Session<'_, W> {
        Session {
            pool: self,
            policy,
            ctrl: JobControl::default(),
        }
    }

    /// Run one k-grid job on the resident workers and cut its report.
    ///
    /// Equivalent to `self.session(policy).run(spec)`.  The report's
    /// worker statistics, idle/imbalance accounting, recovery ledger,
    /// and comm table cover *this job only* — comm counters are deltas
    /// against a between-jobs baseline, and each worker reports fresh
    /// per-job stats on its tag-11 release.
    pub fn run_job(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
    ) -> Result<FarmReport, FarmError> {
        self.run_job_with(spec, policy, &JobControl::default())
    }

    /// [`FarmPool::run_job`] under external [`JobControl`]: a fired
    /// deadline or cancel flag aborts the job cooperatively (tag-12);
    /// the pool stays consistent — workers park, stats and comm
    /// baselines are refreshed — and the next `run_job` is served
    /// normally.  A cancelled job returns [`FarmError::Cancelled`].
    pub fn run_job_with(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
    ) -> Result<FarmReport, FarmError> {
        self.run_job_prefetched(spec, policy, ctrl, None)
    }

    /// [`FarmPool::run_job_with`] with an ensemble prefetch hint: when
    /// `prefetch` names the *next* job's spec, each worker released
    /// from this job is handed a tag-13 hint and builds that job's
    /// background/thermo tables while it parks — overlapping the next
    /// shard's context construction with this shard's tail chunks.
    /// Results are unaffected; the next job simply starts warm
    /// (`ctx_rebuilds == 0`, `prefetch_builds == 1` in its report).
    pub fn run_job_prefetched(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
        prefetch: Option<&RunSpec>,
    ) -> Result<FarmReport, FarmError> {
        let Some(master) = self.master.as_mut() else {
            return Err(FarmError::Protocol {
                rank: 0,
                detail: "pool already shut down".into(),
            });
        };
        let epoch = self.epoch;
        let config = self.config;
        let respawn_allowed = self.respawn_allowed;
        let workers = &mut self.workers;
        let respawns_left = &mut self.respawns_left;
        let spans = &mut self.spans;
        let mut watch = || -> Vec<WorkerEvent> {
            let mut events = Vec::new();
            for (i, w) in workers.iter_mut().enumerate() {
                let rank = i + 1;
                if w.alive.load(Ordering::SeqCst) {
                    continue;
                }
                if w.handled {
                    events.push(WorkerEvent::Dead(rank));
                    continue;
                }
                // the session thread ended; reap it and decide whether
                // a replacement can inherit its endpoint
                let mut endpoint = None;
                // a panicked thread dropped its endpoint, leaving the
                // rank unrecoverable; a clean return hands it back
                if let Some(handle) = w.handle.take() {
                    if let Ok((outcome, ep)) = handle.join() {
                        if let Ok(out) = outcome {
                            spans.extend(out.spans);
                        }
                        endpoint = Some(ep);
                    }
                }
                match endpoint {
                    Some(ep) if respawn_allowed && *respawns_left > 0 => {
                        let (alive, handle) = spawn_pool_worker::<W>(ep, None, epoch);
                        w.alive = alive;
                        w.handle = Some(handle);
                        *respawns_left -= 1;
                        telemetry::log::log(
                            telemetry::Level::Warn,
                            "pool",
                            "worker_respawned_into_pool",
                            &[
                                ("worker", rank.to_string()),
                                ("respawns_left", respawns_left.to_string()),
                            ],
                        );
                        events.push(WorkerEvent::Respawned(rank));
                    }
                    _ => {
                        w.handled = true;
                        telemetry::log::log(
                            telemetry::Level::Warn,
                            "pool",
                            "worker_retired",
                            &[("worker", rank.to_string())],
                        );
                        events.push(WorkerEvent::Dead(rank));
                    }
                }
            }
            events
        };
        let outcome = master_job_session_prefetch(
            master,
            spec,
            policy,
            &config,
            &mut watch,
            epoch,
            SessionKind::Pooled,
            ctrl,
            prefetch,
        );
        // refresh the comm baseline even on error, so a failed job's
        // traffic never leaks into the next job's table
        let snaps: Vec<CommSnapshot> = std::iter::once(self.master_stats.snapshot(0))
            .chain(
                self.workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w.stats.snapshot(i + 1)),
            )
            .collect();
        let comm: Vec<CommSnapshot> = snaps
            .iter()
            .zip(self.comm_prev.iter())
            .map(|(now, prev)| now.delta(prev))
            .collect();
        self.comm_prev = snaps;
        let ledger = outcome?;
        self.jobs_run += 1;
        finish_report(ledger, comm, Vec::new())
    }

    /// Stop every resident worker (tag 6), join their threads, and
    /// return the pool-lifetime leftovers: job count and the workers'
    /// span timelines.
    pub fn shutdown(mut self) -> PoolShutdown {
        self.close();
        PoolShutdown {
            jobs: self.jobs_run,
            worker_spans: std::mem::take(&mut self.spans),
        }
    }

    /// Best-effort release of every live worker and join of every
    /// thread.  Idempotent; shared by [`FarmPool::shutdown`] and `Drop`.
    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if let Some(master) = self.master.as_mut() {
            for (i, w) in self.workers.iter().enumerate() {
                if w.handle.is_some() && w.alive.load(Ordering::SeqCst) {
                    let _ = master.send(i + 1, TAG_STOP, &[0.0]);
                }
            }
        }
        for w in self.workers.iter_mut() {
            if let Some(handle) = w.handle.take() {
                if let Ok((Ok(out), _ep)) = handle.join() {
                    self.spans.extend(out.spans);
                }
            }
        }
        self.master = None;
    }
}

impl<W: World> Drop for FarmPool<W> {
    fn drop(&mut self) {
        // a dropped pool must not leave resident workers blocked on a
        // probe forever
        self.close();
    }
}

/// One k-grid job borrowed onto a [`FarmPool`].  Consuming [`run`]
/// keeps the borrow honest: a session is exactly one job.
///
/// [`run`]: Session::run
pub struct Session<'p, W: World> {
    pool: &'p mut FarmPool<W>,
    policy: SchedulePolicy,
    ctrl: JobControl<'p>,
}

impl<'p, W: World> Session<'p, W> {
    /// Attach external [`JobControl`] — a deadline and/or cancel flag —
    /// to this session's job.  Without it the job runs to completion
    /// (the historical behaviour); with it a fired trigger cancels the
    /// job cooperatively exactly as [`FarmPool::run_job_with`] would.
    pub fn with_control(mut self, ctrl: JobControl<'p>) -> Self {
        self.ctrl = ctrl;
        self
    }

    /// Run the job and cut its per-job report.  Routes through
    /// [`FarmPool::run_job_with`] so any control attached with
    /// [`Session::with_control`] — deadline or cancel flag — applies to
    /// session-scoped jobs too.
    pub fn run(self, spec: &RunSpec) -> Result<FarmReport, FarmError> {
        self.pool.run_job_with(spec, self.policy, &self.ctrl)
    }
}

/// The multi-process analogue of [`FarmPool`]: subprocess workers over
/// localhost TCP stay resident — and respawnable through the kept
/// listening socket — across jobs.
///
/// Workers are the same `--tcp-worker` subprocesses
/// [`crate::run_tcp_processes`] spawns (they always run the persistent
/// session), so a pool needs no new worker-side plumbing: jobs open
/// with tag 10, close with tag 11, and the final shutdown is a tag-6
/// stop.  A child that exits abnormally mid-job is relaunched and
/// re-handshaked under its rank (budget permitting) exactly as in a
/// one-shot run — but here the replacement keeps serving later jobs.
pub struct TcpFarmPool {
    master: Option<Instrumented<TcpEndpoint>>,
    master_stats: Arc<EndpointStats>,
    port: RespawnPort,
    children: Vec<Child>,
    handled: Vec<bool>,
    respawns_left: usize,
    exe: std::path::PathBuf,
    addr: std::net::SocketAddr,
    size: usize,
    config: MasterConfig,
    epoch: Instant,
    comm_prev: CommSnapshot,
    jobs_run: usize,
    closed: bool,
}

impl TcpFarmPool {
    /// Bind the master socket, spawn `n_workers` copies of `exe` as
    /// resident workers, and complete the handshake.
    pub fn start(n_workers: usize, exe: &Path, opts: &TcpFarmOptions) -> Result<Self, FarmError> {
        if n_workers < 1 {
            return Err(FarmError::Setup(msgpass::CommError::Unsupported(
                "a farm needs at least one worker",
            )));
        }
        let pending = PendingMaster::bind(n_workers).map_err(|e| {
            FarmError::Setup(msgpass::CommError::Protocol(format!("bind failed: {e}")))
        })?;
        let addr = pending.addr();
        let size = n_workers + 1;
        let mut children: Vec<Child> = Vec::with_capacity(n_workers);
        for rank in 1..=n_workers {
            match spawn_tcp_worker(exe, addr, rank, size, worker_fault_arg(opts.fault, rank)) {
                Ok(c) => children.push(c),
                Err(e) => {
                    for mut c in children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    return Err(e);
                }
            }
        }
        let (master_ep, port) = match pending.accept_all_keep() {
            Ok(pair) => pair,
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(FarmError::Setup(e));
            }
        };
        let (master, master_stats) = Instrumented::new(master_ep);
        let cfg = opts.master;
        let respawn_allowed = matches!(cfg.recovery, RecoveryPolicy::Requeue { respawn: true, .. });
        let comm_prev = master_stats.snapshot(0);
        Ok(Self {
            master: Some(master),
            master_stats,
            port,
            handled: vec![false; n_workers],
            children,
            respawns_left: if respawn_allowed {
                opts.respawn_limit
            } else {
                0
            },
            exe: exe.to_path_buf(),
            addr,
            size,
            config: cfg,
            epoch: Instant::now(),
            comm_prev,
            jobs_run: 0,
            closed: false,
        })
    }

    /// Jobs run to a report so far.
    pub fn jobs_run(&self) -> usize {
        self.jobs_run
    }

    /// Run one k-grid job on the resident subprocesses.  As with
    /// [`FarmPool::run_job`], everything in the report is per-job; the
    /// master-side comm snapshot is a delta against the previous job's
    /// baseline (subprocess workers keep their local telemetry to
    /// themselves — their wire-shipped tag-7 statistics still arrive).
    pub fn run_job(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
    ) -> Result<FarmReport, FarmError> {
        self.run_job_with(spec, policy, &JobControl::default())
    }

    /// [`TcpFarmPool::run_job`] under external [`JobControl`] — the
    /// process-pool analogue of [`FarmPool::run_job_with`].
    pub fn run_job_with(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
    ) -> Result<FarmReport, FarmError> {
        self.run_job_prefetched(spec, policy, ctrl, None)
    }

    /// [`TcpFarmPool::run_job_with`] with an ensemble prefetch hint —
    /// the process-pool analogue of [`FarmPool::run_job_prefetched`].
    pub fn run_job_prefetched(
        &mut self,
        spec: &RunSpec,
        policy: SchedulePolicy,
        ctrl: &JobControl<'_>,
        prefetch: Option<&RunSpec>,
    ) -> Result<FarmReport, FarmError> {
        let Some(master) = self.master.as_mut() else {
            return Err(FarmError::Protocol {
                rank: 0,
                detail: "pool already shut down".into(),
            });
        };
        let config = self.config;
        let epoch = self.epoch;
        let children = &mut self.children;
        let handled = &mut self.handled;
        let respawns_left = &mut self.respawns_left;
        let (exe, addr, size, port) = (&self.exe, self.addr, self.size, &self.port);
        let mut watch = || -> Vec<WorkerEvent> {
            watch_tcp_children(children, handled, respawns_left, exe, addr, size, port)
        };
        let outcome = master_job_session_prefetch(
            master,
            spec,
            policy,
            &config,
            &mut watch,
            epoch,
            SessionKind::Pooled,
            ctrl,
            prefetch,
        );
        let snap = self.master_stats.snapshot(0);
        let comm = snap.delta(&self.comm_prev);
        self.comm_prev = snap;
        let ledger = outcome?;
        self.jobs_run += 1;
        finish_report(ledger, vec![comm], Vec::new())
    }

    /// Stop every resident worker and wait for the subprocesses.
    pub fn shutdown(mut self) -> usize {
        self.close();
        self.jobs_run
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        if let Some(master) = self.master.as_mut() {
            for rank in 1..=self.children.len() {
                if !self.handled[rank - 1] {
                    let _ = master.send(rank, TAG_STOP, &[0.0]);
                }
            }
        }
        self.master = None;
        for c in self.children.iter_mut() {
            let _ = c.wait();
        }
    }
}

impl Drop for TcpFarmPool {
    fn drop(&mut self) {
        self.close();
    }
}
