//! Spectrum-as-a-service: a job front-end over a warm [`FarmPool`].
//!
//! A pooled farm turns "run the spectrum code" into "ask a resident
//! service for a spectrum", and once jobs are cheap to issue the same
//! k-grid gets requested twice.  [`SpectrumService`] closes that loop:
//! every request is keyed by the canonical job hash
//! ([`crate::protocol::job_hash`] — an FNV-1a over the exact tag-1 wire
//! bits of the [`RunSpec`], so two requests collide exactly when they
//! would broadcast identical job parameters) and looked up in a
//! content-addressed [`ResultCache`] before any worker is disturbed.  A
//! hit returns the stored response body — bit-for-bit the bytes the
//! first run produced, with hit/miss telemetry counted; a miss runs the
//! job on the pool, encodes the outputs into a flat real-vector body
//! ([`encode_spectrum_body`]), caches it, and also hands back the
//! per-job [`FarmReport`] for `run_report`-schema metrics export.
//!
//! The response body is a plain `Vec<f64>` rather than a struct so the
//! `plinger-serve` wire protocol (see `docs/PROTOCOL.md`) can ship it
//! unmodified in one length-prefixed frame, and so cached and fresh
//! responses are comparable by hashing the reals' bit patterns.
//!
//! Requests are served strictly in arrival order on the pool (the
//! chunked master scheduler already multiplexes each job's modes over
//! every worker); concurrency lives one layer up, in the server bin,
//! which queues whole requests onto the single service behind a lock.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use boltzmann::ModeOutput;
use msgpass::{Tag, World};
use telemetry::log::{self as tlog, Level};
use telemetry::{Counter, Histogram, TelemetrySnapshot};

use crate::ensemble::{ensemble_hash, EnsembleDecodeError, EnsembleSpec};
use crate::error::{CancelReason, FarmError};
use crate::farm::FarmReport;
use crate::master::JobControl;
use crate::pool::FarmPool;
use crate::protocol::{hash_reals, job_hash, RunSpec, SpecDecodeError};
use crate::schedule::SchedulePolicy;

/// Tag 20, client → server: request one spectrum.  Two payload forms:
///
/// * legacy: the bare [`RunSpec`] tag-1 wire encoding
///   ([`RunSpec::encode`]), byte-compatible with the farm's own job
///   open (its first real is `nk ≥ 1`, so it is never negative);
/// * extended: `[-1.0, deadline_ms, …RunSpec::encode()]` — the leading
///   negative sentinel marks the framed form, and `deadline_ms` is the
///   client's *relative* time budget in milliseconds (`≤ 0` meaning
///   none; clocks differ, so the wire never carries an absolute time).
///
/// See [`SpectrumRequest`].  The deadline is *not* part of the job
/// identity: [`crate::protocol::job_hash`] covers the spec bits only,
/// so cache keys are deadline-independent.
pub const TAG_REQ_SPECTRUM: Tag = 20;
/// Tag 21, server → client: the spectrum response.  The payload is
/// `[hit_flag]` (1.0 when served from the [`ResultCache`], else 0.0)
/// followed by the [`encode_spectrum_body`] reals.
pub const TAG_RESP_SPECTRUM: Tag = 21;
/// Tag 22, client → server: request a whole parameter sweep.  Payload
/// forms mirror [`TAG_REQ_SPECTRUM`]:
///
/// * legacy: the bare [`EnsembleSpec`] wire encoding
///   ([`EnsembleSpec::encode`] — its first real is an axis count ≥ 1,
///   never negative);
/// * extended: `[-1.0, deadline_ms, …EnsembleSpec::encode()]` with the
///   deadline covering the *whole sweep* (relative milliseconds, `≤ 0`
///   meaning none).
///
/// The server answers with one [`TAG_RESP_SHARD`] frame per shard in
/// canonical shard order, then one [`TAG_RESP_ENSEMBLE`] summary — or a
/// [`TAG_RESP_ERROR`] at any point, which terminates the stream.
pub const TAG_REQ_ENSEMBLE: Tag = 22;
/// Tag 23, server → client: one finished shard of an ensemble request.
/// Payload: `[shard_index, n_shards, hit_flag, key_hi, key_lo,
/// …encode_spectrum_body reals]` where `hit_flag` is 1.0 for a
/// [`ResultCache`] hit and the shard's canonical job hash rides as two
/// exact 32-bit halves (`key_hi = key >> 32`, `key_lo = key & 0xffff_ffff`)
/// so no transport needs to preserve NaN bit patterns.
pub const TAG_RESP_SHARD: Tag = 23;
/// Tag 24, server → client: the ensemble stream terminator.  Payload:
/// `[n_ok, n_shards, wall_seconds, cache_hits]`.  Clients must tolerate
/// the vector growing.
pub const TAG_RESP_ENSEMBLE: Tag = 24;
/// Tag 25, client → server: request service counters (empty payload).
pub const TAG_REQ_METRICS: Tag = 25;
/// Tag 26, server → client: service counters, gauges, and latency
/// summaries as a real vector (see [`ServiceMetrics::wire_payload`] for
/// the layout).  The first five reals are the historical
/// `[requests, cache_hits, cache_misses, pool_jobs, workers]` payload;
/// clients must accept ≥ 5 reals so the vector can keep growing.
pub const TAG_RESP_METRICS: Tag = 26;
/// Tag 29, server → client: the request could not be served.  Two
/// payload forms:
///
/// * legacy: the UTF-8 error text, one byte per real (every real is a
///   byte value ≥ 0, so the first real is never negative);
/// * typed: `[-1.0, code, retry_after_ms, …UTF-8 text, one byte per
///   real]` — `code` is an [`ErrorCode`] discriminant and
///   `retry_after_ms` the server's backoff hint (0 when meaningless).
///
/// [`ServiceError::decode`] accepts both, so old clients keep working
/// against new servers and vice versa.
pub const TAG_RESP_ERROR: Tag = 29;

/// Render an error message as a legacy (untyped) [`TAG_RESP_ERROR`]
/// payload.
pub fn encode_error_text(msg: &str) -> Vec<f64> {
    msg.bytes().map(f64::from).collect()
}

/// Recover the error text of a legacy [`TAG_RESP_ERROR`] payload.
pub fn decode_error_text(data: &[f64]) -> String {
    data.iter().map(|&b| b as u8 as char).collect()
}

/// Machine-readable class of a [`TAG_RESP_ERROR`] reply.  The wire
/// discriminants are part of the protocol (docs/PROTOCOL.md §5) and
/// must never be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The admission queue is full; retry after the hinted backoff.
    Busy = 1,
    /// The request frame failed to decode.
    BadRequest = 2,
    /// The farm failed while running the job.
    Internal = 3,
    /// The server is draining and no longer accepts work.
    ShuttingDown = 4,
    /// The request's deadline expired before or during the job.
    DeadlineExceeded = 5,
    /// The job was cancelled cooperatively for another reason.
    Cancelled = 6,
}

impl ErrorCode {
    fn from_wire(code: f64) -> Option<Self> {
        match code as i64 {
            1 => Some(ErrorCode::Busy),
            2 => Some(ErrorCode::BadRequest),
            3 => Some(ErrorCode::Internal),
            4 => Some(ErrorCode::ShuttingDown),
            5 => Some(ErrorCode::DeadlineExceeded),
            6 => Some(ErrorCode::Cancelled),
            _ => None,
        }
    }

    /// Kebab-case name, used in logs and client-facing messages.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::Internal => "internal",
            ErrorCode::ShuttingDown => "shutting-down",
            ErrorCode::DeadlineExceeded => "deadline-exceeded",
            ErrorCode::Cancelled => "cancelled",
        }
    }
}

/// A typed [`TAG_RESP_ERROR`] frame: an [`ErrorCode`], an optional
/// retry hint, and the human-readable text.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Machine-readable class.
    pub code: ErrorCode,
    /// Server's suggested minimum backoff before retrying, ms (0 when
    /// retrying is pointless or the server has no opinion).
    pub retry_after_ms: u64,
    /// Human-readable diagnostic.
    pub message: String,
}

impl ServiceError {
    /// A frame with no retry hint.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            retry_after_ms: 0,
            message: message.into(),
        }
    }

    /// The typed wire form: `[-1.0, code, retry_after_ms, …text]`.
    pub fn encode(&self) -> Vec<f64> {
        let mut v = vec![-1.0, self.code as i64 as f64, self.retry_after_ms as f64];
        v.extend(self.message.bytes().map(f64::from));
        v
    }

    /// Decode a [`TAG_RESP_ERROR`] payload of either form.  Legacy
    /// plain-text frames (first real ≥ 0) decode with
    /// [`ErrorCode::Internal`] and no retry hint; a typed frame with an
    /// unknown code also falls back to `Internal` so new codes degrade
    /// gracefully on old clients.
    pub fn decode(data: &[f64]) -> Self {
        if data.first().is_some_and(|&v| v < 0.0) && data.len() >= 3 {
            let code = ErrorCode::from_wire(data[1]).unwrap_or(ErrorCode::Internal);
            let retry_after_ms = data[2].max(0.0) as u64;
            return Self {
                code,
                retry_after_ms,
                message: decode_error_text(&data[3..]),
            };
        }
        Self::new(ErrorCode::Internal, decode_error_text(data))
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.name(), self.message)?;
        if self.retry_after_ms > 0 {
            write!(f, " (retry after {} ms)", self.retry_after_ms)?;
        }
        Ok(())
    }
}

/// One tag-20 request: the job spec plus an optional relative deadline.
#[derive(Debug, Clone)]
pub struct SpectrumRequest {
    /// The job parameters (the cache key covers exactly these bits).
    pub spec: RunSpec,
    /// Client's time budget in milliseconds, measured from server
    /// accept; `None` means run to completion.
    pub deadline_ms: Option<f64>,
}

impl SpectrumRequest {
    /// A request with no deadline.
    pub fn new(spec: RunSpec) -> Self {
        Self {
            spec,
            deadline_ms: None,
        }
    }

    /// Encode for the wire: the bare spec when there is no deadline
    /// (legacy form — old servers keep working), the `-1.0`-framed
    /// extended form otherwise.
    pub fn encode(&self) -> Vec<f64> {
        match self.deadline_ms {
            None => self.spec.encode(),
            Some(ms) => {
                let mut v = vec![-1.0, ms];
                v.extend(self.spec.encode());
                v
            }
        }
    }

    /// Decode either form.  A non-positive deadline in the extended
    /// form decodes as `None`.
    pub fn decode(data: &[f64]) -> Result<Self, SpecDecodeError> {
        if data.first().is_some_and(|&v| v < 0.0) {
            if data.len() < 2 {
                return Err(SpecDecodeError::TooShort { got: data.len() });
            }
            let ms = data[1];
            return Ok(Self {
                spec: RunSpec::decode(&data[2..])?,
                deadline_ms: (ms > 0.0).then_some(ms),
            });
        }
        Ok(Self::new(RunSpec::decode(data)?))
    }
}

/// One tag-22 request: a whole sweep plus an optional relative deadline
/// covering all of it.
#[derive(Debug, Clone)]
pub struct EnsembleRequest {
    /// The sweep (axes + base spec).  Each shard's cache key is its own
    /// [`crate::ensemble::EnsembleSpec::shard_hash`], shared with
    /// single-spectrum requests for the same cosmology.
    pub ens: EnsembleSpec,
    /// Client's time budget for the whole sweep in milliseconds,
    /// measured from server accept; `None` means run to completion.
    pub deadline_ms: Option<f64>,
}

impl EnsembleRequest {
    /// A request with no deadline.
    pub fn new(ens: EnsembleSpec) -> Self {
        Self {
            ens,
            deadline_ms: None,
        }
    }

    /// Encode for the wire: the bare ensemble when there is no deadline,
    /// the `-1.0`-framed extended form otherwise (mirrors
    /// [`SpectrumRequest::encode`]).
    pub fn encode(&self) -> Vec<f64> {
        match self.deadline_ms {
            None => self.ens.encode(),
            Some(ms) => {
                let mut v = vec![-1.0, ms];
                v.extend(self.ens.encode());
                v
            }
        }
    }

    /// Decode either form.  A non-positive deadline in the extended form
    /// decodes as `None`.
    pub fn decode(data: &[f64]) -> Result<Self, EnsembleDecodeError> {
        if data.first().is_some_and(|&v| v < 0.0) {
            if data.len() < 2 {
                return Err(EnsembleDecodeError::TooShort { got: data.len() });
            }
            let ms = data[1];
            return Ok(Self {
                ens: EnsembleSpec::decode(&data[2..])?,
                deadline_ms: (ms > 0.0).then_some(ms),
            });
        }
        Ok(Self::new(EnsembleSpec::decode(data)?))
    }
}

/// Split a 64-bit key into two exactly-representable reals for the
/// tag-23 shard frame (`[hi, lo]` 32-bit halves).
pub fn key_to_reals(key: u64) -> [f64; 2] {
    [(key >> 32) as f64, (key & 0xffff_ffff) as f64]
}

/// Inverse of [`key_to_reals`].
pub fn key_from_reals(hi: f64, lo: f64) -> u64 {
    ((hi as u64) << 32) | (lo as u64 & 0xffff_ffff)
}

/// Content-addressed store of finished response bodies, keyed by the
/// canonical job hash.
///
/// Values are `Arc`ed so a hit hands out the original allocation — a
/// repeated request cannot differ from the first response even in
/// principle.  The hit/miss counters are the cache's telemetry
/// (exported per-request by `plinger-serve` and asserted by the CI
/// smoke test).
///
/// With [`ResultCache::with_dir`] the cache gains a crash-safe disk
/// tier: every insert is also written as one checksummed file per
/// `job_hash` (`spec_<key:016x>.bin`, temp + atomic rename), and a
/// fresh cache warm-loads the directory at startup, discarding corrupt
/// or truncated entries.  Bodies store exact `f64` bit patterns, so a
/// hit after restart is bitwise-identical to the original response.
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<u64, Arc<Vec<f64>>>,
    hits: u64,
    misses: u64,
    dir: Option<PathBuf>,
    persist_writes: u64,
    persist_loads: u64,
    persist_discards: u64,
}

/// First word of a persisted cache entry ("PLNGRSLT" in ASCII).
const CACHE_MAGIC: u64 = u64::from_le_bytes(*b"PLNGRSLT");

/// Layout of one persisted entry: header `[magic, key, len, checksum]`
/// as little-endian u64 words, then `len` f64 payload words (LE bit
/// patterns).  The checksum is [`hash_reals`] over the payload — the
/// same canonical FNV-1a the job key itself uses.
const CACHE_HEADER_WORDS: usize = 4;

fn cache_entry_name(key: u64) -> String {
    format!("spec_{key:016x}.bin")
}

/// Parse and validate one persisted entry; `None` means corrupt.
fn decode_cache_entry(key: u64, bytes: &[u8]) -> Option<Vec<f64>> {
    if bytes.len() < CACHE_HEADER_WORDS * 8 || !bytes.len().is_multiple_of(8) {
        return None;
    }
    let word = |i: usize| {
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
        u64::from_le_bytes(w)
    };
    if word(0) != CACHE_MAGIC || word(1) != key {
        return None;
    }
    let len = word(2) as usize;
    if bytes.len() != (CACHE_HEADER_WORDS + len) * 8 {
        return None;
    }
    let body: Vec<f64> = bytes[CACHE_HEADER_WORDS * 8..]
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
        .collect();
    (hash_reals(&body) == word(3)).then_some(body)
}

fn encode_cache_entry(key: u64, body: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity((CACHE_HEADER_WORDS + body.len()) * 8);
    for w in [CACHE_MAGIC, key, body.len() as u64, hash_reals(body)] {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    for v in body {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

impl ResultCache {
    /// An empty, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache backed by `dir`: existing entries are warm-loaded (and
    /// corrupt ones deleted), future inserts are written through.  The
    /// directory is created if missing.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut cache = Self {
            dir: Some(dir.clone()),
            ..Self::default()
        };
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(key) = name
                .strip_prefix("spec_")
                .and_then(|n| n.strip_suffix(".bin"))
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            else {
                // stray files (including orphaned temp files from a
                // crash mid-write) are removed, not loaded
                if name.starts_with(".tmp_") {
                    let _ = std::fs::remove_file(&path);
                }
                continue;
            };
            match std::fs::read(&path)
                .ok()
                .and_then(|b| decode_cache_entry(key, &b))
            {
                Some(body) => {
                    cache.entries.insert(key, Arc::new(body));
                    cache.persist_loads += 1;
                }
                None => {
                    // corrupt or truncated: discard so it can never be
                    // served, and count the discard as evidence
                    let _ = std::fs::remove_file(&path);
                    cache.persist_discards += 1;
                    tlog::log(
                        Level::Warn,
                        "service",
                        "cache_persist_discard",
                        &[("job", tlog::job_hex(key))],
                    );
                }
            }
        }
        Ok(cache)
    }

    /// Look up `key`, counting the outcome as a hit or a miss.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<Vec<f64>>> {
        match self.entries.get(&key) {
            Some(body) => {
                self.hits += 1;
                Some(Arc::clone(body))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store the body for `key` (last write wins; in practice the key
    /// is content-derived, so a rewrite stores identical bits).  With a
    /// disk tier the entry is also persisted via temp file + atomic
    /// rename, so a crash mid-write can never leave a half-entry under
    /// the real name.  Returns `true` when a disk write completed (a
    /// failed write keeps the in-memory entry and is only logged — the
    /// disk tier is an optimization, not a correctness dependency).
    pub fn insert(&mut self, key: u64, body: Arc<Vec<f64>>) -> bool {
        let persisted = match &self.dir {
            Some(dir) => {
                let tmp = dir.join(format!(".tmp_{key:016x}_{}", std::process::id()));
                let dest = dir.join(cache_entry_name(key));
                let write = std::fs::write(&tmp, encode_cache_entry(key, &body))
                    .and_then(|()| std::fs::rename(&tmp, &dest));
                match write {
                    Ok(()) => {
                        self.persist_writes += 1;
                        true
                    }
                    Err(e) => {
                        let _ = std::fs::remove_file(&tmp);
                        tlog::log(
                            Level::Warn,
                            "service",
                            "cache_persist_error",
                            &[("job", tlog::job_hex(key)), ("error", e.to_string())],
                        );
                        false
                    }
                }
            }
            None => false,
        };
        self.entries.insert(key, body);
        persisted
    }

    /// Whether `key` is stored, *without* counting a hit or a miss —
    /// the ensemble planner's probe for "which shards still need a pool
    /// job", which must not skew the request-path hit/miss telemetry.
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Distinct results stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from the store.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a pool job.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries written through to the disk tier this session.
    pub fn persist_writes(&self) -> u64 {
        self.persist_writes
    }

    /// Entries warm-loaded from the disk tier at startup.
    pub fn persist_loads(&self) -> u64 {
        self.persist_loads
    }

    /// Corrupt/truncated disk entries discarded at startup.
    pub fn persist_discards(&self) -> u64 {
        self.persist_discards
    }
}

/// Live service-level telemetry, shared between the request path and
/// any number of scrapers.
///
/// Everything here is lock-free (relaxed atomics) except the folded
/// per-job communication aggregate, which takes a short mutex once per
/// pool job — so `/metrics` and `/healthz` can be answered while a job
/// is running *without* touching the service's request lock.  The
/// metric names produced by [`ServiceMetrics::snapshot`] are a
/// stability contract, catalogued in `docs/OBSERVABILITY.md`.
#[derive(Default)]
pub struct ServiceMetrics {
    /// Requests accepted (hits and misses both count).
    pub requests: Counter,
    /// Requests answered from the [`ResultCache`].
    pub cache_hits: Counter,
    /// Requests that fell through to a pool job.
    pub cache_misses: Counter,
    /// Response-body bytes served (8 × reals, cached or fresh).
    pub cache_bytes_served: Counter,
    /// Requests that ended in a [`TAG_RESP_ERROR`].
    pub errors: Counter,
    /// Pool jobs run on behalf of requests.
    pub pool_jobs: Counter,
    /// Requests whose spec selected the line-of-sight method (hits and
    /// misses both count).
    pub los_jobs: Counter,
    /// Requests rejected at admission because the queue was over its
    /// limit (answered with a typed `Busy` frame).
    pub requests_shed: Counter,
    /// Pool jobs aborted cooperatively via tag-12 (any reason).
    pub jobs_cancelled: Counter,
    /// Requests that failed because their deadline passed — before the
    /// job started or mid-run (a subset also counts in
    /// `jobs_cancelled` when a running job was interrupted).
    pub deadline_expired: Counter,
    /// Ensemble (tag-22) requests accepted.
    pub ensemble_requests: Counter,
    /// Shards completed across all ensemble requests (hits and pool
    /// runs both count).
    pub ensemble_shards: Counter,
    /// Ensemble shards answered from the [`ResultCache`] without a pool
    /// job.
    pub ensemble_shard_hits: Counter,
    /// Result-cache entries written through to the disk tier.
    pub cache_persist_writes: Counter,
    /// Result-cache entries warm-loaded from disk at startup.
    pub cache_persist_loads: Counter,
    /// Corrupt/truncated disk-cache entries discarded at startup.
    pub cache_persist_discards: Counter,
    /// Time from request accept to service-lock acquisition, ns.
    pub queue_wait_ns: Histogram,
    /// Time inside the service (cache probe + any pool job), ns.
    pub run_ns: Histogram,
    /// Accept-to-reply wall time, ns.
    pub total_ns: Histogram,
    /// Requests currently accepted but not yet replied to.
    queue_depth: AtomicU64,
    /// Resident workers whose session thread is running (refreshed
    /// after every job; starts at the pool size).
    workers_alive: AtomicU64,
    /// 1 while the server is draining (stopped accepting, finishing
    /// its queue), else 0.  `/healthz` flips to not-ready on it.
    draining: AtomicU64,
    /// Per-job farm communication telemetry, folded after each miss.
    comm: Mutex<TelemetrySnapshot>,
}

impl ServiceMetrics {
    /// Fresh metrics reporting `workers` resident workers.
    pub fn new(workers: usize) -> Self {
        let m = Self::default();
        m.workers_alive.store(workers as u64, Ordering::Relaxed);
        m
    }

    /// Count a request into the queue; returns the new depth.
    pub fn enter_queue(&self) -> u64 {
        self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Remove a finished (or failed) request from the queue.
    pub fn leave_queue(&self) {
        // saturating: a stray call must not wrap the gauge to 2^64
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Requests currently in flight.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Record the current count of live resident workers.
    pub fn set_workers_alive(&self, n: usize) {
        self.workers_alive.store(n as u64, Ordering::Relaxed);
    }

    /// Live resident workers as last reported.
    pub fn workers_alive(&self) -> u64 {
        self.workers_alive.load(Ordering::Relaxed)
    }

    /// Flip the draining state (set once at drain start).
    pub fn set_draining(&self, draining: bool) {
        self.draining.store(draining as u64, Ordering::Relaxed);
    }

    /// True while the server is draining.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed) != 0
    }

    /// Fold one pool job's communication telemetry into the aggregate
    /// exposed on `/metrics` (counters add, histograms merge).
    pub fn fold_comm(&self, snap: TelemetrySnapshot) {
        if let Ok(mut agg) = self.comm.lock() {
            agg.merge(snap);
        }
    }

    /// The current readings as one [`TelemetrySnapshot`] — service
    /// counters/gauges/latency histograms plus the folded farm
    /// communication aggregate.  Names here are the `/metrics` contract.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = match self.comm.lock() {
            Ok(agg) => agg.clone(),
            Err(_) => TelemetrySnapshot::default(),
        };
        s.add("requests_total", self.requests.get());
        s.add("cache_hits_total", self.cache_hits.get());
        s.add("cache_misses_total", self.cache_misses.get());
        s.add("cache_bytes_served_total", self.cache_bytes_served.get());
        s.add("errors_total", self.errors.get());
        s.add("pool_jobs_total", self.pool_jobs.get());
        s.add("los_jobs_total", self.los_jobs.get());
        s.add("requests_shed_total", self.requests_shed.get());
        s.add("jobs_cancelled_total", self.jobs_cancelled.get());
        s.add("deadline_expired_total", self.deadline_expired.get());
        s.add("ensemble_requests_total", self.ensemble_requests.get());
        s.add("ensemble_shards_total", self.ensemble_shards.get());
        s.add("ensemble_shard_hits_total", self.ensemble_shard_hits.get());
        s.add(
            "cache_persist_writes_total",
            self.cache_persist_writes.get(),
        );
        s.add("cache_persist_loads_total", self.cache_persist_loads.get());
        s.add(
            "cache_persist_discards_total",
            self.cache_persist_discards.get(),
        );
        s.gauges
            .insert("queue_depth".into(), self.queue_depth() as f64);
        s.gauges
            .insert("workers_alive".into(), self.workers_alive() as f64);
        s.gauges
            .insert("draining".into(), self.draining() as u64 as f64);
        s.histograms.insert(
            "request_queue_wait_ns".into(),
            self.queue_wait_ns.snapshot(),
        );
        s.histograms
            .insert("request_run_ns".into(), self.run_ns.snapshot());
        s.histograms
            .insert("request_total_ns".into(), self.total_ns.snapshot());
        s
    }

    /// The [`TAG_RESP_METRICS`] payload: the historical five counters
    /// first (`requests, cache_hits, cache_misses, pool_jobs, workers`),
    /// then gauges and latency summaries —
    /// `[.., workers_alive, queue_depth, errors, cache_bytes_served,
    /// total_ms_p50, total_ms_p99, queue_ms_p50, queue_ms_p99,
    /// run_ms_p50, run_ms_p99, ensemble_requests, ensemble_shards,
    /// ensemble_shard_hits]` (18 reals; milliseconds for the latency
    /// entries).  Clients must tolerate further growth.
    pub fn wire_payload(&self, workers: usize) -> Vec<f64> {
        let ms = |ns: u64| ns as f64 / 1e6;
        let total = self.total_ns.snapshot();
        let queue = self.queue_wait_ns.snapshot();
        let run = self.run_ns.snapshot();
        vec![
            self.requests.get() as f64,
            self.cache_hits.get() as f64,
            self.cache_misses.get() as f64,
            self.pool_jobs.get() as f64,
            workers as f64,
            self.workers_alive() as f64,
            self.queue_depth() as f64,
            self.errors.get() as f64,
            self.cache_bytes_served.get() as f64,
            ms(total.quantile(0.5)),
            ms(total.quantile(0.99)),
            ms(queue.quantile(0.5)),
            ms(queue.quantile(0.99)),
            ms(run.quantile(0.5)),
            ms(run.quantile(0.99)),
            self.ensemble_requests.get() as f64,
            self.ensemble_shards.get() as f64,
            self.ensemble_shard_hits.get() as f64,
        ]
    }
}

/// One answered request: where the body came from and, on a miss, the
/// job's full report for metrics export.
#[derive(Debug)]
pub struct ServiceReply {
    /// Canonical job hash the request was keyed under.
    pub key: u64,
    /// True when the body came from the [`ResultCache`] (no pool job
    /// ran, no worker spans exist for this request).
    pub cache_hit: bool,
    /// The response body (see [`encode_spectrum_body`] for the layout).
    pub body: Arc<Vec<f64>>,
    /// The per-job [`FarmReport`] of the pool run that produced the
    /// body — `None` on a cache hit, which did no work worth reporting.
    pub report: Option<FarmReport>,
}

/// One finished shard of an ensemble request, as streamed to the
/// client in a [`TAG_RESP_SHARD`] frame.
#[derive(Debug, Clone)]
pub struct ShardReply {
    /// Canonical shard index.
    pub shard: usize,
    /// Total shards in the sweep (every frame repeats it so a client
    /// can size its progress display from the first frame).
    pub n_shards: usize,
    /// The shard's canonical job hash (its [`ResultCache`] key).
    pub key: u64,
    /// True when the body came from the cache (no pool job ran).
    pub cache_hit: bool,
    /// The shard's response body ([`encode_spectrum_body`] layout —
    /// identical to what a single-spectrum request for the same
    /// cosmology would return).
    pub body: Arc<Vec<f64>>,
}

impl ShardReply {
    /// The [`TAG_RESP_SHARD`] payload:
    /// `[shard, n_shards, hit_flag, key_hi, key_lo, …body]`.
    pub fn frame(&self) -> Vec<f64> {
        let [hi, lo] = key_to_reals(self.key);
        let mut v = Vec::with_capacity(5 + self.body.len());
        v.extend_from_slice(&[
            self.shard as f64,
            self.n_shards as f64,
            f64::from(self.cache_hit),
            hi,
            lo,
        ]);
        v.extend_from_slice(&self.body);
        v
    }

    /// Decode a [`TAG_RESP_SHARD`] payload.
    pub fn decode_frame(data: &[f64]) -> Result<Self, String> {
        if data.len() < 5 {
            return Err(format!("shard frame too short: {} reals", data.len()));
        }
        Ok(Self {
            shard: data[0] as usize,
            n_shards: data[1] as usize,
            cache_hit: data[2] != 0.0,
            key: key_from_reals(data[3], data[4]),
            body: Arc::new(data[5..].to_vec()),
        })
    }
}

/// The terminating [`TAG_RESP_ENSEMBLE`] summary of an ensemble stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleSummary {
    /// Shards answered (equals `n_shards` on success).
    pub n_ok: usize,
    /// Total shards in the sweep.
    pub n_shards: usize,
    /// Wall-clock seconds the server spent on the sweep.
    pub wall_seconds: f64,
    /// Shards served from the [`ResultCache`].
    pub cache_hits: usize,
}

impl EnsembleSummary {
    /// The wire payload: `[n_ok, n_shards, wall_seconds, cache_hits]`.
    pub fn frame(&self) -> Vec<f64> {
        vec![
            self.n_ok as f64,
            self.n_shards as f64,
            self.wall_seconds,
            self.cache_hits as f64,
        ]
    }

    /// Decode a [`TAG_RESP_ENSEMBLE`] payload (tolerates growth).
    pub fn decode_frame(data: &[f64]) -> Result<Self, String> {
        if data.len() < 4 {
            return Err(format!("ensemble summary too short: {} reals", data.len()));
        }
        Ok(Self {
            n_ok: data[0] as usize,
            n_shards: data[1] as usize,
            wall_seconds: data[2],
            cache_hits: data[3] as usize,
        })
    }
}

/// A resident spectrum service: one warm [`FarmPool`] plus the
/// [`ResultCache`] in front of it.
pub struct SpectrumService<W: World> {
    pool: FarmPool<W>,
    cache: ResultCache,
    policy: SchedulePolicy,
    requests: u64,
    metrics: Arc<ServiceMetrics>,
}

impl<W: World> SpectrumService<W> {
    /// Wrap a running pool; `policy` schedules every job's k-grid.
    pub fn new(pool: FarmPool<W>, policy: SchedulePolicy) -> Self {
        Self::with_cache(pool, policy, ResultCache::new())
    }

    /// [`SpectrumService::new`] with a caller-built [`ResultCache`] —
    /// typically [`ResultCache::with_dir`] for the crash-safe disk
    /// tier.  The cache's warm-load counters are folded into the
    /// service metrics so `/metrics` shows what a restart recovered.
    pub fn with_cache(pool: FarmPool<W>, policy: SchedulePolicy, cache: ResultCache) -> Self {
        let metrics = Arc::new(ServiceMetrics::new(pool.n_workers()));
        metrics.cache_persist_loads.add(cache.persist_loads());
        metrics.cache_persist_discards.add(cache.persist_discards());
        Self {
            pool,
            cache,
            policy,
            requests: 0,
            metrics,
        }
    }

    /// Serve one spectrum request: cache lookup, then (on a miss) one
    /// pooled job.
    pub fn handle(&mut self, spec: &RunSpec) -> Result<ServiceReply, FarmError> {
        self.handle_with(spec, &JobControl::default())
    }

    /// [`SpectrumService::handle`] under external [`JobControl`].  A
    /// deadline that has already passed fails immediately with
    /// [`FarmError::Cancelled`] — no cache probe, no pool job; one that
    /// fires mid-job cancels the job cooperatively (tag-12) and frees
    /// the ranks for the next request.
    pub fn handle_with(
        &mut self,
        spec: &RunSpec,
        ctrl: &JobControl<'_>,
    ) -> Result<ServiceReply, FarmError> {
        self.requests += 1;
        self.metrics.requests.inc();
        if spec.method == boltzmann::SpectrumMethod::LineOfSight {
            self.metrics.los_jobs.inc();
        }
        let key = job_hash(spec);
        let job = tlog::job_hex(key);
        if let Some(reason) = ctrl.triggered() {
            // expired while queued: don't start work that is already
            // abandoned (the caller counts the error itself)
            if reason == CancelReason::DeadlineExceeded {
                self.metrics.deadline_expired.inc();
            }
            tlog::log(
                Level::Warn,
                "service",
                "request_expired",
                &[("job", job), ("reason", reason.to_string())],
            );
            return Err(FarmError::Cancelled {
                reason,
                unfinished: Vec::new(),
            });
        }
        if let Some(body) = self.cache.lookup(key) {
            self.metrics.cache_hits.inc();
            self.metrics.cache_bytes_served.add(body.len() as u64 * 8);
            tlog::log(Level::Info, "service", "cache_hit", &[("job", job)]);
            return Ok(ServiceReply {
                key,
                cache_hit: true,
                body,
                report: None,
            });
        }
        self.metrics.cache_misses.inc();
        tlog::log(Level::Info, "service", "cache_miss", &[("job", job)]);
        let outcome = self.pool.run_job_with(spec, self.policy, ctrl);
        self.metrics.set_workers_alive(self.pool.workers_alive());
        if let Err(FarmError::Cancelled { reason, .. }) = &outcome {
            self.metrics.jobs_cancelled.inc();
            if *reason == CancelReason::DeadlineExceeded {
                self.metrics.deadline_expired.inc();
            }
        }
        let report = outcome?;
        self.metrics.pool_jobs.inc();
        self.metrics
            .fold_comm(report.telemetry.merged_comm().to_telemetry());
        let body = Arc::new(encode_spectrum_body(&report.outputs, report.wall_seconds));
        self.metrics.cache_bytes_served.add(body.len() as u64 * 8);
        if self.cache.insert(key, Arc::clone(&body)) {
            self.metrics.cache_persist_writes.inc();
        }
        Ok(ServiceReply {
            key,
            cache_hit: false,
            body,
            report: Some(report),
        })
    }

    /// Serve a whole sweep through the cache, streaming each finished
    /// shard to `sink` in canonical shard order.
    ///
    /// Every shard is keyed by its own [`job_hash`], so shards already
    /// produced — by an earlier sweep *or* by single-spectrum requests
    /// for the same cosmology — are streamed from the cache without
    /// touching the pool, and every fresh shard becomes a cache entry
    /// that later single-spectrum requests hit.  Uncached shards run as
    /// ordinary pooled jobs with the next *uncached* shard as their
    /// tag-13 prefetch hint, so workers warm the next cosmology's
    /// physics tables while the current shard's tail chunks finish.
    ///
    /// A shard whose job fails is retried once (the inner
    /// requeue/respawn machinery already absorbed anything survivable;
    /// a second whole-job failure aborts the sweep).  Cancellation —
    /// deadline or explicit — aborts immediately with
    /// [`FarmError::Cancelled`]; shards already streamed stay cached,
    /// so a retried sweep resumes where the budget ran out.  A `sink`
    /// error (client gone) aborts the same way a farm error would.
    pub fn handle_ensemble_with<F>(
        &mut self,
        ens: &EnsembleSpec,
        ctrl: &JobControl<'_>,
        mut sink: F,
    ) -> Result<EnsembleSummary, FarmError>
    where
        F: FnMut(&ShardReply) -> Result<(), FarmError>,
    {
        let t0 = std::time::Instant::now();
        self.requests += 1;
        self.metrics.ensemble_requests.inc();
        let n = ens.n_shards();
        let sweep = ensemble_hash(ens);
        tlog::log(
            Level::Info,
            "service",
            "ensemble_accept",
            &[
                ("ensemble", tlog::job_hex(sweep)),
                ("shards", n.to_string()),
            ],
        );
        let keys: Vec<u64> = (0..n).map(|i| ens.shard_hash(i)).collect();
        let mut attempts = vec![0usize; n];
        let mut hits = 0usize;
        let mut i = 0usize;
        while i < n {
            if let Some(reason) = ctrl.triggered() {
                if reason == CancelReason::DeadlineExceeded {
                    self.metrics.deadline_expired.inc();
                }
                tlog::log(
                    Level::Warn,
                    "service",
                    "ensemble_expired",
                    &[
                        ("shard", tlog::shard_label(sweep, i)),
                        ("reason", reason.to_string()),
                    ],
                );
                return Err(FarmError::Cancelled {
                    reason,
                    unfinished: Vec::new(),
                });
            }
            let key = keys[i];
            attempts[i] += 1;
            if let Some(body) = self.cache.lookup(key) {
                hits += 1;
                self.metrics.ensemble_shards.inc();
                self.metrics.ensemble_shard_hits.inc();
                self.metrics.cache_bytes_served.add(body.len() as u64 * 8);
                tlog::log(
                    Level::Info,
                    "service",
                    "shard_hit",
                    &[
                        ("shard", tlog::shard_label(sweep, i)),
                        ("job", tlog::job_hex(key)),
                    ],
                );
                sink(&ShardReply {
                    shard: i,
                    n_shards: n,
                    key,
                    cache_hit: true,
                    body,
                })?;
                i += 1;
                continue;
            }
            let spec = ens.shard_spec(i);
            let prefetch = (i + 1..n)
                .find(|&j| !self.cache.contains(keys[j]))
                .map(|j| ens.shard_spec(j));
            tlog::log(
                Level::Info,
                "service",
                "shard_miss",
                &[
                    ("shard", tlog::shard_label(sweep, i)),
                    ("job", tlog::job_hex(key)),
                    ("attempt", attempts[i].to_string()),
                ],
            );
            let outcome = self
                .pool
                .run_job_prefetched(&spec, self.policy, ctrl, prefetch.as_ref());
            self.metrics.set_workers_alive(self.pool.workers_alive());
            match outcome {
                Ok(report) => {
                    self.metrics.pool_jobs.inc();
                    self.metrics.ensemble_shards.inc();
                    self.metrics
                        .fold_comm(report.telemetry.merged_comm().to_telemetry());
                    let body = Arc::new(encode_spectrum_body(&report.outputs, report.wall_seconds));
                    self.metrics.cache_bytes_served.add(body.len() as u64 * 8);
                    if self.cache.insert(key, Arc::clone(&body)) {
                        self.metrics.cache_persist_writes.inc();
                    }
                    sink(&ShardReply {
                        shard: i,
                        n_shards: n,
                        key,
                        cache_hit: false,
                        body,
                    })?;
                    i += 1;
                }
                Err(e @ FarmError::Cancelled { .. }) => {
                    self.metrics.jobs_cancelled.inc();
                    if let FarmError::Cancelled {
                        reason: CancelReason::DeadlineExceeded,
                        ..
                    } = &e
                    {
                        self.metrics.deadline_expired.inc();
                    }
                    return Err(e);
                }
                Err(e) if attempts[i] < 2 => {
                    tlog::log(
                        Level::Warn,
                        "service",
                        "shard_retry",
                        &[
                            ("shard", tlog::shard_label(sweep, i)),
                            ("job", tlog::job_hex(key)),
                            ("reason", e.to_string()),
                        ],
                    );
                }
                Err(e) => return Err(e),
            }
        }
        let summary = EnsembleSummary {
            n_ok: n,
            n_shards: n,
            wall_seconds: t0.elapsed().as_secs_f64(),
            cache_hits: hits,
        };
        tlog::log(
            Level::Info,
            "service",
            "ensemble_done",
            &[
                ("ensemble", tlog::job_hex(sweep)),
                ("shards", n.to_string()),
                ("hits", hits.to_string()),
                ("wall_ms", format!("{:.1}", summary.wall_seconds * 1000.0)),
            ],
        );
        Ok(summary)
    }

    /// Requests handled (hits and misses both count).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The shared live-metrics handle — clone it before locking the
    /// service away so scrapers never contend with running jobs.
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The cache's telemetry.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The pool underneath (e.g. to read `jobs_run`).
    pub fn pool(&self) -> &FarmPool<W> {
        &self.pool
    }

    /// Shut the pool down, returning the service's [`ResultCache`] so a
    /// caller can log final hit/miss totals.
    pub fn shutdown(self) -> ResultCache {
        let _ = self.pool.shutdown();
        self.cache
    }
}

/// Flatten a finished job into one real vector:
///
/// ```text
/// [ n_outputs, wall_seconds,
///   header_len, payload_len, header…, payload…,   // output 0
///   header_len, payload_len, header…, payload…,   // output 1
///   … ]
/// ```
///
/// Each output's header/payload pair is exactly its tag-4/tag-5 wire
/// encoding ([`ModeOutput::to_wire`], with `ik` the output's position),
/// so a body round-trips through [`decode_spectrum_body`] with the same
/// fidelity as the farm wire itself.
pub fn encode_spectrum_body(outputs: &[ModeOutput], wall_seconds: f64) -> Vec<f64> {
    let mut body = vec![outputs.len() as f64, wall_seconds];
    for (ik, out) in outputs.iter().enumerate() {
        let (header, payload) = out.to_wire(ik);
        body.push(header.len() as f64);
        body.push(payload.len() as f64);
        body.extend_from_slice(&header);
        body.extend_from_slice(&payload);
    }
    body
}

/// Inverse of [`encode_spectrum_body`].  Malformed bodies (truncated
/// frames, header/payload lengths that disagree with the declared
/// counts) are reported as a `String` rather than panicking, so a
/// corrupt service response fails one request, not the client.
pub fn decode_spectrum_body(body: &[f64]) -> Result<(Vec<ModeOutput>, f64), String> {
    if body.len() < 2 {
        return Err(format!("body too short: {} reals", body.len()));
    }
    let n = body[0] as usize;
    let wall_seconds = body[1];
    let mut outputs = Vec::with_capacity(n);
    let mut at = 2usize;
    for i in 0..n {
        let [hlen, plen] = *body
            .get(at..at + 2)
            .and_then(|s| <&[f64; 2]>::try_from(s).ok())
            .ok_or_else(|| format!("output {i}: truncated length prefix at {at}"))?;
        let (hlen, plen) = (hlen as usize, plen as usize);
        at += 2;
        let header = body
            .get(at..at + hlen)
            .ok_or_else(|| format!("output {i}: truncated header"))?;
        at += hlen;
        let payload = body
            .get(at..at + plen)
            .ok_or_else(|| format!("output {i}: truncated payload"))?;
        at += plen;
        let (_ik, out) =
            ModeOutput::from_wire(header, payload).map_err(|e| format!("output {i}: {e}"))?;
        outputs.push(out);
    }
    if at != body.len() {
        return Err(format!(
            "body has {} trailing reals after {n} outputs",
            body.len() - at
        ));
    }
    Ok((outputs, wall_seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::run_serial;
    use boltzmann::Preset;
    use msgpass::channel::ChannelWorld;

    fn tiny_spec(ks: Vec<f64>) -> RunSpec {
        let mut spec = RunSpec::standard_cdm(ks);
        spec.preset = Preset::Draft;
        spec
    }

    #[test]
    fn body_roundtrips_bitwise() {
        let spec = tiny_spec(vec![0.001, 0.02]);
        let (outputs, wall) = run_serial(&spec).unwrap();
        let body = encode_spectrum_body(&outputs, wall);
        let (back, wall_back) = decode_spectrum_body(&body).unwrap();
        assert_eq!(wall_back.to_bits(), wall.to_bits());
        assert_eq!(back.len(), outputs.len());
        for (a, b) in outputs.iter().zip(&back) {
            assert_eq!(a.k.to_bits(), b.k.to_bits());
            assert_eq!(a.delta_c.to_bits(), b.delta_c.to_bits());
            assert_eq!(a.delta_t.len(), b.delta_t.len());
            for (x, y) in a.delta_t.iter().zip(&b.delta_t) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        assert!(decode_spectrum_body(&[]).is_err());
        // claims one output but carries none
        assert!(decode_spectrum_body(&[1.0, 0.5]).is_err());
        let spec = tiny_spec(vec![0.001]);
        let (outputs, wall) = run_serial(&spec).unwrap();
        let mut body = encode_spectrum_body(&outputs, wall);
        body.pop();
        assert!(decode_spectrum_body(&body).is_err());
        // trailing garbage is rejected, not silently ignored
        let mut body = encode_spectrum_body(&outputs, wall);
        body.push(0.0);
        assert!(decode_spectrum_body(&body).is_err());
    }

    #[test]
    fn spectrum_request_roundtrips_both_forms() {
        let spec = tiny_spec(vec![0.001, 0.02]);
        // legacy: no deadline encodes as the bare spec
        let plain = SpectrumRequest::new(spec.clone());
        assert_eq!(plain.encode(), spec.encode());
        let plain_back = SpectrumRequest::decode(&plain.encode()).unwrap();
        assert_eq!(plain_back.encode(), plain.encode());
        assert_eq!(plain_back.deadline_ms, None);
        // extended: a deadline rides the -1.0-framed form
        let dl = SpectrumRequest {
            spec: spec.clone(),
            deadline_ms: Some(250.0),
        };
        let wire = dl.encode();
        assert_eq!(wire[0], -1.0);
        assert_eq!(wire[1], 250.0);
        let dl_back = SpectrumRequest::decode(&wire).unwrap();
        assert_eq!(dl_back.encode(), wire);
        assert_eq!(dl_back.deadline_ms, Some(250.0));
        // the deadline is not part of the job identity
        assert_eq!(job_hash(&dl.spec), job_hash(&plain.spec));
        // a non-positive deadline decodes as none
        let mut zero = vec![-1.0, 0.0];
        zero.extend(spec.encode());
        assert_eq!(SpectrumRequest::decode(&zero).unwrap().deadline_ms, None);
        // truncated extended frames are rejected, not panicked on
        assert!(SpectrumRequest::decode(&[-1.0]).is_err());
        assert!(SpectrumRequest::decode(&[-1.0, 100.0, 2.0]).is_err());
    }

    #[test]
    fn service_error_roundtrips_and_accepts_legacy_text() {
        let e = ServiceError {
            code: ErrorCode::Busy,
            retry_after_ms: 350,
            message: "queue full".into(),
        };
        let back = ServiceError::decode(&e.encode());
        assert_eq!(back, e);
        assert_eq!(back.to_string(), "busy: queue full (retry after 350 ms)");
        // legacy plain text decodes as Internal with no hint
        let legacy = ServiceError::decode(&encode_error_text("farm failed: boom"));
        assert_eq!(legacy.code, ErrorCode::Internal);
        assert_eq!(legacy.retry_after_ms, 0);
        assert_eq!(legacy.message, "farm failed: boom");
        // an unknown future code degrades to Internal, keeping the text
        let unknown = ServiceError::decode(&[-1.0, 99.0, 10.0, 104.0, 105.0]);
        assert_eq!(unknown.code, ErrorCode::Internal);
        assert_eq!(unknown.message, "hi");
    }

    #[test]
    fn disk_cache_survives_restart_bitwise_and_discards_corruption() {
        let dir = std::env::temp_dir().join(format!("plinger_cache_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let body = vec![1.5, -2.25, f64::MIN_POSITIVE, 0.1 + 0.2];
        {
            let mut cache = ResultCache::with_dir(&dir).unwrap();
            assert!(cache.insert(0xabcd, Arc::new(body.clone())));
            assert!(cache.insert(0x1234, Arc::new(vec![9.0])));
            assert_eq!(cache.persist_writes(), 2);
        }
        // corrupt one entry: flip a payload byte so the checksum fails
        let victim = dir.join(cache_entry_name(0x1234));
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, &bytes).unwrap();
        // and plant a truncated stray plus an orphaned temp file
        std::fs::write(dir.join(cache_entry_name(0x77)), b"short").unwrap();
        std::fs::write(dir.join(".tmp_dead_1"), b"partial").unwrap();

        let mut warm = ResultCache::with_dir(&dir).unwrap();
        assert_eq!(warm.persist_loads(), 1, "only the intact entry loads");
        assert_eq!(warm.persist_discards(), 2, "corrupt + truncated dropped");
        assert!(!victim.exists(), "corrupt file deleted");
        assert!(!dir.join(".tmp_dead_1").exists(), "orphaned temp removed");
        let hit = warm.lookup(0xabcd).expect("persisted entry survives");
        for (a, b) in hit.iter().zip(&body) {
            assert_eq!(a.to_bits(), b.to_bits(), "restart changed the bits");
        }
        assert!(warm.lookup(0x1234).is_none(), "corrupt entry never served");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = ResultCache::new();
        assert!(cache.lookup(7).is_none());
        cache.insert(7, Arc::new(vec![1.0, 2.0]));
        let hit = cache.lookup(7).unwrap();
        assert_eq!(*hit, vec![1.0, 2.0]);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn service_metrics_snapshot_and_wire_payload() {
        let m = ServiceMetrics::new(2);
        m.requests.add(3);
        m.cache_hits.inc();
        m.cache_misses.add(2);
        m.pool_jobs.add(2);
        m.errors.inc();
        m.total_ns.record(1_000_000);
        assert_eq!(m.enter_queue(), 1);

        let s = m.snapshot();
        assert_eq!(s.counter("requests_total"), 3);
        assert_eq!(s.counter("cache_hits_total"), 1);
        assert_eq!(s.counter("errors_total"), 1);
        assert_eq!(s.gauges["queue_depth"], 1.0);
        assert_eq!(s.gauges["workers_alive"], 2.0);
        assert_eq!(s.histograms["request_total_ns"].count, 1);

        m.leave_queue();
        m.leave_queue(); // a stray extra leave must not wrap the gauge
        assert_eq!(m.queue_depth(), 0);

        let wire = m.wire_payload(2);
        assert_eq!(wire.len(), 18);
        assert_eq!(&wire[..5], &[3.0, 1.0, 2.0, 2.0, 2.0]);
        // total_ms_p50 reflects the single 1 ms sample (log-bucket
        // resolution: within a factor of 2)
        assert!(wire[9] > 0.5 && wire[9] < 2.1, "p50 {} ms", wire[9]);
    }

    #[test]
    fn service_counts_into_shared_metrics() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let metrics = svc.metrics();
        let spec = tiny_spec(vec![0.001, 0.02]);
        svc.handle(&spec).unwrap();
        svc.handle(&spec).unwrap();
        assert_eq!(metrics.requests.get(), 2);
        assert_eq!(metrics.cache_hits.get(), 1);
        assert_eq!(metrics.cache_misses.get(), 1);
        assert_eq!(metrics.pool_jobs.get(), 1);
        assert_eq!(metrics.workers_alive(), 2);
        assert!(metrics.cache_bytes_served.get() > 0);
        // the folded farm comm aggregate reaches the snapshot
        let s = metrics.snapshot();
        assert!(s.counter("msgs_sent") > 0);
        let _ = svc.shutdown();
    }

    #[test]
    fn service_serves_los_requests_bitwise_and_counts_them() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let metrics = svc.metrics();
        let mut spec = tiny_spec(vec![0.001, 0.004, 0.02]);
        spec.method = boltzmann::SpectrumMethod::LineOfSight;

        let reply = svc.handle(&spec).unwrap();
        assert!(!reply.cache_hit);
        // the reply body decodes to the serial LOS answer, source
        // extension included, bit for bit
        let (serial, _) = run_serial(&spec).unwrap();
        let (decoded, _) = decode_spectrum_body(&reply.body).unwrap();
        assert_eq!(decoded.len(), serial.len());
        for (d, s) in decoded.iter().zip(&serial) {
            assert_eq!(d.sources, s.sources, "sources must survive the body");
            for (a, b) in d.delta_t.iter().zip(&s.delta_t) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // the same spec hits the cache; both requests count as LOS
        let second = svc.handle(&spec).unwrap();
        assert!(second.cache_hit);
        assert_eq!(metrics.los_jobs.get(), 2);

        // a full-hierarchy request is a different key and not LOS
        let full = tiny_spec(vec![0.001, 0.004, 0.02]);
        let other = svc.handle(&full).unwrap();
        assert!(!other.cache_hit);
        assert_ne!(other.key, reply.key);
        assert_eq!(metrics.los_jobs.get(), 2);
        let _ = svc.shutdown();
    }

    #[test]
    fn ensemble_request_and_frames_roundtrip() {
        let ens = EnsembleSpec {
            base: tiny_spec(vec![0.001, 0.02]),
            omega_b: vec![0.04, 0.06],
            h: vec![0.5],
            n_s: vec![1.0],
        };
        // legacy form: the bare ensemble encoding
        let plain = EnsembleRequest::new(ens.clone());
        assert_eq!(plain.encode(), ens.encode());
        let back = EnsembleRequest::decode(&plain.encode()).unwrap();
        assert_eq!(back.ens, ens);
        assert_eq!(back.deadline_ms, None);
        // extended form carries a sweep-wide deadline
        let dl = EnsembleRequest {
            ens: ens.clone(),
            deadline_ms: Some(1500.0),
        };
        let wire = dl.encode();
        assert_eq!(wire[0], -1.0);
        let dl_back = EnsembleRequest::decode(&wire).unwrap();
        assert_eq!(dl_back.deadline_ms, Some(1500.0));
        assert_eq!(dl_back.ens, ens);
        assert!(EnsembleRequest::decode(&[-1.0]).is_err());

        // 64-bit keys survive the two-real split exactly
        for key in [0u64, 1, u64::MAX, 0xdead_beef_cafe_f00d] {
            let [hi, lo] = key_to_reals(key);
            assert_eq!(key_from_reals(hi, lo), key);
        }
        let reply = ShardReply {
            shard: 3,
            n_shards: 12,
            key: 0xfeed_face_0123_4567,
            cache_hit: true,
            body: Arc::new(vec![2.0, 0.25, -1.5]),
        };
        let frame = reply.frame();
        let back = ShardReply::decode_frame(&frame).unwrap();
        assert_eq!(back.shard, 3);
        assert_eq!(back.n_shards, 12);
        assert_eq!(back.key, reply.key);
        assert!(back.cache_hit);
        assert_eq!(*back.body, *reply.body);
        assert!(ShardReply::decode_frame(&frame[..4]).is_err());

        let summary = EnsembleSummary {
            n_ok: 12,
            n_shards: 12,
            wall_seconds: 1.25,
            cache_hits: 5,
        };
        assert_eq!(
            EnsembleSummary::decode_frame(&summary.frame()).unwrap(),
            summary
        );
        assert!(EnsembleSummary::decode_frame(&[1.0]).is_err());
    }

    #[test]
    fn ensemble_streams_shards_and_shares_the_spectrum_cache() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let metrics = svc.metrics();
        let ens = EnsembleSpec {
            base: tiny_spec(vec![0.001, 0.02]),
            omega_b: vec![0.04, 0.06],
            h: vec![0.5, 0.7],
            n_s: vec![1.0],
        };
        let n = ens.n_shards();

        // pre-warm one shard through the ordinary spectrum path: the
        // sweep must treat it as already done
        let warm = svc.handle(&ens.shard_spec(2)).unwrap();
        assert!(!warm.cache_hit);

        let mut frames: Vec<ShardReply> = Vec::new();
        let summary = svc
            .handle_ensemble_with(&ens, &JobControl::default(), |r| {
                frames.push(r.clone());
                Ok(())
            })
            .unwrap();
        assert_eq!(summary.n_ok, n);
        assert_eq!(summary.cache_hits, 1, "the pre-warmed shard hit");
        assert_eq!(frames.len(), n);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.shard, i, "canonical order");
            assert_eq!(f.n_shards, n);
            assert_eq!(f.key, ens.shard_hash(i));
            assert_eq!(f.cache_hit, i == 2);
            // each shard's body is bitwise the serial answer
            let (serial, _) = run_serial(&ens.shard_spec(i)).unwrap();
            let (decoded, _) = decode_spectrum_body(&f.body).unwrap();
            assert_eq!(decoded.len(), serial.len());
            for (d, s) in decoded.iter().zip(&serial) {
                assert_eq!(d.delta_c.to_bits(), s.delta_c.to_bits());
            }
        }
        assert_eq!(metrics.ensemble_requests.get(), 1);
        assert_eq!(metrics.ensemble_shards.get(), n as u64);
        assert_eq!(metrics.ensemble_shard_hits.get(), 1);

        // the whole sweep repeats from the cache: no new pool jobs
        let jobs_before = svc.pool().jobs_run();
        let mut rerun = 0usize;
        let again = svc
            .handle_ensemble_with(&ens, &JobControl::default(), |r| {
                assert!(r.cache_hit);
                rerun += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(again.cache_hits, n);
        assert_eq!(rerun, n);
        assert_eq!(svc.pool().jobs_run(), jobs_before);

        // and a single-spectrum request for a swept cosmology hits too
        let cross = svc.handle(&ens.shard_spec(3)).unwrap();
        assert!(cross.cache_hit);
        let _ = svc.shutdown();
    }

    #[test]
    fn ensemble_sink_error_aborts_the_sweep() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let ens = EnsembleSpec {
            base: tiny_spec(vec![0.001]),
            omega_b: vec![0.04, 0.06],
            h: vec![0.5],
            n_s: vec![1.0],
        };
        let mut served = 0usize;
        let out = svc.handle_ensemble_with(&ens, &JobControl::default(), |_| {
            served += 1;
            Err(FarmError::Protocol {
                rank: 0,
                detail: "client hung up".into(),
            })
        });
        assert!(matches!(out, Err(FarmError::Protocol { .. })));
        assert_eq!(served, 1, "the first frame's failure stops the stream");
        let _ = svc.shutdown();
    }

    #[test]
    fn service_serves_second_identical_request_from_cache() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let spec = tiny_spec(vec![0.001, 0.004, 0.02]);

        let first = svc.handle(&spec).unwrap();
        assert!(!first.cache_hit);
        let rep = first.report.as_ref().unwrap();
        assert_eq!(rep.outputs.len(), 3);

        let second = svc.handle(&spec).unwrap();
        assert!(second.cache_hit);
        assert!(second.report.is_none());
        // the literal same allocation: bitwise equality is structural
        assert!(Arc::ptr_eq(&first.body, &second.body));
        assert_eq!(svc.pool().jobs_run(), 1);

        // a distinct grid is a distinct key and a fresh pool job
        let other = svc.handle(&tiny_spec(vec![0.001, 0.004])).unwrap();
        assert!(!other.cache_hit);
        assert_eq!(svc.pool().jobs_run(), 2);
        assert_ne!(other.key, first.key);

        let cache = svc.shutdown();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));

        // cached body decodes to the serial answer, bit for bit
        let (serial, _) = run_serial(&spec).unwrap();
        let (decoded, _) = decode_spectrum_body(&second.body).unwrap();
        for (s, d) in serial.iter().zip(&decoded) {
            assert_eq!(s.delta_c.to_bits(), d.delta_c.to_bits());
            assert_eq!(s.phi.to_bits(), d.phi.to_bits());
        }
    }
}
