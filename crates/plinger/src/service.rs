//! Spectrum-as-a-service: a job front-end over a warm [`FarmPool`].
//!
//! A pooled farm turns "run the spectrum code" into "ask a resident
//! service for a spectrum", and once jobs are cheap to issue the same
//! k-grid gets requested twice.  [`SpectrumService`] closes that loop:
//! every request is keyed by the canonical job hash
//! ([`crate::protocol::job_hash`] — an FNV-1a over the exact tag-1 wire
//! bits of the [`RunSpec`], so two requests collide exactly when they
//! would broadcast identical job parameters) and looked up in a
//! content-addressed [`ResultCache`] before any worker is disturbed.  A
//! hit returns the stored response body — bit-for-bit the bytes the
//! first run produced, with hit/miss telemetry counted; a miss runs the
//! job on the pool, encodes the outputs into a flat real-vector body
//! ([`encode_spectrum_body`]), caches it, and also hands back the
//! per-job [`FarmReport`] for `run_report`-schema metrics export.
//!
//! The response body is a plain `Vec<f64>` rather than a struct so the
//! `plinger-serve` wire protocol (see `docs/PROTOCOL.md`) can ship it
//! unmodified in one length-prefixed frame, and so cached and fresh
//! responses are comparable by hashing the reals' bit patterns.
//!
//! Requests are served strictly in arrival order on the pool (the
//! chunked master scheduler already multiplexes each job's modes over
//! every worker); concurrency lives one layer up, in the server bin,
//! which queues whole requests onto the single service behind a lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use boltzmann::ModeOutput;
use msgpass::{Tag, World};
use telemetry::log::{self as tlog, Level};
use telemetry::{Counter, Histogram, TelemetrySnapshot};

use crate::error::FarmError;
use crate::farm::FarmReport;
use crate::pool::FarmPool;
use crate::protocol::{job_hash, RunSpec};
use crate::schedule::SchedulePolicy;

/// Tag 20, client → server: request one spectrum.  The payload is the
/// [`RunSpec`] tag-1 wire encoding ([`RunSpec::encode`]), so the
/// service request is byte-compatible with the farm's own job open.
pub const TAG_REQ_SPECTRUM: Tag = 20;
/// Tag 21, server → client: the spectrum response.  The payload is
/// `[hit_flag]` (1.0 when served from the [`ResultCache`], else 0.0)
/// followed by the [`encode_spectrum_body`] reals.
pub const TAG_RESP_SPECTRUM: Tag = 21;
/// Tag 25, client → server: request service counters (empty payload).
pub const TAG_REQ_METRICS: Tag = 25;
/// Tag 26, server → client: service counters, gauges, and latency
/// summaries as a real vector (see [`ServiceMetrics::wire_payload`] for
/// the layout).  The first five reals are the historical
/// `[requests, cache_hits, cache_misses, pool_jobs, workers]` payload;
/// clients must accept ≥ 5 reals so the vector can keep growing.
pub const TAG_RESP_METRICS: Tag = 26;
/// Tag 29, server → client: the request could not be served (payload:
/// the UTF-8 error text, one byte per real — diagnostic only).
pub const TAG_RESP_ERROR: Tag = 29;

/// Render an error message as a [`TAG_RESP_ERROR`] payload.
pub fn encode_error_text(msg: &str) -> Vec<f64> {
    msg.bytes().map(f64::from).collect()
}

/// Recover the error text of a [`TAG_RESP_ERROR`] payload.
pub fn decode_error_text(data: &[f64]) -> String {
    data.iter().map(|&b| b as u8 as char).collect()
}

/// Content-addressed store of finished response bodies, keyed by the
/// canonical job hash.
///
/// Values are `Arc`ed so a hit hands out the original allocation — a
/// repeated request cannot differ from the first response even in
/// principle.  The hit/miss counters are the cache's telemetry
/// (exported per-request by `plinger-serve` and asserted by the CI
/// smoke test).
#[derive(Debug, Default)]
pub struct ResultCache {
    entries: HashMap<u64, Arc<Vec<f64>>>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up `key`, counting the outcome as a hit or a miss.
    pub fn lookup(&mut self, key: u64) -> Option<Arc<Vec<f64>>> {
        match self.entries.get(&key) {
            Some(body) => {
                self.hits += 1;
                Some(Arc::clone(body))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store the body for `key` (last write wins; in practice the key
    /// is content-derived, so a rewrite stores identical bits).
    pub fn insert(&mut self, key: u64, body: Arc<Vec<f64>>) {
        self.entries.insert(key, body);
    }

    /// Distinct results stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups answered from the store.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a pool job.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// Live service-level telemetry, shared between the request path and
/// any number of scrapers.
///
/// Everything here is lock-free (relaxed atomics) except the folded
/// per-job communication aggregate, which takes a short mutex once per
/// pool job — so `/metrics` and `/healthz` can be answered while a job
/// is running *without* touching the service's request lock.  The
/// metric names produced by [`ServiceMetrics::snapshot`] are a
/// stability contract, catalogued in `docs/OBSERVABILITY.md`.
#[derive(Default)]
pub struct ServiceMetrics {
    /// Requests accepted (hits and misses both count).
    pub requests: Counter,
    /// Requests answered from the [`ResultCache`].
    pub cache_hits: Counter,
    /// Requests that fell through to a pool job.
    pub cache_misses: Counter,
    /// Response-body bytes served (8 × reals, cached or fresh).
    pub cache_bytes_served: Counter,
    /// Requests that ended in a [`TAG_RESP_ERROR`].
    pub errors: Counter,
    /// Pool jobs run on behalf of requests.
    pub pool_jobs: Counter,
    /// Time from request accept to service-lock acquisition, ns.
    pub queue_wait_ns: Histogram,
    /// Time inside the service (cache probe + any pool job), ns.
    pub run_ns: Histogram,
    /// Accept-to-reply wall time, ns.
    pub total_ns: Histogram,
    /// Requests currently accepted but not yet replied to.
    queue_depth: AtomicU64,
    /// Resident workers whose session thread is running (refreshed
    /// after every job; starts at the pool size).
    workers_alive: AtomicU64,
    /// Per-job farm communication telemetry, folded after each miss.
    comm: Mutex<TelemetrySnapshot>,
}

impl ServiceMetrics {
    /// Fresh metrics reporting `workers` resident workers.
    pub fn new(workers: usize) -> Self {
        let m = Self::default();
        m.workers_alive.store(workers as u64, Ordering::Relaxed);
        m
    }

    /// Count a request into the queue; returns the new depth.
    pub fn enter_queue(&self) -> u64 {
        self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Remove a finished (or failed) request from the queue.
    pub fn leave_queue(&self) {
        // saturating: a stray call must not wrap the gauge to 2^64
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Requests currently in flight.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Record the current count of live resident workers.
    pub fn set_workers_alive(&self, n: usize) {
        self.workers_alive.store(n as u64, Ordering::Relaxed);
    }

    /// Live resident workers as last reported.
    pub fn workers_alive(&self) -> u64 {
        self.workers_alive.load(Ordering::Relaxed)
    }

    /// Fold one pool job's communication telemetry into the aggregate
    /// exposed on `/metrics` (counters add, histograms merge).
    pub fn fold_comm(&self, snap: TelemetrySnapshot) {
        if let Ok(mut agg) = self.comm.lock() {
            agg.merge(snap);
        }
    }

    /// The current readings as one [`TelemetrySnapshot`] — service
    /// counters/gauges/latency histograms plus the folded farm
    /// communication aggregate.  Names here are the `/metrics` contract.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = match self.comm.lock() {
            Ok(agg) => agg.clone(),
            Err(_) => TelemetrySnapshot::default(),
        };
        s.add("requests_total", self.requests.get());
        s.add("cache_hits_total", self.cache_hits.get());
        s.add("cache_misses_total", self.cache_misses.get());
        s.add("cache_bytes_served_total", self.cache_bytes_served.get());
        s.add("errors_total", self.errors.get());
        s.add("pool_jobs_total", self.pool_jobs.get());
        s.gauges
            .insert("queue_depth".into(), self.queue_depth() as f64);
        s.gauges
            .insert("workers_alive".into(), self.workers_alive() as f64);
        s.histograms.insert(
            "request_queue_wait_ns".into(),
            self.queue_wait_ns.snapshot(),
        );
        s.histograms
            .insert("request_run_ns".into(), self.run_ns.snapshot());
        s.histograms
            .insert("request_total_ns".into(), self.total_ns.snapshot());
        s
    }

    /// The [`TAG_RESP_METRICS`] payload: the historical five counters
    /// first (`requests, cache_hits, cache_misses, pool_jobs, workers`),
    /// then gauges and latency summaries —
    /// `[.., workers_alive, queue_depth, errors, cache_bytes_served,
    /// total_ms_p50, total_ms_p99, queue_ms_p50, queue_ms_p99,
    /// run_ms_p50, run_ms_p99]` (15 reals; milliseconds for the
    /// latency entries).  Clients must tolerate further growth.
    pub fn wire_payload(&self, workers: usize) -> Vec<f64> {
        let ms = |ns: u64| ns as f64 / 1e6;
        let total = self.total_ns.snapshot();
        let queue = self.queue_wait_ns.snapshot();
        let run = self.run_ns.snapshot();
        vec![
            self.requests.get() as f64,
            self.cache_hits.get() as f64,
            self.cache_misses.get() as f64,
            self.pool_jobs.get() as f64,
            workers as f64,
            self.workers_alive() as f64,
            self.queue_depth() as f64,
            self.errors.get() as f64,
            self.cache_bytes_served.get() as f64,
            ms(total.quantile(0.5)),
            ms(total.quantile(0.99)),
            ms(queue.quantile(0.5)),
            ms(queue.quantile(0.99)),
            ms(run.quantile(0.5)),
            ms(run.quantile(0.99)),
        ]
    }
}

/// One answered request: where the body came from and, on a miss, the
/// job's full report for metrics export.
#[derive(Debug)]
pub struct ServiceReply {
    /// Canonical job hash the request was keyed under.
    pub key: u64,
    /// True when the body came from the [`ResultCache`] (no pool job
    /// ran, no worker spans exist for this request).
    pub cache_hit: bool,
    /// The response body (see [`encode_spectrum_body`] for the layout).
    pub body: Arc<Vec<f64>>,
    /// The per-job [`FarmReport`] of the pool run that produced the
    /// body — `None` on a cache hit, which did no work worth reporting.
    pub report: Option<FarmReport>,
}

/// A resident spectrum service: one warm [`FarmPool`] plus the
/// [`ResultCache`] in front of it.
pub struct SpectrumService<W: World> {
    pool: FarmPool<W>,
    cache: ResultCache,
    policy: SchedulePolicy,
    requests: u64,
    metrics: Arc<ServiceMetrics>,
}

impl<W: World> SpectrumService<W> {
    /// Wrap a running pool; `policy` schedules every job's k-grid.
    pub fn new(pool: FarmPool<W>, policy: SchedulePolicy) -> Self {
        let metrics = Arc::new(ServiceMetrics::new(pool.n_workers()));
        Self {
            pool,
            cache: ResultCache::new(),
            policy,
            requests: 0,
            metrics,
        }
    }

    /// Serve one spectrum request: cache lookup, then (on a miss) one
    /// pooled job.
    pub fn handle(&mut self, spec: &RunSpec) -> Result<ServiceReply, FarmError> {
        self.requests += 1;
        self.metrics.requests.inc();
        let key = job_hash(spec);
        let job = tlog::job_hex(key);
        if let Some(body) = self.cache.lookup(key) {
            self.metrics.cache_hits.inc();
            self.metrics.cache_bytes_served.add(body.len() as u64 * 8);
            tlog::log(Level::Info, "service", "cache_hit", &[("job", job)]);
            return Ok(ServiceReply {
                key,
                cache_hit: true,
                body,
                report: None,
            });
        }
        self.metrics.cache_misses.inc();
        tlog::log(Level::Info, "service", "cache_miss", &[("job", job)]);
        let outcome = self.pool.run_job(spec, self.policy);
        self.metrics.set_workers_alive(self.pool.workers_alive());
        let report = outcome?;
        self.metrics.pool_jobs.inc();
        self.metrics
            .fold_comm(report.telemetry.merged_comm().to_telemetry());
        let body = Arc::new(encode_spectrum_body(&report.outputs, report.wall_seconds));
        self.metrics.cache_bytes_served.add(body.len() as u64 * 8);
        self.cache.insert(key, Arc::clone(&body));
        Ok(ServiceReply {
            key,
            cache_hit: false,
            body,
            report: Some(report),
        })
    }

    /// Requests handled (hits and misses both count).
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// The shared live-metrics handle — clone it before locking the
    /// service away so scrapers never contend with running jobs.
    pub fn metrics(&self) -> Arc<ServiceMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The cache's telemetry.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The pool underneath (e.g. to read `jobs_run`).
    pub fn pool(&self) -> &FarmPool<W> {
        &self.pool
    }

    /// Shut the pool down, returning the service's [`ResultCache`] so a
    /// caller can log final hit/miss totals.
    pub fn shutdown(self) -> ResultCache {
        let _ = self.pool.shutdown();
        self.cache
    }
}

/// Flatten a finished job into one real vector:
///
/// ```text
/// [ n_outputs, wall_seconds,
///   header_len, payload_len, header…, payload…,   // output 0
///   header_len, payload_len, header…, payload…,   // output 1
///   … ]
/// ```
///
/// Each output's header/payload pair is exactly its tag-4/tag-5 wire
/// encoding ([`ModeOutput::to_wire`], with `ik` the output's position),
/// so a body round-trips through [`decode_spectrum_body`] with the same
/// fidelity as the farm wire itself.
pub fn encode_spectrum_body(outputs: &[ModeOutput], wall_seconds: f64) -> Vec<f64> {
    let mut body = vec![outputs.len() as f64, wall_seconds];
    for (ik, out) in outputs.iter().enumerate() {
        let (header, payload) = out.to_wire(ik);
        body.push(header.len() as f64);
        body.push(payload.len() as f64);
        body.extend_from_slice(&header);
        body.extend_from_slice(&payload);
    }
    body
}

/// Inverse of [`encode_spectrum_body`].  Malformed bodies (truncated
/// frames, header/payload lengths that disagree with the declared
/// counts) are reported as a `String` rather than panicking, so a
/// corrupt service response fails one request, not the client.
pub fn decode_spectrum_body(body: &[f64]) -> Result<(Vec<ModeOutput>, f64), String> {
    if body.len() < 2 {
        return Err(format!("body too short: {} reals", body.len()));
    }
    let n = body[0] as usize;
    let wall_seconds = body[1];
    let mut outputs = Vec::with_capacity(n);
    let mut at = 2usize;
    for i in 0..n {
        let [hlen, plen] = *body
            .get(at..at + 2)
            .and_then(|s| <&[f64; 2]>::try_from(s).ok())
            .ok_or_else(|| format!("output {i}: truncated length prefix at {at}"))?;
        let (hlen, plen) = (hlen as usize, plen as usize);
        at += 2;
        let header = body
            .get(at..at + hlen)
            .ok_or_else(|| format!("output {i}: truncated header"))?;
        at += hlen;
        let payload = body
            .get(at..at + plen)
            .ok_or_else(|| format!("output {i}: truncated payload"))?;
        at += plen;
        let (_ik, out) =
            ModeOutput::from_wire(header, payload).map_err(|e| format!("output {i}: {e}"))?;
        outputs.push(out);
    }
    if at != body.len() {
        return Err(format!(
            "body has {} trailing reals after {n} outputs",
            body.len() - at
        ));
    }
    Ok((outputs, wall_seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::run_serial;
    use boltzmann::Preset;
    use msgpass::channel::ChannelWorld;

    fn tiny_spec(ks: Vec<f64>) -> RunSpec {
        let mut spec = RunSpec::standard_cdm(ks);
        spec.preset = Preset::Draft;
        spec
    }

    #[test]
    fn body_roundtrips_bitwise() {
        let spec = tiny_spec(vec![0.001, 0.02]);
        let (outputs, wall) = run_serial(&spec).unwrap();
        let body = encode_spectrum_body(&outputs, wall);
        let (back, wall_back) = decode_spectrum_body(&body).unwrap();
        assert_eq!(wall_back.to_bits(), wall.to_bits());
        assert_eq!(back.len(), outputs.len());
        for (a, b) in outputs.iter().zip(&back) {
            assert_eq!(a.k.to_bits(), b.k.to_bits());
            assert_eq!(a.delta_c.to_bits(), b.delta_c.to_bits());
            assert_eq!(a.delta_t.len(), b.delta_t.len());
            for (x, y) in a.delta_t.iter().zip(&b.delta_t) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_bodies() {
        assert!(decode_spectrum_body(&[]).is_err());
        // claims one output but carries none
        assert!(decode_spectrum_body(&[1.0, 0.5]).is_err());
        let spec = tiny_spec(vec![0.001]);
        let (outputs, wall) = run_serial(&spec).unwrap();
        let mut body = encode_spectrum_body(&outputs, wall);
        body.pop();
        assert!(decode_spectrum_body(&body).is_err());
        // trailing garbage is rejected, not silently ignored
        let mut body = encode_spectrum_body(&outputs, wall);
        body.push(0.0);
        assert!(decode_spectrum_body(&body).is_err());
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = ResultCache::new();
        assert!(cache.lookup(7).is_none());
        cache.insert(7, Arc::new(vec![1.0, 2.0]));
        let hit = cache.lookup(7).unwrap();
        assert_eq!(*hit, vec![1.0, 2.0]);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
    }

    #[test]
    fn service_metrics_snapshot_and_wire_payload() {
        let m = ServiceMetrics::new(2);
        m.requests.add(3);
        m.cache_hits.inc();
        m.cache_misses.add(2);
        m.pool_jobs.add(2);
        m.errors.inc();
        m.total_ns.record(1_000_000);
        assert_eq!(m.enter_queue(), 1);

        let s = m.snapshot();
        assert_eq!(s.counter("requests_total"), 3);
        assert_eq!(s.counter("cache_hits_total"), 1);
        assert_eq!(s.counter("errors_total"), 1);
        assert_eq!(s.gauges["queue_depth"], 1.0);
        assert_eq!(s.gauges["workers_alive"], 2.0);
        assert_eq!(s.histograms["request_total_ns"].count, 1);

        m.leave_queue();
        m.leave_queue(); // a stray extra leave must not wrap the gauge
        assert_eq!(m.queue_depth(), 0);

        let wire = m.wire_payload(2);
        assert_eq!(wire.len(), 15);
        assert_eq!(&wire[..5], &[3.0, 1.0, 2.0, 2.0, 2.0]);
        // total_ms_p50 reflects the single 1 ms sample (log-bucket
        // resolution: within a factor of 2)
        assert!(wire[9] > 0.5 && wire[9] < 2.1, "p50 {} ms", wire[9]);
    }

    #[test]
    fn service_counts_into_shared_metrics() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let metrics = svc.metrics();
        let spec = tiny_spec(vec![0.001, 0.02]);
        svc.handle(&spec).unwrap();
        svc.handle(&spec).unwrap();
        assert_eq!(metrics.requests.get(), 2);
        assert_eq!(metrics.cache_hits.get(), 1);
        assert_eq!(metrics.cache_misses.get(), 1);
        assert_eq!(metrics.pool_jobs.get(), 1);
        assert_eq!(metrics.workers_alive(), 2);
        assert!(metrics.cache_bytes_served.get() > 0);
        // the folded farm comm aggregate reaches the snapshot
        let s = metrics.snapshot();
        assert!(s.counter("msgs_sent") > 0);
        let _ = svc.shutdown();
    }

    #[test]
    fn service_serves_second_identical_request_from_cache() {
        let pool = FarmPool::<ChannelWorld>::start(2).unwrap();
        let mut svc = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
        let spec = tiny_spec(vec![0.001, 0.004, 0.02]);

        let first = svc.handle(&spec).unwrap();
        assert!(!first.cache_hit);
        let rep = first.report.as_ref().unwrap();
        assert_eq!(rep.outputs.len(), 3);

        let second = svc.handle(&spec).unwrap();
        assert!(second.cache_hit);
        assert!(second.report.is_none());
        // the literal same allocation: bitwise equality is structural
        assert!(Arc::ptr_eq(&first.body, &second.body));
        assert_eq!(svc.pool().jobs_run(), 1);

        // a distinct grid is a distinct key and a fresh pool job
        let other = svc.handle(&tiny_spec(vec![0.001, 0.004])).unwrap();
        assert!(!other.cache_hit);
        assert_eq!(svc.pool().jobs_run(), 2);
        assert_ne!(other.key, first.key);

        let cache = svc.shutdown();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));

        // cached body decodes to the serial answer, bit for bit
        let (serial, _) = run_serial(&spec).unwrap();
        let (decoded, _) = decode_spectrum_body(&second.body).unwrap();
        for (s, d) in serial.iter().zip(&decoded) {
            assert_eq!(s.delta_c.to_bits(), d.delta_c.to_bits());
            assert_eq!(s.phi.to_bits(), d.phi.to_bits());
        }
    }
}
