//! PLINGER: the parallel LINGER farm.
//!
//! The paper's observation is that every wavenumber of the linearized
//! Einstein–Boltzmann system evolves independently, so the serial main
//! loop over `k` parallelizes as a master/worker farm with trivial
//! communication: a broadcast of run parameters, one integer of work
//! assignment per mode, and the finished mode's moment hierarchy coming
//! back (150 bytes – 80 kB, "roughly in proportion to the CPU time").
//!
//! This crate reproduces that farm over the `msgpass` wrapper routines:
//! the message tags of Appendix A (1–6, plus tags 7–8 for statistics
//! and failure reports), the master subroutine (`parentsub`) hardened
//! into a liveness-aware session loop, the worker subroutine
//! (`kidsub`), largest-k-first scheduling ("one simple method by which
//! we minimized this idle time"), and the timing accounting behind the
//! paper's Figure 1 and §5.1 flop rates.
//!
//! The entry point is [`Farm`]: one transport-generic session type that
//! assembles a world, spawns workers, runs the master loop, and returns
//! a [`FarmReport`] — or a typed [`FarmError`] naming exactly what
//! failed, with no panics on the communication path.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cli;
pub mod ensemble;
pub mod error;
pub mod farm;
pub mod master;
pub mod output_files;
pub mod pool;
pub mod protocol;
pub mod recovery;
pub mod report;
pub mod schedule;
pub mod service;
pub mod simulate;
pub mod worker;

pub use ensemble::{
    ensemble_hash, run_ensemble, EnsembleDecodeError, EnsembleOptions, EnsembleReport,
    EnsembleSpec, ShardResult, ShardRunner,
};
pub use error::{CancelReason, FarmError};
pub use farm::{
    parse_worker_fault, run_serial, run_tcp_processes, run_tcp_worker, Farm, FarmReport, FaultPlan,
    TcpFarmOptions,
};
pub use master::{
    master_job_session, master_job_session_prefetch, master_loop, master_session, JobControl,
    MasterConfig, MasterLedger, SessionKind,
};
pub use pool::{FarmPool, PoolOptions, PoolShutdown, Session, TcpFarmPool};
pub use protocol::{
    cosmo_hash, hash_reals, job_hash, RunSpec, SpecDecodeError, TAG_ASSIGN, TAG_CANCEL, TAG_DATA,
    TAG_FAIL, TAG_HEADER, TAG_HEARTBEAT, TAG_INIT, TAG_JOBDONE, TAG_NEWJOB, TAG_PREFETCH,
    TAG_REQUEST, TAG_STATS, TAG_STOP,
};
pub use recovery::{FailedMode, RecoveryLog, RecoveryPolicy, WorkerEvent};
pub use report::{build_run_report, render_pretty, FarmTelemetry};
pub use schedule::{SchedulePolicy, WorkQueue};
pub use service::{
    decode_spectrum_body, encode_spectrum_body, key_from_reals, key_to_reals, EnsembleRequest,
    EnsembleSummary, ErrorCode, ResultCache, ServiceError, ServiceMetrics, ServiceReply,
    ShardReply, SpectrumRequest, SpectrumService, TAG_REQ_ENSEMBLE, TAG_REQ_METRICS,
    TAG_REQ_SPECTRUM, TAG_RESP_ENSEMBLE, TAG_RESP_ERROR, TAG_RESP_METRICS, TAG_RESP_SHARD,
    TAG_RESP_SPECTRUM,
};
pub use simulate::{simulate_farm, synthetic_costs, SimParams, SimResult};
pub use worker::{
    worker_loop, worker_loop_limited, worker_pool_session, worker_session, PoolWorkerOutcome,
    WorkerContext, WorkerFault, WorkerOutcome, WorkerStats,
};
