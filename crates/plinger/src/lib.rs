//! PLINGER: the parallel LINGER farm.
//!
//! The paper's observation is that every wavenumber of the linearized
//! Einstein–Boltzmann system evolves independently, so the serial main
//! loop over `k` parallelizes as a master/worker farm with trivial
//! communication: a broadcast of run parameters, one integer of work
//! assignment per mode, and the finished mode's moment hierarchy coming
//! back (150 bytes – 80 kB, "roughly in proportion to the CPU time").
//!
//! This crate reproduces that farm verbatim over the `msgpass` wrapper
//! routines: the message tags 1–6 of Appendix A, the master subroutine
//! (`parentsub`), the worker subroutine (`kidsub`), largest-k-first
//! scheduling ("one simple method by which we minimized this idle
//! time"), and the timing accounting behind the paper's Figure 1 and
//! §5.1 flop rates.

pub mod cli;
pub mod farm;
pub mod master;
pub mod output_files;
pub mod protocol;
pub mod schedule;
pub mod simulate;
pub mod worker;

pub use farm::{run_parallel_channels, run_serial, FarmReport};
pub use master::master_loop;
pub use protocol::{RunSpec, TAG_ASSIGN, TAG_DATA, TAG_HEADER, TAG_INIT, TAG_REQUEST, TAG_STOP};
pub use schedule::SchedulePolicy;
pub use simulate::{simulate_farm, synthetic_costs, SimParams, SimResult};
pub use worker::{worker_loop, WorkerContext};
