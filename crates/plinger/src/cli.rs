//! Shared command-line parsing for the `linger`, `plinger`, and
//! `plinger-serve` binaries.
//!
//! A tiny hand-rolled parser (no external CLI crates): flags are
//! `--name value` pairs; unknown flags abort with usage.  The flags are
//! grouped into reusable builders — [`SpecArgs`] (cosmology, grid,
//! accuracy → a [`RunSpec`]), [`FarmArgs`] (workers, transport,
//! recovery, timing → [`FarmSettings`]), and [`ServeArgs`] (listen
//! addresses, admission control, persistent cache →
//! [`ServeSettings`]) — so each binary composes exactly the groups it
//! understands: `linger`/`plinger` take the first two through
//! [`parse`], the `plinger-serve` server takes [`FarmArgs`] plus
//! [`ServeArgs`], and the `plinger-serve` client takes [`SpecArgs`]
//! plus a connect address.  Every flag keeps one definition, one
//! default, and one error message across all binaries.

use crate::ensemble::EnsembleSpec;
use crate::master::MasterConfig;
use crate::protocol::RunSpec;
use crate::recovery::RecoveryPolicy;
use background::CosmoParams;
use boltzmann::{Gauge, InitialConditions, Preset, SpectrumMethod};
use std::path::PathBuf;
use std::time::Duration;
use telemetry::log::{parse_log_flag, Level};

/// Which message-passing substrate the parallel binary farms over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process worker threads over crossbeam channels.
    #[default]
    Channel,
    /// In-process worker threads over shared-memory mailboxes.
    Shmem,
    /// OS-subprocess workers over localhost TCP sockets.
    Tcp,
}

/// How the run report is surfaced at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// Human-readable summary tables on stdout (plus the JSON file).
    #[default]
    Pretty,
    /// Machine-readable `run_report.json` on stdout (plus the file).
    Json,
    /// Disable telemetry recording entirely; no report is written.
    Off,
}

/// Parsed run options common to both binaries.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// The run specification (cosmology, grids, accuracy).
    pub spec: RunSpec,
    /// Output file prefix (writes `<prefix>.linger` + `<prefix>.lingerd`).
    pub output: String,
    /// Worker count (parallel binary only).
    pub workers: usize,
    /// Transport selection (parallel binary only).
    pub transport: TransportKind,
    /// Run-report surfacing mode.
    pub telemetry: TelemetryMode,
    /// Optional chrome-tracing output path (`--trace-out trace.json`).
    pub trace_out: Option<String>,
    /// Master idle-poll interval override (`--poll MS`).
    pub poll: Option<Duration>,
    /// Worker drain timeout override (`--drain-timeout MS`).
    pub drain_timeout: Option<Duration>,
    /// Heartbeat silence threshold override (`--heartbeat-timeout MS`).
    pub heartbeat_timeout: Option<Duration>,
    /// Recovery policy assembled from `--recovery` / `--max-attempts`.
    pub recovery: RecoveryPolicy,
    /// Subprocess respawn budget (`--respawn-limit N`, TCP only).
    pub respawn_limit: usize,
    /// Modes per assignment message (`--chunk N`).
    pub chunk: usize,
    /// Structured-log stderr sink (`--log level[,json]`); `None` keeps
    /// stderr silent (the flight recorder records regardless).
    pub log: Option<(Level, bool)>,
}

impl CliOptions {
    /// Apply the `--log` flag to the process-wide stderr sink (no-op
    /// when the flag was absent).
    pub fn apply_log(&self) {
        if let Some((level, json)) = self.log {
            telemetry::log::set_stderr(Some(level), json);
        }
    }

    /// Assemble a [`MasterConfig`] from the parsed farm knobs, leaving
    /// unset timings at their library defaults.
    pub fn master_config(&self) -> MasterConfig {
        let d = MasterConfig::default();
        MasterConfig {
            poll: self.poll.unwrap_or(d.poll),
            drain_timeout: self.drain_timeout.unwrap_or(d.drain_timeout),
            heartbeat_timeout: self.heartbeat_timeout.unwrap_or(d.heartbeat_timeout),
            recovery: self.recovery,
            chunk: self.chunk,
        }
    }
}

/// Internal marker for TCP worker subprocesses:
/// `--tcp-worker ADDR RANK SIZE [FAULT]`.
#[derive(Debug, Clone)]
pub struct TcpWorkerArgs {
    /// Master address to connect to.
    pub addr: String,
    /// This worker's rank.
    pub rank: usize,
    /// World size.
    pub size: usize,
    /// Optional scripted fault (`vanish:N`, `stall:N:MS`, `failmode:IK`)
    /// injected by the fault-plan test harness.
    pub fault: Option<String>,
}

/// Result of parsing: a normal run or a hidden TCP-worker invocation.
#[derive(Debug)]
pub enum Parsed {
    /// Drive a run.
    Run(Box<CliOptions>),
    /// Act as a TCP worker child process.
    TcpWorker(TcpWorkerArgs),
}

/// Usage text shared by both binaries.
pub const USAGE: &str = "\
options:
  --model scdm|lcdm|mdm     cosmology preset              [scdm]
  --h VALUE                 Hubble parameter h
  --omega-b VALUE           baryon density
  --omega-c VALUE           CDM density
  --omega-lambda VALUE      cosmological constant
  --m-nu EV                 massive neutrino mass (eV)
  --n-s VALUE               primordial spectral index
  --gauge sync|newt         evolution gauge               [sync]
  --ic adiabatic|iso        initial conditions            [adiabatic]
  --preset draft|demo|prod  accuracy preset               [demo]
  --kmin / --kmax VALUE     k-grid bounds (Mpc⁻¹)         [1e-4 / 0.1]
  --nk N                    number of k values (log grid) [32]
  --lmax N                  photon hierarchy override     [auto]
  --method hierarchy|los    full ladder, or truncated hierarchy +
                            line-of-sight projection      [hierarchy]
  --tau-end MPC             stop early (conformal time)   [today]
  --output PREFIX           output file prefix            [linger_out]
  --workers N               parallel workers              [cores]
  --transport KIND          channel|shmem|tcp             [channel]
  --tcp                     shorthand for --transport tcp
  --telemetry MODE          pretty|json|off               [pretty]
  --trace-out FILE          write chrome-tracing JSON spans to FILE
  --recovery MODE           failfast|requeue              [requeue]
  --max-attempts N          dispatches per mode before quarantine [2]
  --poll MS                 master idle-poll interval     [25]
  --drain-timeout MS        worker drain window on error  [5000]
  --heartbeat-timeout MS    silence before a worker is dead [30000]
  --respawn-limit N         TCP subprocess respawn budget [2]
  --chunk N                 modes per assignment message  [1]
  --log LEVEL[,json]        structured events on stderr
                            (error|warn|info|debug)       [off]
";

/// Pop the value of `flag` off the argument iterator.
fn take<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Builder for the run-specification flag group: cosmology, gauge,
/// initial conditions, accuracy preset, and the k grid.
///
/// Feed it flags via [`SpecArgs::try_flag`] (it answers `Ok(false)` for
/// flags it does not own, so builders chain), then [`SpecArgs::build`]
/// validates and assembles the [`RunSpec`].
#[derive(Debug, Clone)]
pub struct SpecArgs {
    /// Cosmological parameters (preset + individual overrides).
    pub cosmo: CosmoParams,
    /// Evolution gauge.
    pub gauge: Gauge,
    /// Perturbation initial conditions.
    pub ic: InitialConditions,
    /// Accuracy preset.
    pub preset: Preset,
    /// Lower k-grid bound, Mpc⁻¹.
    pub kmin: f64,
    /// Upper k-grid bound, Mpc⁻¹.
    pub kmax: f64,
    /// Number of (log-spaced) grid points.
    pub nk: usize,
    /// Photon hierarchy override.
    pub lmax: Option<usize>,
    /// Early-stop conformal time, Mpc.
    pub tau_end: Option<f64>,
    /// Full hierarchy or line-of-sight fast path.
    pub method: SpectrumMethod,
    /// Ω_k of the selected `--model` before any flag overrides — the
    /// curvature [`SpecArgs::build`] re-closes the density budget to.
    base_omega_k: f64,
    /// `--omega-c` was given explicitly: the budget is the user's,
    /// `build` leaves it alone.
    pin_omega_c: bool,
}

impl Default for SpecArgs {
    fn default() -> Self {
        let cosmo = CosmoParams::standard_cdm();
        Self {
            base_omega_k: cosmo.omega_k(),
            cosmo,
            gauge: Gauge::Synchronous,
            ic: InitialConditions::Adiabatic,
            preset: Preset::Demo,
            kmin: 1.0e-4,
            kmax: 0.1,
            nk: 32,
            lmax: None,
            tau_end: None,
            method: SpectrumMethod::FullHierarchy,
            pin_omega_c: false,
        }
    }
}

impl SpecArgs {
    /// Consume `flag` (and its value from `it`) if it belongs to this
    /// group.  `Ok(true)` means handled; `Ok(false)` means not ours.
    pub fn try_flag(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match flag {
            "--model" => {
                self.cosmo = match take(flag, it)?.as_str() {
                    "scdm" => CosmoParams::standard_cdm(),
                    "lcdm" => CosmoParams::lcdm(),
                    "mdm" => CosmoParams::mixed_dark_matter(),
                    other => return Err(format!("unknown model {other}")),
                };
                self.base_omega_k = self.cosmo.omega_k();
            }
            "--h" => self.cosmo.h = num(take(flag, it)?)?,
            "--omega-b" => self.cosmo.omega_b = num(take(flag, it)?)?,
            "--omega-c" => {
                self.cosmo.omega_c = num(take(flag, it)?)?;
                self.pin_omega_c = true;
            }
            "--omega-lambda" => self.cosmo.omega_lambda = num(take(flag, it)?)?,
            "--m-nu" => {
                self.cosmo.m_nu_ev = num(take(flag, it)?)?;
                if self.cosmo.m_nu_ev > 0.0 && self.cosmo.n_nu_massive == 0 {
                    self.cosmo.n_nu_massive = 1;
                    self.cosmo.n_nu_massless = 2.0;
                }
            }
            "--n-s" => self.cosmo.n_s = num(take(flag, it)?)?,
            "--gauge" => {
                self.gauge = match take(flag, it)?.as_str() {
                    "sync" => Gauge::Synchronous,
                    "newt" => Gauge::ConformalNewtonian,
                    other => return Err(format!("unknown gauge {other}")),
                }
            }
            "--ic" => {
                self.ic = match take(flag, it)?.as_str() {
                    "adiabatic" => InitialConditions::Adiabatic,
                    "iso" => InitialConditions::CdmIsocurvature,
                    other => return Err(format!("unknown ic {other}")),
                }
            }
            "--preset" => {
                self.preset = match take(flag, it)?.as_str() {
                    "draft" => Preset::Draft,
                    "demo" => Preset::Demo,
                    "prod" => Preset::Production,
                    other => return Err(format!("unknown preset {other}")),
                }
            }
            "--kmin" => self.kmin = num(take(flag, it)?)?,
            "--kmax" => self.kmax = num(take(flag, it)?)?,
            "--nk" => self.nk = num(take(flag, it)?)? as usize,
            "--lmax" => self.lmax = Some(num(take(flag, it)?)? as usize),
            "--method" => {
                self.method = match take(flag, it)?.as_str() {
                    "hierarchy" | "full" => SpectrumMethod::FullHierarchy,
                    "los" => SpectrumMethod::LineOfSight,
                    other => return Err(format!("unknown method {other}")),
                }
            }
            "--tau-end" => self.tau_end = Some(num(take(flag, it)?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Validate and assemble the [`RunSpec`].
    ///
    /// Density overrides (`--omega-b`, `--h`, `--m-nu`, …) are
    /// re-closed into Ω_c at the `--model`'s curvature — the same
    /// trade [`EnsembleSpec::shard_cosmo`](crate::EnsembleSpec) makes
    /// — so flag-built cosmologies stay evolvable (the perturbation
    /// equations are flat-space-only) and hash-identical with the
    /// matching sweep shard.  The adjustment is exactly `0.0` when no
    /// density flag was given; an explicit `--omega-c` pins the whole
    /// budget and skips it.
    pub fn build(self) -> Result<RunSpec, String> {
        if !(self.kmin > 0.0 && self.kmax > self.kmin) {
            return Err(format!("bad k range [{}, {}]", self.kmin, self.kmax));
        }
        if self.nk < 1 {
            return Err("need at least one k".into());
        }
        let ks = if self.nk == 1 {
            vec![self.kmin]
        } else {
            numutil::grid::logspace(self.kmin, self.kmax, self.nk)
        };
        let mut cosmo = self.cosmo;
        if !self.pin_omega_c {
            cosmo.omega_c += cosmo.omega_k() - self.base_omega_k;
        }
        Ok(RunSpec {
            cosmo,
            gauge: self.gauge,
            ic: self.ic,
            preset: self.preset,
            lmax_g: self.lmax,
            lmax_nu: None,
            lmax_h: 16,
            nq: None,
            tau_end: self.tau_end,
            method: self.method,
            ks,
        })
    }
}

/// Builder for the ensemble-sweep flag group: `--ensemble` plus the
/// `--sweep-*` axes over Ω_b, h, and n_s.  Composes with [`SpecArgs`]
/// (which fills the non-swept base cosmology): [`EnsembleArgs::build`]
/// turns the base [`RunSpec`] into an [`EnsembleSpec`] whose
/// unspecified axes default to singletons of the base value.
#[derive(Debug, Clone, Default)]
pub struct EnsembleArgs {
    /// `--ensemble` was given: the request is a sweep.
    pub ensemble: bool,
    /// `--sweep-omega-b` axis, when given.
    pub omega_b: Option<Vec<f64>>,
    /// `--sweep-h` axis, when given.
    pub h: Option<Vec<f64>>,
    /// `--sweep-ns` axis, when given.
    pub n_s: Option<Vec<f64>>,
}

impl EnsembleArgs {
    /// Consume `flag` (and its value from `it`) if it belongs to this
    /// group.  `Ok(true)` means handled; `Ok(false)` means not ours.
    pub fn try_flag(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match flag {
            "--ensemble" => self.ensemble = true,
            "--sweep-omega-b" => self.omega_b = Some(parse_axis(flag, take(flag, it)?)?),
            "--sweep-h" => self.h = Some(parse_axis(flag, take(flag, it)?)?),
            "--sweep-ns" => self.n_s = Some(parse_axis(flag, take(flag, it)?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Assemble the sweep over `base`: `None` without `--ensemble`
    /// (a `--sweep-*` axis without it is an error), otherwise the
    /// [`EnsembleSpec`] with unspecified axes defaulting to the base
    /// cosmology's value.
    pub fn build(self, base: RunSpec) -> Result<Option<EnsembleSpec>, String> {
        if !self.ensemble {
            if self.omega_b.is_some() || self.h.is_some() || self.n_s.is_some() {
                return Err("--sweep-* axes need --ensemble".into());
            }
            return Ok(None);
        }
        let mut ens = EnsembleSpec::singleton(base);
        if let Some(axis) = self.omega_b {
            ens.omega_b = axis;
        }
        if let Some(axis) = self.h {
            ens.h = axis;
        }
        if let Some(axis) = self.n_s {
            ens.n_s = axis;
        }
        Ok(Some(ens))
    }
}

/// Parse a comma-separated `--sweep-*` axis into its values.
fn parse_axis(flag: &str, list: &str) -> Result<Vec<f64>, String> {
    let axis: Vec<f64> = list
        .split(',')
        .map(|v| num(v.trim()))
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad {flag} value {list:?} (comma-separated reals)"))?;
    if axis.is_empty() {
        return Err(format!("{flag} needs at least one value"));
    }
    Ok(axis)
}

/// Builder for the farm flag group: worker count, transport, recovery
/// policy, master timings, respawn budget, and chunking.
#[derive(Debug, Clone)]
pub struct FarmArgs {
    /// Worker count (defaults to the core count).
    pub workers: usize,
    /// Transport selection.
    pub transport: TransportKind,
    /// `--recovery requeue` (the default) vs `failfast`.
    pub requeue: bool,
    /// Dispatches per mode before quarantine.
    pub max_attempts: usize,
    /// Master idle-poll interval override.
    pub poll: Option<Duration>,
    /// Worker drain timeout override.
    pub drain_timeout: Option<Duration>,
    /// Heartbeat silence threshold override.
    pub heartbeat_timeout: Option<Duration>,
    /// Worker respawn budget.
    pub respawn_limit: usize,
    /// Modes per assignment message.
    pub chunk: usize,
    /// Structured-log stderr sink.
    pub log: Option<(Level, bool)>,
}

impl Default for FarmArgs {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            transport: TransportKind::default(),
            requeue: true,
            max_attempts: 2,
            poll: None,
            drain_timeout: None,
            heartbeat_timeout: None,
            respawn_limit: 2,
            chunk: 1,
            log: None,
        }
    }
}

/// Validated farm settings out of [`FarmArgs::build`].
#[derive(Debug, Clone)]
pub struct FarmSettings {
    /// Worker count (≥ 1).
    pub workers: usize,
    /// Transport selection.
    pub transport: TransportKind,
    /// Assembled recovery policy.
    pub recovery: RecoveryPolicy,
    /// Master idle-poll interval override.
    pub poll: Option<Duration>,
    /// Worker drain timeout override.
    pub drain_timeout: Option<Duration>,
    /// Heartbeat silence threshold override.
    pub heartbeat_timeout: Option<Duration>,
    /// Worker respawn budget.
    pub respawn_limit: usize,
    /// Modes per assignment message (≥ 1).
    pub chunk: usize,
    /// Structured-log stderr sink (`--log level[,json]`).
    pub log: Option<(Level, bool)>,
}

impl FarmSettings {
    /// Assemble a [`MasterConfig`], leaving unset timings at their
    /// library defaults.
    pub fn master_config(&self) -> MasterConfig {
        let d = MasterConfig::default();
        MasterConfig {
            poll: self.poll.unwrap_or(d.poll),
            drain_timeout: self.drain_timeout.unwrap_or(d.drain_timeout),
            heartbeat_timeout: self.heartbeat_timeout.unwrap_or(d.heartbeat_timeout),
            recovery: self.recovery,
            chunk: self.chunk,
        }
    }

    /// Apply the `--log` flag to the process-wide stderr sink (no-op
    /// when the flag was absent).
    pub fn apply_log(&self) {
        if let Some((level, json)) = self.log {
            telemetry::log::set_stderr(Some(level), json);
        }
    }
}

impl FarmArgs {
    /// Consume `flag` (and its value from `it`) if it belongs to this
    /// group.  `Ok(true)` means handled; `Ok(false)` means not ours.
    pub fn try_flag(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match flag {
            "--workers" => self.workers = num(take(flag, it)?)? as usize,
            "--transport" => {
                self.transport = match take(flag, it)?.as_str() {
                    "channel" => TransportKind::Channel,
                    "shmem" => TransportKind::Shmem,
                    "tcp" => TransportKind::Tcp,
                    other => return Err(format!("unknown transport {other}")),
                }
            }
            "--tcp" => self.transport = TransportKind::Tcp,
            "--recovery" => {
                self.requeue = match take(flag, it)?.as_str() {
                    "failfast" => false,
                    "requeue" => true,
                    other => return Err(format!("unknown recovery mode {other}")),
                }
            }
            "--max-attempts" => self.max_attempts = num(take(flag, it)?)? as usize,
            "--poll" => self.poll = Some(Duration::from_millis(num(take(flag, it)?)? as u64)),
            "--drain-timeout" => {
                self.drain_timeout = Some(Duration::from_millis(num(take(flag, it)?)? as u64))
            }
            "--heartbeat-timeout" => {
                self.heartbeat_timeout = Some(Duration::from_millis(num(take(flag, it)?)? as u64))
            }
            "--respawn-limit" => self.respawn_limit = num(take(flag, it)?)? as usize,
            "--chunk" => self.chunk = num(take(flag, it)?)? as usize,
            "--log" => self.log = Some(parse_log_flag(take(flag, it)?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Validate and assemble the [`FarmSettings`].
    pub fn build(self) -> Result<FarmSettings, String> {
        if self.workers < 1 {
            return Err("need at least one worker".into());
        }
        if self.max_attempts < 1 {
            return Err("need at least one attempt per mode".into());
        }
        if self.chunk < 1 {
            return Err("need at least one mode per assignment".into());
        }
        let recovery = if self.requeue {
            RecoveryPolicy::Requeue {
                max_attempts: self.max_attempts,
                respawn: self.respawn_limit > 0,
            }
        } else {
            RecoveryPolicy::FailFast
        };
        Ok(FarmSettings {
            workers: self.workers,
            transport: self.transport,
            recovery,
            poll: self.poll,
            drain_timeout: self.drain_timeout,
            heartbeat_timeout: self.heartbeat_timeout,
            respawn_limit: self.respawn_limit,
            chunk: self.chunk,
            log: self.log,
        })
    }
}

/// In-flight request cap applied when `--queue-limit` is absent: both
/// the admission-control threshold and the `/healthz` not-ready trip
/// point.
pub const DEFAULT_QUEUE_LIMIT: u64 = 64;

/// Builder for the `plinger-serve` server flag group: listen/metrics
/// addresses, request admission, and the persistent result-cache tier.
#[derive(Debug, Clone, Default)]
pub struct ServeArgs {
    /// Bind address (`--listen`, required; port 0 picks one).
    pub listen: Option<String>,
    /// Optional HTTP `/metrics` + `/healthz` address.
    pub metrics_addr: Option<String>,
    /// Exit after N connections; 0 serves forever.
    pub max_requests: usize,
    /// Directory for per-miss run reports and flight dumps.
    pub report_dir: Option<PathBuf>,
    /// In-flight request cap (`--queue-limit`; `None` = 64).
    pub queue_limit: Option<u64>,
    /// Crash-safe result-cache directory (`--cache-dir`).
    pub cache_dir: Option<PathBuf>,
}

/// Validated server settings out of [`ServeArgs::build`].
#[derive(Debug, Clone)]
pub struct ServeSettings {
    /// Bind address.
    pub listen: String,
    /// Optional HTTP `/metrics` + `/healthz` address.
    pub metrics_addr: Option<String>,
    /// Exit after N connections; 0 serves forever.
    pub max_requests: usize,
    /// Directory for per-miss run reports and flight dumps.
    pub report_dir: Option<PathBuf>,
    /// In-flight request cap: requests past it are shed with a typed
    /// `Busy` frame, and `/healthz` reports not-ready at it.
    pub queue_limit: u64,
    /// Crash-safe result-cache directory.
    pub cache_dir: Option<PathBuf>,
}

impl ServeArgs {
    /// Consume `flag` (and its value from `it`) if it belongs to this
    /// group.  `Ok(true)` means handled; `Ok(false)` means not ours.
    pub fn try_flag(
        &mut self,
        flag: &str,
        it: &mut std::slice::Iter<'_, String>,
    ) -> Result<bool, String> {
        match flag {
            "--listen" => self.listen = Some(take(flag, it)?.clone()),
            "--metrics-addr" => self.metrics_addr = Some(take(flag, it)?.clone()),
            "--max-requests" => self.max_requests = num(take(flag, it)?)? as usize,
            "--report-dir" => self.report_dir = Some(PathBuf::from(take(flag, it)?)),
            "--queue-limit" => self.queue_limit = Some(num(take(flag, it)?)? as u64),
            "--cache-dir" => self.cache_dir = Some(PathBuf::from(take(flag, it)?)),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Validate and assemble the [`ServeSettings`].
    pub fn build(self) -> Result<ServeSettings, String> {
        let listen = self.listen.ok_or("--listen needs a value")?;
        let queue_limit = self.queue_limit.unwrap_or(DEFAULT_QUEUE_LIMIT);
        if queue_limit < 1 {
            return Err("need a queue limit of at least 1".into());
        }
        Ok(ServeSettings {
            listen,
            metrics_addr: self.metrics_addr,
            max_requests: self.max_requests,
            report_dir: self.report_dir,
            queue_limit,
            cache_dir: self.cache_dir,
        })
    }
}

/// Recognize the hidden `--tcp-worker ADDR RANK SIZE [FAULT]` prefix.
/// `Ok(None)` means the arguments are a normal invocation.
pub fn parse_tcp_worker(args: &[String]) -> Result<Option<TcpWorkerArgs>, String> {
    if args.first().map(|s| s.as_str()) != Some("--tcp-worker") {
        return Ok(None);
    }
    if args.len() != 4 && args.len() != 5 {
        return Err("--tcp-worker needs ADDR RANK SIZE [FAULT]".into());
    }
    Ok(Some(TcpWorkerArgs {
        addr: args[1].clone(),
        rank: args[2].parse().map_err(|_| "bad rank")?,
        size: args[3].parse().map_err(|_| "bad size")?,
        fault: args.get(4).cloned(),
    }))
}

/// Parse `args` (without `argv[0]`).  On error, returns the message to
/// print alongside [`USAGE`].
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    // hidden worker mode first
    if let Some(w) = parse_tcp_worker(args)? {
        return Ok(Parsed::TcpWorker(w));
    }

    let mut spec = SpecArgs::default();
    let mut farm = FarmArgs::default();
    let mut output = "linger_out".to_string();
    let mut telemetry = TelemetryMode::default();
    let mut trace_out = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if spec.try_flag(flag, &mut it)? || farm.try_flag(flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--output" => output = take(flag, &mut it)?.clone(),
            "--telemetry" => {
                telemetry = match take(flag, &mut it)?.as_str() {
                    "pretty" => TelemetryMode::Pretty,
                    "json" => TelemetryMode::Json,
                    "off" => TelemetryMode::Off,
                    other => return Err(format!("unknown telemetry mode {other}")),
                }
            }
            "--trace-out" => trace_out = Some(take(flag, &mut it)?.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let spec = spec.build()?;
    let farm = farm.build()?;
    Ok(Parsed::Run(Box::new(CliOptions {
        spec,
        output,
        workers: farm.workers,
        transport: farm.transport,
        telemetry,
        trace_out,
        poll: farm.poll,
        drain_timeout: farm.drain_timeout,
        heartbeat_timeout: farm.heartbeat_timeout,
        recovery: farm.recovery,
        respawn_limit: farm.respawn_limit,
        chunk: farm.chunk,
        log: farm.log,
    })))
}

fn num(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let p = parse(&[]).unwrap();
        match p {
            Parsed::Run(o) => {
                assert_eq!(o.spec.ks.len(), 32);
                assert_eq!(o.output, "linger_out");
                assert_eq!(o.transport, TransportKind::Channel);
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn full_flag_set() {
        let p = parse(&argv(
            "--model lcdm --gauge newt --ic iso --preset draft --kmin 1e-3 \
             --kmax 1e-2 --nk 5 --lmax 40 --tau-end 250 --output foo --workers 3 --tcp",
        ))
        .unwrap();
        match p {
            Parsed::Run(o) => {
                assert!(o.spec.cosmo.omega_lambda > 0.5);
                assert_eq!(o.spec.gauge, Gauge::ConformalNewtonian);
                assert_eq!(o.spec.ic, InitialConditions::CdmIsocurvature);
                assert_eq!(o.spec.preset, Preset::Draft);
                assert_eq!(o.spec.ks.len(), 5);
                assert_eq!(o.spec.lmax_g, Some(40));
                assert_eq!(o.spec.tau_end, Some(250.0));
                assert_eq!(o.output, "foo");
                assert_eq!(o.workers, 3);
                assert_eq!(o.transport, TransportKind::Tcp);
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn ensemble_args_parse_axes_and_default_to_base_singletons() {
        let args = argv("--sweep-omega-b 0.04,0.05,0.06 --sweep-ns 0.95,1.0 --ensemble");
        let mut ens_args = EnsembleArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            assert!(ens_args.try_flag(flag, &mut it).unwrap(), "{flag}");
        }
        let base = SpecArgs::default().build().unwrap();
        let ens = ens_args.build(base.clone()).unwrap().unwrap();
        assert_eq!(ens.omega_b, vec![0.04, 0.05, 0.06]);
        assert_eq!(ens.n_s, vec![0.95, 1.0]);
        // the unswept h axis is the base value's singleton
        assert_eq!(ens.h, vec![base.cosmo.h]);
        assert_eq!(ens.n_shards(), 6);

        // no --ensemble: no sweep, and stray axes are an error
        assert!(EnsembleArgs::default()
            .build(base.clone())
            .unwrap()
            .is_none());
        let stray = EnsembleArgs {
            omega_b: Some(vec![0.04]),
            ..EnsembleArgs::default()
        };
        assert!(stray.build(base).is_err());

        // malformed axis values are rejected with the flag named
        let bad = argv("--sweep-h 0.5,banana");
        let mut ens_args = EnsembleArgs::default();
        let mut it = bad.iter();
        let flag = it.next().unwrap();
        assert!(ens_args.try_flag(flag, &mut it).is_err());
    }

    /// Build a [`RunSpec`] from spectrum-flag text alone.
    fn spec_flags(text: &str) -> RunSpec {
        let args = argv(text);
        let mut sa = SpecArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            assert!(sa.try_flag(flag, &mut it).unwrap(), "{flag}");
        }
        sa.build().unwrap()
    }

    #[test]
    fn density_overrides_reclose_into_omega_c() {
        let base = SpecArgs::default().build().unwrap();
        // no density flags: the closure is a bitwise no-op
        assert_eq!(
            base.cosmo.omega_c.to_bits(),
            CosmoParams::standard_cdm().omega_c.to_bits()
        );
        // Ω_b / h overrides trade against Ω_c at the model's curvature
        let moved = spec_flags("--omega-b 0.06 --h 0.7");
        assert!((moved.cosmo.omega_k() - base.cosmo.omega_k()).abs() < 1e-12);
        assert_ne!(moved.cosmo.omega_c, base.cosmo.omega_c);
        // an explicit --omega-c pins the budget verbatim
        let pinned = spec_flags("--omega-b 0.06 --omega-c 0.2");
        assert_eq!(pinned.cosmo.omega_c, 0.2);
        // --model resets the closure target to the new model's curvature
        let lcdm = spec_flags("--model lcdm --omega-b 0.06");
        let lcdm_base = spec_flags("--model lcdm");
        assert!((lcdm.cosmo.omega_k() - lcdm_base.cosmo.omega_k()).abs() < 1e-12);
    }

    #[test]
    fn flag_built_spec_crosses_over_into_the_matching_sweep_shard() {
        // the cli closure and EnsembleSpec::shard_cosmo must agree
        // bitwise, or a single-spectrum request stops sharing cache
        // entries with the sweep that already computed its cosmology
        let base = SpecArgs::default().build().unwrap();
        let ens = EnsembleArgs {
            ensemble: true,
            omega_b: Some(vec![0.03, 0.06]),
            h: Some(vec![0.5, 0.7]),
            n_s: None,
        }
        .build(base)
        .unwrap()
        .unwrap();
        // canonical order is omega_b-major, h-fast: (0.06, 0.7) is shard 3
        let single = spec_flags("--omega-b 0.06 --h 0.7");
        assert_eq!(
            crate::job_hash(&ens.shard_spec(3)),
            crate::job_hash(&single)
        );
        assert_eq!(ens.shard_hash(3), crate::job_hash(&single));
    }

    #[test]
    fn transport_flag_selects_substrate() {
        for (arg, want) in [
            ("--transport channel", TransportKind::Channel),
            ("--transport shmem", TransportKind::Shmem),
            ("--transport tcp", TransportKind::Tcp),
            ("--tcp", TransportKind::Tcp),
        ] {
            match parse(&argv(arg)).unwrap() {
                Parsed::Run(o) => assert_eq!(o.transport, want, "{arg}"),
                _ => panic!("expected run for {arg}"),
            }
        }
        assert!(parse(&argv("--transport carrier-pigeon")).is_err());
    }

    #[test]
    fn massive_nu_flag_reshuffles_species() {
        match parse(&argv("--m-nu 4.66")).unwrap() {
            Parsed::Run(o) => {
                assert_eq!(o.spec.cosmo.n_nu_massive, 1);
                assert_eq!(o.spec.cosmo.n_nu_massless, 2.0);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn tcp_worker_mode() {
        match parse(&argv("--tcp-worker 127.0.0.1:4000 2 5")).unwrap() {
            Parsed::TcpWorker(w) => {
                assert_eq!(w.rank, 2);
                assert_eq!(w.size, 5);
                assert_eq!(w.addr, "127.0.0.1:4000");
                assert_eq!(w.fault, None);
            }
            _ => panic!(),
        }
        match parse(&argv("--tcp-worker 127.0.0.1:4000 2 5 vanish:1")).unwrap() {
            Parsed::TcpWorker(w) => assert_eq!(w.fault.as_deref(), Some("vanish:1")),
            _ => panic!(),
        }
        assert!(parse(&argv("--tcp-worker 127.0.0.1:4000 2 5 vanish:1 extra")).is_err());
    }

    #[test]
    fn recovery_flags_parse() {
        match parse(&[]).unwrap() {
            Parsed::Run(o) => {
                assert_eq!(
                    o.recovery,
                    RecoveryPolicy::Requeue {
                        max_attempts: 2,
                        respawn: true
                    }
                );
                assert_eq!(o.respawn_limit, 2);
                let cfg = o.master_config();
                assert_eq!(cfg.poll, MasterConfig::default().poll);
            }
            _ => panic!("expected run"),
        }
        match parse(&argv("--recovery failfast")).unwrap() {
            Parsed::Run(o) => assert_eq!(o.recovery, RecoveryPolicy::FailFast),
            _ => panic!("expected run"),
        }
        match parse(&argv(
            "--recovery requeue --max-attempts 3 --respawn-limit 0 \
             --poll 10 --drain-timeout 750 --heartbeat-timeout 2000",
        ))
        .unwrap()
        {
            Parsed::Run(o) => {
                assert_eq!(
                    o.recovery,
                    RecoveryPolicy::Requeue {
                        max_attempts: 3,
                        respawn: false
                    }
                );
                assert_eq!(o.respawn_limit, 0);
                let cfg = o.master_config();
                assert_eq!(cfg.poll, Duration::from_millis(10));
                assert_eq!(cfg.drain_timeout, Duration::from_millis(750));
                assert_eq!(cfg.heartbeat_timeout, Duration::from_millis(2000));
            }
            _ => panic!("expected run"),
        }
        assert!(parse(&argv("--recovery maybe")).is_err());
        assert!(parse(&argv("--max-attempts 0")).is_err());
    }

    #[test]
    fn telemetry_flags_parse() {
        match parse(&[]).unwrap() {
            Parsed::Run(o) => {
                assert_eq!(o.telemetry, TelemetryMode::Pretty);
                assert_eq!(o.trace_out, None);
            }
            _ => panic!("expected run"),
        }
        for (arg, want) in [
            ("--telemetry pretty", TelemetryMode::Pretty),
            ("--telemetry json", TelemetryMode::Json),
            ("--telemetry off", TelemetryMode::Off),
        ] {
            match parse(&argv(arg)).unwrap() {
                Parsed::Run(o) => assert_eq!(o.telemetry, want, "{arg}"),
                _ => panic!("expected run for {arg}"),
            }
        }
        match parse(&argv("--trace-out /tmp/trace.json")).unwrap() {
            Parsed::Run(o) => assert_eq!(o.trace_out.as_deref(), Some("/tmp/trace.json")),
            _ => panic!("expected run"),
        }
        assert!(parse(&argv("--telemetry verbose")).is_err());
        assert!(parse(&argv("--trace-out")).is_err());
    }

    #[test]
    fn log_flag_parses() {
        match parse(&[]).unwrap() {
            Parsed::Run(o) => assert_eq!(o.log, None),
            _ => panic!("expected run"),
        }
        match parse(&argv("--log info")).unwrap() {
            Parsed::Run(o) => assert_eq!(o.log, Some((Level::Info, false))),
            _ => panic!("expected run"),
        }
        match parse(&argv("--log debug,json")).unwrap() {
            Parsed::Run(o) => assert_eq!(o.log, Some((Level::Debug, true))),
            _ => panic!("expected run"),
        }
        assert!(parse(&argv("--log loud")).is_err());
    }

    #[test]
    fn serve_args_parse() {
        let args = argv(
            "--listen 127.0.0.1:0 --metrics-addr 127.0.0.1:9 --max-requests 7 \
             --queue-limit 3 --cache-dir /tmp/cache --report-dir /tmp/reports",
        );
        let mut serve = ServeArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            assert!(serve.try_flag(flag, &mut it).unwrap(), "{flag} not owned");
        }
        let cfg = serve.build().unwrap();
        assert_eq!(cfg.listen, "127.0.0.1:0");
        assert_eq!(cfg.metrics_addr.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(cfg.max_requests, 7);
        assert_eq!(cfg.queue_limit, 3);
        assert_eq!(cfg.cache_dir.as_deref(), Some(Path::new("/tmp/cache")));
        assert_eq!(cfg.report_dir.as_deref(), Some(Path::new("/tmp/reports")));

        // defaults: the queue limit falls back, the listen address is
        // mandatory, and a zero limit is rejected
        let mut serve = ServeArgs::default();
        let args = argv("--listen 127.0.0.1:0");
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            serve.try_flag(flag, &mut it).unwrap();
        }
        let cfg = serve.build().unwrap();
        assert_eq!(cfg.queue_limit, DEFAULT_QUEUE_LIMIT);
        assert_eq!(cfg.max_requests, 0);
        assert!(ServeArgs::default().build().is_err(), "listen is required");
        let mut serve = ServeArgs {
            listen: Some("x".into()),
            queue_limit: Some(0),
            ..Default::default()
        };
        assert!(serve.clone().build().is_err(), "zero limit rejected");
        serve.queue_limit = Some(1);
        assert!(serve.build().is_ok());

        // farm flags are not owned by the serve group
        let mut serve = ServeArgs::default();
        let args = argv("--workers 2");
        let mut it = args.iter();
        let flag = it.next().unwrap();
        assert!(!serve.try_flag(flag, &mut it).unwrap());
    }

    #[test]
    fn bad_flag_is_error() {
        assert!(parse(&argv("--frobnicate 3")).is_err());
        assert!(parse(&argv("--kmin -1")).is_err());
        assert!(parse(&argv("--kmin 0.1 --kmax 0.01")).is_err());
    }

    #[test]
    fn builders_compose_independently() {
        // the serve client path: spec flags only, farm flags rejected
        let args = argv("--model lcdm --nk 3 --preset draft");
        let mut spec = SpecArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            assert!(spec.try_flag(flag, &mut it).unwrap(), "{flag} not owned");
        }
        let spec = spec.build().unwrap();
        assert_eq!(spec.ks.len(), 3);
        assert!(spec.cosmo.omega_lambda > 0.5);

        let mut spec = SpecArgs::default();
        let args = argv("--workers 3");
        let mut it = args.iter();
        let flag = it.next().unwrap();
        assert!(!spec.try_flag(flag, &mut it).unwrap());

        // the serve server path: farm flags only
        let args = argv("--workers 2 --transport shmem --recovery failfast");
        let mut farm = FarmArgs::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            assert!(farm.try_flag(flag, &mut it).unwrap(), "{flag} not owned");
        }
        let farm = farm.build().unwrap();
        assert_eq!(farm.workers, 2);
        assert_eq!(farm.transport, TransportKind::Shmem);
        assert_eq!(farm.recovery, RecoveryPolicy::FailFast);

        // a value-less flag errors inside the builder, not at build()
        let args = argv("--kmin");
        let mut spec = SpecArgs::default();
        let mut it = args.iter();
        let flag = it.next().unwrap();
        assert!(spec.try_flag(flag, &mut it).is_err());
    }
}
