//! The wire protocol of Appendix A: message tags and the initial
//! broadcast encoding.
//!
//! # Wire formats beyond the paper's table
//!
//! Two messages carry more than the paper's Appendix A specifies:
//!
//! * **Tag 5 (data)** — the `2·lmax + 8` payload reserves slots
//!   `payload[1..6]` for integrator statistics: RHS evaluations,
//!   accepted steps, rejected steps, the gauge discriminant, and the
//!   stepper's own flop count.  Together with `header[19]`
//!   (total flops) this lets [`boltzmann::ModeOutput::from_wire`]
//!   reconstruct the full [`ode::StepStats`] on the master side, so
//!   per-mode timing ledgers survive the wire even when workers are OS
//!   subprocesses.
//! * **Tag 7 (stats)** — a 9-real worker self-report (see
//!   [`TAG_STATS`]); 4- and 8-real payloads from older workers still
//!   decode, with the newer counters zero-filled.

use background::CosmoParams;
use boltzmann::{Gauge, InitialConditions, ModeConfig, Preset, SpectrumMethod};
use msgpass::Tag;

/// Tag 1: first message from master to workers (run parameters).
pub const TAG_INIT: Tag = 1;
/// Tag 2: from worker, asking for a wavenumber.
pub const TAG_REQUEST: Tag = 2;
/// Tag 3: from master, giving the worker one or more mode indices to
/// work on.  The payload is `[ik0, ik1, ...]` — a *chunk*, a run of the
/// dispatch order; the worker answers each index in payload order with
/// a tag-4/5 result pair or a tag-8 failure.  A single-element payload
/// is the paper's one-mode-at-a-time protocol (and the default).
pub const TAG_ASSIGN: Tag = 3;
/// Tag 4: from worker, first set of data (21 reals, `y(21) = lmax`).
pub const TAG_HEADER: Tag = 4;
/// Tag 5: from worker, second set of data (`2·lmax + 8` reals).
pub const TAG_DATA: Tag = 5;
/// Tag 6: from master, telling the worker to stop.
pub const TAG_STOP: Tag = 6;
/// Tag 7: from worker, after its release — its session statistics as
/// 10 reals: `[modes, busy seconds, total seconds, bytes sent,
/// steps accepted, steps rejected, rhs evals, bytes received,
/// ctx rebuilds, prefetch builds]`.  In a one-shot farm the release is
/// the tag-6 stop and the statistics cover the whole session; a pooled
/// worker sends one such report per job on its tag-11 release,
/// covering that job alone.
///
/// Legacy 4-, 8-, and 9-real payloads (field prefixes) also decode,
/// with the rest zero-filled; any other length, or any non-finite or
/// negative value, is rejected by
/// [`crate::worker::WorkerStats::from_wire`].  Not in the paper's
/// table; carrying the counters over the wire keeps the report uniform
/// whether workers are threads or OS processes.
pub const TAG_STATS: Tag = 7;
/// Tag 8: from worker, a mode integration failed (2 reals: ik, k).
/// Under [`crate::RecoveryPolicy::FailFast`] the master drains and
/// stops the farm, returning a typed error; under
/// [`crate::RecoveryPolicy::Requeue`] the mode goes back into the
/// queue (or is quarantined once its attempt budget is spent) and the
/// worker stays in rotation.
pub const TAG_FAIL: Tag = 8;
/// Tag 9: from worker, a liveness heartbeat (1 real: a monotonically
/// increasing sequence number).  Workers emit one between DVERK step
/// batches, at most every ~100 ms; the master only reads them to
/// refresh a rank's last-seen clock, so losing heartbeats is harmless
/// while data messages still flow.  Not in the paper's table — the
/// 1995 codes had no liveness detection beyond socket close.
pub const TAG_HEARTBEAT: Tag = 9;
/// Tag 10: from master, the job broadcast of a *pooled* session — the
/// same `19 + nk` payload as [`TAG_INIT`], sent to workers that are
/// already resident from a previous job.  A persistent worker treats
/// tags 1 and 10 identically (a respawned rank is re-initialised with
/// tag 1 mid-job, so both must start a job); the distinct tag exists so
/// traces and per-tag counters separate pool reuse from cold starts.
pub const TAG_NEWJOB: Tag = 10;
/// Tag 11: from master, releasing workers at the end of a pooled job
/// *without* ending their session (1 real, ignored).  The worker
/// answers with its per-job tag-7 stats — exactly as it would answer
/// [`TAG_STOP`] — and then parks, keeping its background/thermo caches
/// warm, until the next tag-10/1 job or a final tag-6 stop.
pub const TAG_JOBDONE: Tag = 11;
/// Tag 12: from master, cooperative job cancellation (1 real, ignored).
/// Workers poll for it inside the heartbeat observer (every
/// `HEARTBEAT_CHECK_STEPS` accepted DVERK steps) and between
/// assignments, so a deadline-expired or client-abandoned job releases
/// its ranks mid-chunk instead of finishing dead work.  A worker that
/// sees it abandons the rest of its chunk, answers with its per-job
/// tag-7 stats — exactly as it would answer [`TAG_JOBDONE`] — and then
/// parks (pooled) or exits (one-shot).  Results already in flight when
/// the cancel lands are consumed blindly by the master's drain.
pub const TAG_CANCEL: Tag = 12;
/// Tag 13: from master, a context prefetch hint for a *parked* pooled
/// worker — the same spec payload as [`TAG_NEWJOB`], but it does **not**
/// start a job.  A parked worker that receives it builds the
/// background/thermo tables for the spec's cosmology (if its warm cache
/// holds a different one) and parks again, so when the real tag-10 job
/// for that cosmology arrives the context is already warm and the job's
/// `ctx_rebuilds` is 0.  This is how an ensemble sweep overlaps shard
/// `i+1`'s per-cosmology table construction with shard `i`'s tail
/// chunks: the master appends a prefetch of the next shard to each
/// tag-11 release.  Workers that never park (one-shot sessions) never
/// see it; a worker may safely ignore it (it is a hint, not a job), and
/// prefetching never changes results — caches are keyed on the
/// canonical cosmology hash and rebuilt tables are bit-identical
/// wherever they are built.
pub const TAG_PREFETCH: Tag = 13;

/// 64-bit FNV-1a over a sequence of 64-bit words, fed byte-wise in
/// little-endian order.  Dependency-free and stable across platforms —
/// the point is a *canonical* value that can be pinned in golden tests
/// and compared between master and worker processes.
fn fnv1a64(words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Canonical hash of a cosmology: FNV-1a over the IEEE-754 bit patterns
/// of every [`CosmoParams`] field, in the fixed order of the tag-1 wire
/// encoding (`h, omega_c, omega_b, omega_lambda, t_cmb_k, y_helium,
/// n_nu_massless, n_nu_massive, m_nu_ev, n_s`).
///
/// Persistent workers key their background/thermo caches on this value:
/// two jobs whose cosmologies hash equal reuse the tables, any change
/// rebuilds them.  Hashing bit patterns (not numeric equality) is
/// deliberate — a cache key must never conflate parameter sets the
/// physics could distinguish, and bitwise identity is the only relation
/// that survives encode/decode round-trips exactly.
pub fn cosmo_hash(c: &CosmoParams) -> u64 {
    fnv1a64([
        c.h.to_bits(),
        c.omega_c.to_bits(),
        c.omega_b.to_bits(),
        c.omega_lambda.to_bits(),
        c.t_cmb_k.to_bits(),
        c.y_helium.to_bits(),
        c.n_nu_massless.to_bits(),
        c.n_nu_massive as u64,
        c.m_nu_ev.to_bits(),
        c.n_s.to_bits(),
    ])
}

/// Canonical hash of a whole job: FNV-1a over the bit patterns of the
/// tag-1/10 wire encoding ([`RunSpec::encode`]), which covers the
/// cosmology, gauge, initial conditions, accuracy preset, hierarchy
/// sizes, integration horizon, and the full k-grid in order.
///
/// The service's content-addressed `ResultCache` keys on this value:
/// requests that hash equal are — by construction of the encoding —
/// the same job, and the deterministic integrator makes their results
/// bitwise interchangeable.
pub fn job_hash(spec: &RunSpec) -> u64 {
    hash_reals(&spec.encode())
}

/// FNV-1a over the exact bit patterns of `xs`.  This is the generic
/// content hash behind [`job_hash`]; the `plinger-serve` client also
/// applies it to response bodies, so two responses print the same hash
/// exactly when they are bitwise identical.
pub fn hash_reals(xs: &[f64]) -> u64 {
    fnv1a64(xs.iter().map(|x| x.to_bits()))
}

/// A tag-1 broadcast payload that cannot be decoded into a [`RunSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecDecodeError {
    /// Payload shorter than the fixed 19-real prefix.
    TooShort {
        /// Actual length.
        got: usize,
    },
    /// Payload length disagrees with the k-count it declares.
    LengthMismatch {
        /// k-count read from the first real.
        nk: usize,
        /// Expected total length, `19 + nk`.
        want: usize,
        /// Actual length.
        got: usize,
    },
}

impl std::fmt::Display for SpecDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecDecodeError::TooShort { got } => {
                write!(f, "broadcast too short: {got} reals (need ≥ 19)")
            }
            SpecDecodeError::LengthMismatch { nk, want, got } => write!(
                f,
                "broadcast length mismatch: {nk} modes need {want} reals, got {got}"
            ),
        }
    }
}

impl std::error::Error for SpecDecodeError {}

/// Complete description of a PLINGER run, broadcast to every worker as
/// the tag-1 message so each worker can rebuild the background and
/// thermal history on its own node (as the Fortran original did).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Cosmological parameters.
    pub cosmo: CosmoParams,
    /// Gauge of the evolution.
    pub gauge: Gauge,
    /// Initial conditions.
    pub ic: InitialConditions,
    /// Accuracy preset.
    pub preset: Preset,
    /// Photon hierarchy override (`None` = automatic).
    pub lmax_g: Option<usize>,
    /// Neutrino hierarchy override.
    pub lmax_nu: Option<usize>,
    /// Massive-neutrino hierarchy size.
    pub lmax_h: usize,
    /// Massive-neutrino momentum bins (`None` = follow the cosmology).
    pub nq: Option<usize>,
    /// End of the integration; `None` = today.
    pub tau_end: Option<f64>,
    /// Full hierarchy or the line-of-sight fast path.  Rides the
    /// broadcast as a trailing discriminant real that is appended only
    /// for [`SpectrumMethod::LineOfSight`], so legacy encodings — and
    /// the [`job_hash`] values the result caches key on — are untouched
    /// for full-hierarchy jobs.
    pub method: SpectrumMethod,
    /// The wavenumber grid, Mpc⁻¹.
    pub ks: Vec<f64>,
}

impl RunSpec {
    /// A spec with the paper's standard-CDM model and defaults.
    pub fn standard_cdm(ks: Vec<f64>) -> Self {
        Self {
            cosmo: CosmoParams::standard_cdm(),
            gauge: Gauge::Synchronous,
            ic: InitialConditions::Adiabatic,
            preset: Preset::Demo,
            lmax_g: None,
            lmax_nu: None,
            lmax_h: 16,
            nq: None,
            tau_end: None,
            method: SpectrumMethod::FullHierarchy,
            ks,
        }
    }

    /// The per-mode configuration this spec implies.
    pub fn mode_config(&self) -> ModeConfig {
        ModeConfig {
            gauge: self.gauge,
            ic: self.ic,
            preset: self.preset,
            lmax_g: self.lmax_g,
            lmax_nu: self.lmax_nu,
            lmax_h: self.lmax_h,
            nq: self.nq,
            tau_end: self.tau_end,
            record_trajectory: false,
            method: ode::Method::Verner65,
            spectrum_method: self.method,
        }
    }

    /// Encode as the tag-1 broadcast payload.
    pub fn encode(&self) -> Vec<f64> {
        let c = &self.cosmo;
        let mut v = vec![
            // run geometry
            self.ks.len() as f64,
            match self.gauge {
                Gauge::Synchronous => 0.0,
                Gauge::ConformalNewtonian => 1.0,
            },
            match self.ic {
                InitialConditions::Adiabatic => 0.0,
                InitialConditions::CdmIsocurvature => 1.0,
            },
            match self.preset {
                Preset::Draft => 0.0,
                Preset::Demo => 1.0,
                Preset::Production => 2.0,
            },
            self.lmax_g.map(|l| l as f64).unwrap_or(-1.0),
            self.lmax_nu.map(|l| l as f64).unwrap_or(-1.0),
            self.lmax_h as f64,
            self.nq.map(|n| n as f64).unwrap_or(-1.0),
            self.tau_end.unwrap_or(-1.0),
            // cosmology
            c.h,
            c.omega_c,
            c.omega_b,
            c.omega_lambda,
            c.t_cmb_k,
            c.y_helium,
            c.n_nu_massless,
            c.n_nu_massive as f64,
            c.m_nu_ev,
            c.n_s,
        ];
        v.extend_from_slice(&self.ks);
        if self.method == SpectrumMethod::LineOfSight {
            v.push(1.0);
        }
        v
    }

    /// Decode a tag-1 broadcast payload.  A truncated or inconsistent
    /// payload is a [`SpecDecodeError`], not a panic — a worker that
    /// receives garbage must be able to fail the session cleanly.
    pub fn decode(v: &[f64]) -> Result<Self, SpecDecodeError> {
        if v.len() < 19 {
            return Err(SpecDecodeError::TooShort { got: v.len() });
        }
        let nk = v[0] as usize;
        // legacy frames are exactly 19 + nk reals; a line-of-sight job
        // appends one trailing method discriminant
        let method = match v.len() - 19 {
            n if n == nk => SpectrumMethod::FullHierarchy,
            n if n == nk + 1 && v[19 + nk] == 1.0 => SpectrumMethod::LineOfSight,
            _ => {
                return Err(SpecDecodeError::LengthMismatch {
                    nk,
                    want: 19 + nk,
                    got: v.len(),
                })
            }
        };
        Ok(Self {
            method,
            gauge: if v[1] == 0.0 {
                Gauge::Synchronous
            } else {
                Gauge::ConformalNewtonian
            },
            ic: if v[2] == 0.0 {
                InitialConditions::Adiabatic
            } else {
                InitialConditions::CdmIsocurvature
            },
            preset: match v[3] as i64 {
                0 => Preset::Draft,
                1 => Preset::Demo,
                _ => Preset::Production,
            },
            lmax_g: (v[4] >= 0.0).then(|| v[4] as usize),
            lmax_nu: (v[5] >= 0.0).then(|| v[5] as usize),
            lmax_h: v[6] as usize,
            nq: (v[7] >= 0.0).then(|| v[7] as usize),
            tau_end: (v[8] >= 0.0).then_some(v[8]),
            cosmo: CosmoParams {
                h: v[9],
                omega_c: v[10],
                omega_b: v[11],
                omega_lambda: v[12],
                t_cmb_k: v[13],
                y_helium: v[14],
                n_nu_massless: v[15],
                n_nu_massive: v[16] as usize,
                m_nu_ev: v[17],
                n_s: v[18],
            },
            ks: v[19..19 + nk].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_the_paper_table() {
        assert_eq!(TAG_INIT, 1);
        assert_eq!(TAG_REQUEST, 2);
        assert_eq!(TAG_ASSIGN, 3);
        assert_eq!(TAG_HEADER, 4);
        assert_eq!(TAG_DATA, 5);
        assert_eq!(TAG_STOP, 6);
        // extensions beyond the paper's table, for session accounting
        // and typed failure reporting
        assert_eq!(TAG_STATS, 7);
        assert_eq!(TAG_FAIL, 8);
        assert_eq!(TAG_HEARTBEAT, 9);
        // pooled-session extensions: job start / job release for
        // workers that stay resident between k-grids
        assert_eq!(TAG_NEWJOB, 10);
        assert_eq!(TAG_JOBDONE, 11);
        assert_eq!(TAG_CANCEL, 12);
        // ensemble extension: next-shard context prefetch for parked
        // pooled workers
        assert_eq!(TAG_PREFETCH, 13);
    }

    #[test]
    fn job_hash_tracks_every_spec_field() {
        let base = RunSpec::standard_cdm(vec![0.001, 0.01]);
        let h0 = job_hash(&base);
        assert_eq!(job_hash(&base), h0, "hash must be deterministic");

        let mut m = base.clone();
        m.cosmo.omega_b += 1e-12;
        assert_ne!(job_hash(&m), h0, "cosmology must be keyed");

        let mut m = base.clone();
        m.preset = Preset::Draft;
        assert_ne!(job_hash(&m), h0, "accuracy must be keyed");

        let mut m = base.clone();
        m.ks.push(0.1);
        assert_ne!(job_hash(&m), h0, "grid must be keyed");

        let mut m = base.clone();
        m.method = SpectrumMethod::LineOfSight;
        assert_ne!(job_hash(&m), h0, "spectrum method must be keyed");

        // cosmo_hash ignores everything but the cosmology
        let mut m = base.clone();
        m.preset = Preset::Draft;
        m.ks = vec![0.5];
        assert_eq!(cosmo_hash(&m.cosmo), cosmo_hash(&base.cosmo));
    }

    #[test]
    fn method_rides_a_trailing_real_only_when_los() {
        // legacy compatibility: a full-hierarchy spec must encode (and
        // hash) exactly as it did before the method field existed
        let full = RunSpec::standard_cdm(vec![0.001, 0.01]);
        let wire = full.encode();
        assert_eq!(wire.len(), 19 + full.ks.len());
        let back = RunSpec::decode(&wire).unwrap();
        assert_eq!(back.method, SpectrumMethod::FullHierarchy);

        let mut los = full.clone();
        los.method = SpectrumMethod::LineOfSight;
        let wire_los = los.encode();
        assert_eq!(wire_los.len(), wire.len() + 1);
        assert_eq!(wire_los[wire.len()], 1.0);
        let back = RunSpec::decode(&wire_los).unwrap();
        assert_eq!(back.method, SpectrumMethod::LineOfSight);
        assert_eq!(back.ks, los.ks);

        // a trailing real that isn't the discriminant is a length error
        let mut bad = wire_los.clone();
        bad[wire.len()] = 2.0;
        assert!(RunSpec::decode(&bad).is_err());
    }

    #[test]
    fn spec_roundtrip() {
        let mut spec = RunSpec::standard_cdm(vec![0.001, 0.01, 0.1]);
        spec.gauge = Gauge::ConformalNewtonian;
        spec.lmax_g = Some(77);
        spec.tau_end = Some(250.0);
        spec.cosmo.n_nu_massive = 1;
        spec.cosmo.m_nu_ev = 4.66;
        spec.method = SpectrumMethod::LineOfSight;
        let wire = spec.encode();
        let back = RunSpec::decode(&wire).unwrap();
        assert_eq!(back.method, SpectrumMethod::LineOfSight);
        assert_eq!(back.ks, spec.ks);
        assert_eq!(back.gauge, spec.gauge);
        assert_eq!(back.lmax_g, Some(77));
        assert_eq!(back.lmax_nu, None);
        assert_eq!(back.tau_end, Some(250.0));
        assert_eq!(back.cosmo.m_nu_ev, 4.66);
        assert_eq!(back.cosmo.n_nu_massive, 1);
        assert_eq!(back.preset, spec.preset);
    }

    #[test]
    fn decode_rejects_truncated() {
        let spec = RunSpec::standard_cdm(vec![0.1, 0.2]);
        let mut wire = spec.encode();
        wire.pop();
        assert_eq!(
            RunSpec::decode(&wire).unwrap_err(),
            SpecDecodeError::LengthMismatch {
                nk: 2,
                want: 21,
                got: 20
            }
        );
        assert_eq!(
            RunSpec::decode(&[0.0; 5]).unwrap_err(),
            SpecDecodeError::TooShort { got: 5 }
        );
    }
}
