//! The wire protocol of Appendix A: message tags and the initial
//! broadcast encoding.
//!
//! # Wire formats beyond the paper's table
//!
//! Two messages carry more than the paper's Appendix A specifies:
//!
//! * **Tag 5 (data)** — the `2·lmax + 8` payload reserves slots
//!   `payload[1..6]` for integrator statistics: RHS evaluations,
//!   accepted steps, rejected steps, the gauge discriminant, and the
//!   stepper's own flop count.  Together with `header[19]`
//!   (total flops) this lets [`boltzmann::ModeOutput::from_wire`]
//!   reconstruct the full [`ode::StepStats`] on the master side, so
//!   per-mode timing ledgers survive the wire even when workers are OS
//!   subprocesses.
//! * **Tag 7 (stats)** — an 8-real worker self-report (see
//!   [`TAG_STATS`]); 4-real payloads from older workers still decode,
//!   with the newer counters zero-filled.

use background::CosmoParams;
use boltzmann::{Gauge, InitialConditions, ModeConfig, Preset};
use msgpass::Tag;

/// Tag 1: first message from master to workers (run parameters).
pub const TAG_INIT: Tag = 1;
/// Tag 2: from worker, asking for a wavenumber.
pub const TAG_REQUEST: Tag = 2;
/// Tag 3: from master, giving the worker one or more mode indices to
/// work on.  The payload is `[ik0, ik1, ...]` — a *chunk*, a run of the
/// dispatch order; the worker answers each index in payload order with
/// a tag-4/5 result pair or a tag-8 failure.  A single-element payload
/// is the paper's one-mode-at-a-time protocol (and the default).
pub const TAG_ASSIGN: Tag = 3;
/// Tag 4: from worker, first set of data (21 reals, `y(21) = lmax`).
pub const TAG_HEADER: Tag = 4;
/// Tag 5: from worker, second set of data (`2·lmax + 8` reals).
pub const TAG_DATA: Tag = 5;
/// Tag 6: from master, telling the worker to stop.
pub const TAG_STOP: Tag = 6;
/// Tag 7: from worker, after the stop — its session statistics as
/// 8 reals: `[modes, busy seconds, total seconds, bytes sent,
/// steps accepted, steps rejected, rhs evals, bytes received]`.
///
/// A legacy 4-real payload (the first four fields) also decodes, with
/// the rest zero-filled; any other length, or any non-finite or
/// negative value, is rejected by
/// [`crate::worker::WorkerStats::from_wire`].  Not in the paper's
/// table; carrying the counters over the wire keeps the report uniform
/// whether workers are threads or OS processes.
pub const TAG_STATS: Tag = 7;
/// Tag 8: from worker, a mode integration failed (2 reals: ik, k).
/// Under [`crate::RecoveryPolicy::FailFast`] the master drains and
/// stops the farm, returning a typed error; under
/// [`crate::RecoveryPolicy::Requeue`] the mode goes back into the
/// queue (or is quarantined once its attempt budget is spent) and the
/// worker stays in rotation.
pub const TAG_FAIL: Tag = 8;
/// Tag 9: from worker, a liveness heartbeat (1 real: a monotonically
/// increasing sequence number).  Workers emit one between DVERK step
/// batches, at most every ~100 ms; the master only reads them to
/// refresh a rank's last-seen clock, so losing heartbeats is harmless
/// while data messages still flow.  Not in the paper's table — the
/// 1995 codes had no liveness detection beyond socket close.
pub const TAG_HEARTBEAT: Tag = 9;

/// A tag-1 broadcast payload that cannot be decoded into a [`RunSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecDecodeError {
    /// Payload shorter than the fixed 19-real prefix.
    TooShort {
        /// Actual length.
        got: usize,
    },
    /// Payload length disagrees with the k-count it declares.
    LengthMismatch {
        /// k-count read from the first real.
        nk: usize,
        /// Expected total length, `19 + nk`.
        want: usize,
        /// Actual length.
        got: usize,
    },
}

impl std::fmt::Display for SpecDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecDecodeError::TooShort { got } => {
                write!(f, "broadcast too short: {got} reals (need ≥ 19)")
            }
            SpecDecodeError::LengthMismatch { nk, want, got } => write!(
                f,
                "broadcast length mismatch: {nk} modes need {want} reals, got {got}"
            ),
        }
    }
}

impl std::error::Error for SpecDecodeError {}

/// Complete description of a PLINGER run, broadcast to every worker as
/// the tag-1 message so each worker can rebuild the background and
/// thermal history on its own node (as the Fortran original did).
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Cosmological parameters.
    pub cosmo: CosmoParams,
    /// Gauge of the evolution.
    pub gauge: Gauge,
    /// Initial conditions.
    pub ic: InitialConditions,
    /// Accuracy preset.
    pub preset: Preset,
    /// Photon hierarchy override (`None` = automatic).
    pub lmax_g: Option<usize>,
    /// Neutrino hierarchy override.
    pub lmax_nu: Option<usize>,
    /// Massive-neutrino hierarchy size.
    pub lmax_h: usize,
    /// Massive-neutrino momentum bins (`None` = follow the cosmology).
    pub nq: Option<usize>,
    /// End of the integration; `None` = today.
    pub tau_end: Option<f64>,
    /// The wavenumber grid, Mpc⁻¹.
    pub ks: Vec<f64>,
}

impl RunSpec {
    /// A spec with the paper's standard-CDM model and defaults.
    pub fn standard_cdm(ks: Vec<f64>) -> Self {
        Self {
            cosmo: CosmoParams::standard_cdm(),
            gauge: Gauge::Synchronous,
            ic: InitialConditions::Adiabatic,
            preset: Preset::Demo,
            lmax_g: None,
            lmax_nu: None,
            lmax_h: 16,
            nq: None,
            tau_end: None,
            ks,
        }
    }

    /// The per-mode configuration this spec implies.
    pub fn mode_config(&self) -> ModeConfig {
        ModeConfig {
            gauge: self.gauge,
            ic: self.ic,
            preset: self.preset,
            lmax_g: self.lmax_g,
            lmax_nu: self.lmax_nu,
            lmax_h: self.lmax_h,
            nq: self.nq,
            tau_end: self.tau_end,
            record_trajectory: false,
            method: ode::Method::Verner65,
        }
    }

    /// Encode as the tag-1 broadcast payload.
    pub fn encode(&self) -> Vec<f64> {
        let c = &self.cosmo;
        let mut v = vec![
            // run geometry
            self.ks.len() as f64,
            match self.gauge {
                Gauge::Synchronous => 0.0,
                Gauge::ConformalNewtonian => 1.0,
            },
            match self.ic {
                InitialConditions::Adiabatic => 0.0,
                InitialConditions::CdmIsocurvature => 1.0,
            },
            match self.preset {
                Preset::Draft => 0.0,
                Preset::Demo => 1.0,
                Preset::Production => 2.0,
            },
            self.lmax_g.map(|l| l as f64).unwrap_or(-1.0),
            self.lmax_nu.map(|l| l as f64).unwrap_or(-1.0),
            self.lmax_h as f64,
            self.nq.map(|n| n as f64).unwrap_or(-1.0),
            self.tau_end.unwrap_or(-1.0),
            // cosmology
            c.h,
            c.omega_c,
            c.omega_b,
            c.omega_lambda,
            c.t_cmb_k,
            c.y_helium,
            c.n_nu_massless,
            c.n_nu_massive as f64,
            c.m_nu_ev,
            c.n_s,
        ];
        v.extend_from_slice(&self.ks);
        v
    }

    /// Decode a tag-1 broadcast payload.  A truncated or inconsistent
    /// payload is a [`SpecDecodeError`], not a panic — a worker that
    /// receives garbage must be able to fail the session cleanly.
    pub fn decode(v: &[f64]) -> Result<Self, SpecDecodeError> {
        if v.len() < 19 {
            return Err(SpecDecodeError::TooShort { got: v.len() });
        }
        let nk = v[0] as usize;
        if v.len() != 19 + nk {
            return Err(SpecDecodeError::LengthMismatch {
                nk,
                want: 19 + nk,
                got: v.len(),
            });
        }
        Ok(Self {
            gauge: if v[1] == 0.0 {
                Gauge::Synchronous
            } else {
                Gauge::ConformalNewtonian
            },
            ic: if v[2] == 0.0 {
                InitialConditions::Adiabatic
            } else {
                InitialConditions::CdmIsocurvature
            },
            preset: match v[3] as i64 {
                0 => Preset::Draft,
                1 => Preset::Demo,
                _ => Preset::Production,
            },
            lmax_g: (v[4] >= 0.0).then(|| v[4] as usize),
            lmax_nu: (v[5] >= 0.0).then(|| v[5] as usize),
            lmax_h: v[6] as usize,
            nq: (v[7] >= 0.0).then(|| v[7] as usize),
            tau_end: (v[8] >= 0.0).then_some(v[8]),
            cosmo: CosmoParams {
                h: v[9],
                omega_c: v[10],
                omega_b: v[11],
                omega_lambda: v[12],
                t_cmb_k: v[13],
                y_helium: v[14],
                n_nu_massless: v[15],
                n_nu_massive: v[16] as usize,
                m_nu_ev: v[17],
                n_s: v[18],
            },
            ks: v[19..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_the_paper_table() {
        assert_eq!(TAG_INIT, 1);
        assert_eq!(TAG_REQUEST, 2);
        assert_eq!(TAG_ASSIGN, 3);
        assert_eq!(TAG_HEADER, 4);
        assert_eq!(TAG_DATA, 5);
        assert_eq!(TAG_STOP, 6);
        // extensions beyond the paper's table, for session accounting
        // and typed failure reporting
        assert_eq!(TAG_STATS, 7);
        assert_eq!(TAG_FAIL, 8);
        assert_eq!(TAG_HEARTBEAT, 9);
    }

    #[test]
    fn spec_roundtrip() {
        let mut spec = RunSpec::standard_cdm(vec![0.001, 0.01, 0.1]);
        spec.gauge = Gauge::ConformalNewtonian;
        spec.lmax_g = Some(77);
        spec.tau_end = Some(250.0);
        spec.cosmo.n_nu_massive = 1;
        spec.cosmo.m_nu_ev = 4.66;
        let wire = spec.encode();
        let back = RunSpec::decode(&wire).unwrap();
        assert_eq!(back.ks, spec.ks);
        assert_eq!(back.gauge, spec.gauge);
        assert_eq!(back.lmax_g, Some(77));
        assert_eq!(back.lmax_nu, None);
        assert_eq!(back.tau_end, Some(250.0));
        assert_eq!(back.cosmo.m_nu_ev, 4.66);
        assert_eq!(back.cosmo.n_nu_massive, 1);
        assert_eq!(back.preset, spec.preset);
    }

    #[test]
    fn decode_rejects_truncated() {
        let spec = RunSpec::standard_cdm(vec![0.1, 0.2]);
        let mut wire = spec.encode();
        wire.pop();
        assert_eq!(
            RunSpec::decode(&wire).unwrap_err(),
            SpecDecodeError::LengthMismatch {
                nk: 2,
                want: 21,
                got: 20
            }
        );
        assert_eq!(
            RunSpec::decode(&[0.0; 5]).unwrap_err(),
            SpecDecodeError::TooShort { got: 5 }
        );
    }
}
