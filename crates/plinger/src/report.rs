//! The telemetry side of a farm run: merged communication counters,
//! the span timeline, and the machine-readable `run_report.json`.
//!
//! The paper's §4 message table and §5 efficiency numbers were
//! *measurements*; this module is where the reproduction's own
//! measurements are assembled.  [`FarmTelemetry`] collects what the
//! instrumented endpoints and the master/worker span recorders saw;
//! [`build_run_report`] folds it together with the
//! [`FarmReport`] accounting into one JSON document
//! (schema `plinger.run_report/2`), and [`render_pretty`] prints the
//! same numbers as human-readable tables.
//!
//! # `run_report.json` schema (version 2)
//!
//! ```text
//! {
//!   "schema":  "plinger.run_report/2",
//!   "run":     { transport, workers, modes, wall_seconds,
//!                total_cpu_seconds, idle_seconds, master_idle_seconds,
//!                efficiency, load_imbalance, total_flops, mflops },
//!   "workers": [ { rank, modes, busy_seconds, total_seconds,
//!                  idle_seconds, bytes_sent, bytes_received,
//!                  steps_accepted, steps_rejected, rhs_evals,
//!                  ctx_rebuilds, prefetch_builds } ],
//!   "messages":[ { tag, name, sent, sent_bytes, recv, recv_bytes } ],
//!   "latency": { send_ns: {count,sum,min,max,mean,p50,p99},
//!                recv_ns: {…} },
//!   "modes":   [ { ik, k, worker, cpu_seconds, accepted, rejected,
//!                  rhs_evals, rhs_flops, stepper_flops } ],
//!   "recovery":{ requeues, heartbeat_misses, heartbeats, respawns,
//!                late_results,
//!                failed_modes: [ { ik, k, attempts, reason } ] }
//! }
//! ```
//!
//! Version 2 adds the `recovery` block (every self-healing action the
//! master took — all zeros/empty on an undisturbed run) and, with it,
//! the possibility of *holes* in `modes`: a quarantined mode appears in
//! `recovery.failed_modes`, not in `modes`.
//!
//! `messages` is the merged per-tag table over every instrumented
//! endpoint in the run; in a closed world each tag's `sent` equals its
//! `recv` (tag 9, the heartbeat, is timing-dependent in count but obeys
//! the same invariant).  `workers[i].idle_seconds` is `total − busy`,
//! clamped at zero.  `modes` is ordered by the k-grid index.

use telemetry::json::Json;
use telemetry::{SpanEvent, TelemetrySnapshot};

use msgpass::instrument::{CommSnapshot, TRACKED_TAGS};

use crate::farm::FarmReport;

/// Human name of a protocol tag (for reports; see `protocol`).
pub fn tag_name(tag: usize) -> &'static str {
    match tag {
        1 => "init",
        2 => "request",
        3 => "assign",
        4 => "header",
        5 => "data",
        6 => "stop",
        7 => "stats",
        8 => "fail",
        9 => "heartbeat",
        10 => "newjob",
        11 => "jobdone",
        _ => "other",
    }
}

/// Everything telemetry-shaped that one farm run produced.
///
/// The thread farms fill all fields; the multi-process TCP farm only
/// carries the master-side endpoint and spans (a subprocess worker's
/// in-process telemetry dies with it — its wire-shipped
/// [`WorkerStats`](crate::WorkerStats) still arrive as tag 7).
/// Everything is empty when telemetry was disabled.
#[derive(Debug, Clone, Default)]
pub struct FarmTelemetry {
    /// Per-endpoint communication counters, master (rank 0) first.
    pub comm: Vec<CommSnapshot>,
    /// Merged span timeline: master track 0 plus one track per worker.
    pub spans: Vec<SpanEvent>,
    /// Seconds the master spent with no message pending.
    pub master_idle_seconds: f64,
}

impl FarmTelemetry {
    /// All endpoints folded into one per-tag table.
    pub fn merged_comm(&self) -> CommSnapshot {
        let mut total = CommSnapshot::default();
        for c in &self.comm {
            total.merge(c);
        }
        total
    }

    /// The run's telemetry as a generic [`TelemetrySnapshot`]: counters
    /// `msgs_sent`, `msgs_recv`, `bytes_sent`, `bytes_recv` (plus
    /// per-tag `…_tagN` breakdowns for tags that moved), latency
    /// histograms `send_ns`/`recv_ns`, the master-idle gauge, and the
    /// span timeline.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = self.merged_comm().to_telemetry();
        s.gauges
            .insert("master_idle_seconds".into(), self.master_idle_seconds);
        s.spans = self.spans.clone();
        s
    }
}

/// Build the version-2 run report document for a completed farm run.
pub fn build_run_report(report: &FarmReport, transport: &str) -> Json {
    let merged = report.telemetry.merged_comm();

    let run = Json::Obj(vec![
        ("transport".into(), Json::Str(transport.into())),
        (
            "workers".into(),
            Json::Num(report.worker_stats.len() as f64),
        ),
        ("modes".into(), Json::Num(report.outputs.len() as f64)),
        ("wall_seconds".into(), Json::Num(report.wall_seconds)),
        (
            "total_cpu_seconds".into(),
            Json::Num(report.total_cpu_seconds()),
        ),
        ("idle_seconds".into(), Json::Num(report.idle_seconds())),
        (
            "master_idle_seconds".into(),
            Json::Num(report.telemetry.master_idle_seconds),
        ),
        ("efficiency".into(), Json::Num(report.parallel_efficiency())),
        ("load_imbalance".into(), Json::Num(report.load_imbalance())),
        ("total_flops".into(), Json::Num(report.total_flops() as f64)),
        ("mflops".into(), Json::Num(report.mflops())),
    ]);

    let workers = Json::Arr(
        report
            .worker_stats
            .iter()
            .enumerate()
            .map(|(i, w)| {
                Json::Obj(vec![
                    ("rank".into(), Json::Num((i + 1) as f64)),
                    ("modes".into(), Json::Num(w.modes as f64)),
                    ("busy_seconds".into(), Json::Num(w.busy_seconds)),
                    ("total_seconds".into(), Json::Num(w.total_seconds)),
                    (
                        "idle_seconds".into(),
                        Json::Num((w.total_seconds - w.busy_seconds).max(0.0)),
                    ),
                    ("bytes_sent".into(), Json::Num(w.bytes_sent as f64)),
                    ("bytes_received".into(), Json::Num(w.bytes_received as f64)),
                    ("steps_accepted".into(), Json::Num(w.steps_accepted as f64)),
                    ("steps_rejected".into(), Json::Num(w.steps_rejected as f64)),
                    ("rhs_evals".into(), Json::Num(w.rhs_evals as f64)),
                    ("ctx_rebuilds".into(), Json::Num(w.ctx_rebuilds as f64)),
                    (
                        "prefetch_builds".into(),
                        Json::Num(w.prefetch_builds as f64),
                    ),
                ])
            })
            .collect(),
    );

    let messages = Json::Arr(
        (0..TRACKED_TAGS)
            .filter(|&t| merged.sent_count[t] > 0 || merged.recv_count[t] > 0)
            .map(|t| {
                Json::Obj(vec![
                    ("tag".into(), Json::Num(t as f64)),
                    ("name".into(), Json::Str(tag_name(t).into())),
                    ("sent".into(), Json::Num(merged.sent_count[t] as f64)),
                    ("sent_bytes".into(), Json::Num(merged.sent_bytes[t] as f64)),
                    ("recv".into(), Json::Num(merged.recv_count[t] as f64)),
                    ("recv_bytes".into(), Json::Num(merged.recv_bytes[t] as f64)),
                ])
            })
            .collect(),
    );

    let latency = Json::Obj(vec![
        ("send_ns".into(), merged.send_ns.to_json()),
        ("recv_ns".into(), merged.recv_ns.to_json()),
    ]);

    let worker_of = |ik: usize| -> f64 {
        report
            .completion_log
            .iter()
            .find(|&&(i, _)| i == ik)
            .map(|&(_, w)| w as f64)
            .unwrap_or(-1.0)
    };
    // outputs hold the non-quarantined modes in grid order: recover each
    // one's true grid index by walking the grid and skipping quarantined
    // slots (on a clean run this is the identity)
    let quarantined: std::collections::HashSet<usize> =
        report.recovery.failed_modes.iter().map(|f| f.ik).collect();
    let nk_total = report.outputs.len() + quarantined.len();
    let grid_iks: Vec<usize> = (0..nk_total)
        .filter(|ik| !quarantined.contains(ik))
        .collect();
    let modes = Json::Arr(
        report
            .outputs
            .iter()
            .zip(&grid_iks)
            .map(|(o, &ik)| {
                Json::Obj(vec![
                    ("ik".into(), Json::Num(ik as f64)),
                    ("k".into(), Json::Num(o.k)),
                    ("worker".into(), Json::Num(worker_of(ik))),
                    ("cpu_seconds".into(), Json::Num(o.cpu_seconds)),
                    ("accepted".into(), Json::Num(o.stats.accepted as f64)),
                    ("rejected".into(), Json::Num(o.stats.rejected as f64)),
                    ("rhs_evals".into(), Json::Num(o.stats.rhs_evals as f64)),
                    ("rhs_flops".into(), Json::Num(o.stats.rhs_flops as f64)),
                    (
                        "stepper_flops".into(),
                        Json::Num(o.stats.stepper_flops as f64),
                    ),
                ])
            })
            .collect(),
    );

    let recovery = Json::Obj(vec![
        (
            "requeues".into(),
            Json::Num(report.recovery.requeues as f64),
        ),
        (
            "heartbeat_misses".into(),
            Json::Num(report.recovery.heartbeat_misses as f64),
        ),
        (
            "heartbeats".into(),
            Json::Num(report.recovery.heartbeats as f64),
        ),
        (
            "respawns".into(),
            Json::Num(report.recovery.respawns as f64),
        ),
        (
            "late_results".into(),
            Json::Num(report.recovery.late_results as f64),
        ),
        (
            "failed_modes".into(),
            Json::Arr(
                report
                    .recovery
                    .failed_modes
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("ik".into(), Json::Num(f.ik as f64)),
                            ("k".into(), Json::Num(f.k)),
                            ("attempts".into(), Json::Num(f.attempts as f64)),
                            ("reason".into(), Json::Str(f.reason.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    Json::Obj(vec![
        ("schema".into(), Json::Str("plinger.run_report/2".into())),
        ("run".into(), run),
        ("workers".into(), workers),
        ("messages".into(), messages),
        ("latency".into(), latency),
        ("modes".into(), modes),
        ("recovery".into(), recovery),
    ])
}

/// Render the run's telemetry as human-readable tables (the
/// `--telemetry pretty` output).
pub fn render_pretty(report: &FarmReport, transport: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let merged = report.telemetry.merged_comm();
    let _ = writeln!(
        out,
        "run: transport={transport} workers={} modes={} wall={:.3}s cpu={:.3}s idle={:.3}s",
        report.worker_stats.len(),
        report.outputs.len(),
        report.wall_seconds,
        report.total_cpu_seconds(),
        report.idle_seconds(),
    );
    let _ = writeln!(
        out,
        "     efficiency={:.1}% imbalance={:.3} rate={:.1} Mflop/s",
        report.parallel_efficiency() * 100.0,
        report.load_imbalance(),
        report.mflops(),
    );
    let _ = writeln!(
        out,
        "{:>5} {:>6} {:>10} {:>10} {:>10} {:>12} {:>9} {:>9}",
        "rank", "modes", "busy(s)", "total(s)", "idle(s)", "bytes_sent", "steps", "rhs_ev"
    );
    for (i, w) in report.worker_stats.iter().enumerate() {
        let _ = writeln!(
            out,
            "{:>5} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>12} {:>9} {:>9}",
            i + 1,
            w.modes,
            w.busy_seconds,
            w.total_seconds,
            (w.total_seconds - w.busy_seconds).max(0.0),
            w.bytes_sent,
            w.steps_accepted + w.steps_rejected,
            w.rhs_evals,
        );
    }
    if !report.recovery.is_clean() || report.recovery.heartbeats > 0 {
        let _ = writeln!(
            out,
            "recovery: requeues={} heartbeat_misses={} heartbeats={} respawns={} late={} quarantined={}",
            report.recovery.requeues,
            report.recovery.heartbeat_misses,
            report.recovery.heartbeats,
            report.recovery.respawns,
            report.recovery.late_results,
            report.recovery.failed_modes.len(),
        );
        for f in &report.recovery.failed_modes {
            let _ = writeln!(
                out,
                "  quarantined ik={} k={:.6e} after {} attempt(s): {}",
                f.ik, f.k, f.attempts, f.reason
            );
        }
    }
    if merged.total_sent() > 0 {
        let _ = writeln!(
            out,
            "{:>5} {:>8} {:>8} {:>12} {:>8} {:>12}",
            "tag", "name", "sent", "sent_bytes", "recv", "recv_bytes"
        );
        for t in 0..TRACKED_TAGS {
            if merged.sent_count[t] == 0 && merged.recv_count[t] == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>5} {:>8} {:>8} {:>12} {:>8} {:>12}",
                t,
                tag_name(t),
                merged.sent_count[t],
                merged.sent_bytes[t],
                merged.recv_count[t],
                merged.recv_bytes[t],
            );
        }
        let _ = writeln!(
            out,
            "comm: send mean={:.1}µs p99={:.1}µs · recv mean={:.1}µs p99={:.1}µs · spans={}",
            merged.send_ns.mean() / 1e3,
            merged.send_ns.quantile(0.99) as f64 / 1e3,
            merged.recv_ns.mean() / 1e3,
            merged.recv_ns.quantile(0.99) as f64 / 1e3,
            report.telemetry.spans.len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::json;

    #[test]
    fn tag_names_cover_protocol() {
        assert_eq!(tag_name(1), "init");
        assert_eq!(tag_name(7), "stats");
        assert_eq!(tag_name(9), "heartbeat");
        assert_eq!(tag_name(10), "newjob");
        assert_eq!(tag_name(11), "jobdone");
        assert_eq!(tag_name(15), "other");
    }

    #[test]
    fn empty_telemetry_snapshot_is_empty() {
        let t = FarmTelemetry::default();
        let s = t.snapshot();
        assert_eq!(s.counter("msgs_sent"), 0);
        assert!(s.spans.is_empty());
    }

    #[test]
    fn merged_comm_sums_ranks() {
        let mut a = CommSnapshot::default();
        a.sent_count[3] = 2;
        let mut b = CommSnapshot {
            rank: 1,
            ..CommSnapshot::default()
        };
        b.sent_count[3] = 5;
        let t = FarmTelemetry {
            comm: vec![a, b],
            spans: Vec::new(),
            master_idle_seconds: 0.0,
        };
        assert_eq!(t.merged_comm().sent_count[3], 7);
        assert_eq!(t.snapshot().counter("msgs_sent_tag3"), 7);
    }

    #[test]
    fn empty_report_builds_valid_json() {
        let rep = FarmReport {
            outputs: Vec::new(),
            wall_seconds: 0.0,
            worker_stats: Vec::new(),
            bytes_received: 0,
            completion_log: Vec::new(),
            telemetry: FarmTelemetry::default(),
            recovery: crate::recovery::RecoveryLog::default(),
        };
        let doc = build_run_report(&rep, "none");
        let text = doc.to_string();
        let back = json::parse(&text).unwrap();
        assert_eq!(
            back.get("schema").and_then(Json::as_str),
            Some("plinger.run_report/2")
        );
        assert_eq!(
            back.get("recovery")
                .and_then(|r| r.get("requeues"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            back.get("run")
                .and_then(|r| r.get("workers"))
                .and_then(Json::as_f64),
            Some(0.0)
        );
        assert!(render_pretty(&rep, "none").contains("workers=0"));
    }
}
