//! `plinger` — the parallel code: master/worker farm over wavenumbers.
//!
//! ```text
//! plinger --model scdm --nk 64 --workers 8 --output run1                 # threads
//! plinger --model scdm --nk 64 --workers 8 --transport shmem ...        # threads, shmem
//! plinger --model scdm --nk 64 --workers 4 --transport tcp --output r1  # processes
//! ```
//!
//! With `--transport tcp` (or the `--tcp` shorthand), the master spawns
//! `--workers` copies of itself as OS subprocesses (hidden
//! `--tcp-worker ADDR RANK SIZE` mode) connected over localhost TCP —
//! the multi-node deployment of the paper mapped onto one machine.
//! Outputs are identical to `linger`'s, mode for mode and bit for bit.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

use msgpass::channel::ChannelWorld;
use msgpass::shmem::ShmemWorld;
use plinger::cli::{parse, CliOptions, Parsed, TelemetryMode, TransportKind, USAGE};
use plinger::output_files::{write_ascii, write_binary, write_run_report, write_trace};
use plinger::{
    parse_worker_fault, render_pretty, run_tcp_processes, run_tcp_worker, Farm, FarmReport,
    SchedulePolicy, TcpFarmOptions,
};

/// Exit code used by scripted-fault workers so the master's respawn
/// logic can tell a deliberate vanish from a clean end-of-run exit.
const FAULT_EXIT: u8 = 42;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Parsed::TcpWorker(w)) => {
            let addr: std::net::SocketAddr = match w.addr.parse() {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("plinger[worker {}]: bad master address: {e}", w.rank);
                    return ExitCode::FAILURE;
                }
            };
            let fault = match w.fault.as_deref() {
                Some(s) => match parse_worker_fault(s) {
                    Some(f) => Some(f),
                    None => {
                        eprintln!("plinger[worker {}]: bad fault spec {s:?}", w.rank);
                        return ExitCode::FAILURE;
                    }
                },
                None => None,
            };
            // A vanish fault simulates a crash: exit with the marker
            // code so the master treats it as an abnormal exit worth a
            // replacement. Stall/failmode workers run to completion and
            // take the normal exit path.
            let vanish = matches!(fault, Some(plinger::WorkerFault::Vanish { .. }));
            match run_tcp_worker(addr, w.rank, w.size, fault) {
                Ok(()) if vanish => ExitCode::from(FAULT_EXIT),
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("plinger[worker {}]: {e}", w.rank);
                    ExitCode::FAILURE
                }
            }
        }
        Ok(Parsed::Run(opts)) => run_master(*opts),
        Err(msg) => {
            eprintln!("error: {msg}\n\nusage: plinger [options]\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_master(opts: CliOptions) -> ExitCode {
    if opts.telemetry == TelemetryMode::Off {
        telemetry::set_enabled(false);
    }
    opts.apply_log();
    let transport_name = match opts.transport {
        TransportKind::Channel => "channel threads",
        TransportKind::Shmem => "shmem threads",
        TransportKind::Tcp => "TCP processes",
    };
    let transport_tag = match opts.transport {
        TransportKind::Channel => "channel",
        TransportKind::Shmem => "shmem",
        TransportKind::Tcp => "tcp",
    };
    eprintln!(
        "plinger: {} modes on {} workers ({transport_name}), largest-k-first",
        opts.spec.ks.len(),
        opts.workers,
    );
    let t0 = std::time::Instant::now();
    let policy = SchedulePolicy::LargestFirst;
    let cfg = opts.master_config();
    let report: Result<FarmReport, _> = match opts.transport {
        TransportKind::Channel => Farm::<ChannelWorld>::new(opts.workers)
            .master_config(cfg)
            .run(&opts.spec, policy),
        TransportKind::Shmem => Farm::<ShmemWorld>::new(opts.workers)
            .master_config(cfg)
            .run(&opts.spec, policy),
        TransportKind::Tcp => match std::env::current_exe() {
            Ok(exe) => {
                let tcp_opts = TcpFarmOptions {
                    master: cfg,
                    respawn_limit: opts.respawn_limit,
                    fault: None,
                };
                run_tcp_processes(&opts.spec, policy, opts.workers, &exe, &tcp_opts)
            }
            Err(e) => {
                eprintln!("plinger: cannot locate own executable: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("plinger: farm failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "plinger: {:.2} s wall, {:.1} Mflop/s aggregate, efficiency {:.1}%",
        report.wall_seconds,
        report.mflops(),
        100.0 * report.parallel_efficiency()
    );
    if let Err(e) = write_ascii(
        format!("{}.linger", opts.output),
        &opts.spec,
        &report.outputs,
    ) {
        eprintln!("plinger: writing ASCII output failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_binary(format!("{}.lingerd", opts.output), &report.outputs) {
        eprintln!("plinger: writing binary output failed: {e}");
        return ExitCode::FAILURE;
    }
    if opts.telemetry != TelemetryMode::Off {
        match write_run_report(&opts.output, &report, transport_tag) {
            Ok((path, text)) => match opts.telemetry {
                TelemetryMode::Json => println!("{text}"),
                TelemetryMode::Pretty => {
                    print!("{}", render_pretty(&report, transport_tag));
                    eprintln!("plinger: run report written to {path}");
                }
                TelemetryMode::Off => unreachable!(),
            },
            Err(e) => {
                eprintln!("plinger: writing run report failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = write_trace(path, &report) {
            eprintln!("plinger: writing trace failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("plinger: chrome trace written to {path}");
    }
    eprintln!("plinger: total {:.2} s", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
