//! `plinger` — the parallel code: master/worker farm over wavenumbers.
//!
//! ```text
//! plinger --model scdm --nk 64 --workers 8 --output run1        # threads
//! plinger --model scdm --nk 64 --workers 4 --tcp --output run1  # processes
//! ```
//!
//! With `--tcp`, the master spawns `--workers` copies of itself as OS
//! subprocesses (hidden `--tcp-worker ADDR RANK SIZE` mode) connected
//! over localhost TCP — the multi-node deployment of the paper mapped
//! onto one machine.  Outputs are identical to `linger`'s, mode for
//! mode and bit for bit.

use msgpass::tcp::{connect_worker, PendingMaster};
use plinger::cli::{parse, Parsed, USAGE};
use plinger::output_files::{write_ascii, write_binary};
use plinger::{master_loop, run_parallel_channels, worker_loop, SchedulePolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Parsed::TcpWorker(w)) => {
            let addr: std::net::SocketAddr = w.addr.parse().expect("bad master address");
            let mut ep = connect_worker(addr, w.rank, w.size).expect("connect to master");
            let stats = worker_loop(&mut ep).expect("worker loop");
            eprintln!(
                "plinger[worker {}]: {} modes, {:.2} s busy",
                w.rank, stats.modes, stats.busy_seconds
            );
        }
        Ok(Parsed::Run(opts)) => run_master(*opts),
        Err(msg) => {
            eprintln!("error: {msg}\n\nusage: plinger [options]\n{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run_master(opts: plinger::cli::CliOptions) {
    eprintln!(
        "plinger: {} modes on {} workers ({}), largest-k-first",
        opts.spec.ks.len(),
        opts.workers,
        if opts.tcp { "TCP processes" } else { "threads" }
    );
    let t0 = std::time::Instant::now();
    let (outputs, wall, efficiency) = if opts.tcp {
        run_tcp(&opts)
    } else {
        let rep = run_parallel_channels(&opts.spec, SchedulePolicy::LargestFirst, opts.workers);
        let eff = rep.parallel_efficiency();
        (rep.outputs, rep.wall_seconds, eff)
    };
    let flops: u64 = outputs.iter().map(|o| o.stats.total_flops()).sum();
    eprintln!(
        "plinger: {wall:.2} s wall, {:.1} Mflop/s aggregate, efficiency {:.1}%",
        flops as f64 / wall / 1e6,
        100.0 * efficiency
    );
    write_ascii(format!("{}.linger", opts.output), &opts.spec, &outputs)
        .expect("write ascii output");
    write_binary(format!("{}.lingerd", opts.output), &outputs).expect("write binary output");
    eprintln!("plinger: total {:.2} s", t0.elapsed().as_secs_f64());
}

fn run_tcp(opts: &plinger::cli::CliOptions) -> (Vec<boltzmann::ModeOutput>, f64, f64) {
    let n = opts.workers;
    let pending = PendingMaster::bind(n).expect("bind master socket");
    let addr = pending.addr();
    let exe = std::env::current_exe().expect("current_exe");
    let children: Vec<std::process::Child> = (1..=n)
        .map(|rank| {
            std::process::Command::new(&exe)
                .args([
                    "--tcp-worker",
                    &addr.to_string(),
                    &rank.to_string(),
                    &(n + 1).to_string(),
                ])
                .spawn()
                .expect("spawn worker process")
        })
        .collect();
    let mut master = pending.accept_all().expect("accept workers");
    let t0 = std::time::Instant::now();
    let ledger =
        master_loop(&mut master, &opts.spec, SchedulePolicy::LargestFirst).expect("master loop");
    let wall = t0.elapsed().as_secs_f64();
    for mut c in children {
        c.wait().expect("worker exit");
    }
    let outputs: Vec<_> = ledger
        .outputs
        .into_iter()
        .map(|o| o.expect("mode complete"))
        .collect();
    let busy: f64 = outputs.iter().map(|o| o.cpu_seconds).sum();
    let eff = busy / (wall * n as f64);
    (outputs, wall, eff)
}
