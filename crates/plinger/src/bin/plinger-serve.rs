//! `plinger-serve` — spectrum-as-a-service over a warm farm pool.
//!
//! ```text
//! plinger-serve --listen 127.0.0.1:0 --workers 4                 # server
//! plinger-serve --connect 127.0.0.1:PORT --model lcdm --nk 16    # client
//! ```
//!
//! The server starts one [`plinger::FarmPool`] of resident workers and
//! accepts TCP connections, each speaking the length-prefixed
//! request/response frames of `docs/PROTOCOL.md` (the `msgpass` codec
//! framing, tags 20–29).  Requests for a k-grid already served come
//! straight out of the content-addressed result cache, bit for bit;
//! misses run as one pooled job on the warm workers.  Concurrent
//! connections are each handled on their own thread and multiplex onto
//! the single pool in arrival order.
//!
//! Request lifecycle robustness (docs/PROTOCOL.md §6):
//!
//! * **Deadlines** — a client `--deadline-ms` rides the tag-20 frame;
//!   an expired request is refused up front or cancelled mid-job via
//!   the cooperative tag-12 path, freeing the ranks for later work.
//! * **Admission control** — more than `--queue-limit` requests in
//!   flight are shed with a typed `busy` frame carrying a retry hint.
//! * **Graceful drain** — `SIGTERM`/`SIGINT` (or `--max-requests`)
//!   stops the accept loop, flips `/healthz` to not-ready, finishes
//!   the in-flight queue bounded by `--drain-timeout`, cancels any
//!   stragglers, and exits 0.
//! * **Crash-safe cache** — with `--cache-dir` every result is also an
//!   atomically-written checksummed file, so a restarted server serves
//!   prior jobs from disk, bitwise identical.
//!
//! The client parses the same cosmology/grid flags as `linger` and
//! `plinger`, sends one spectrum request, and prints a one-line summary
//! whose `fnv=` field hashes the response body's exact bit patterns —
//! two invocations print the same hash exactly when the service
//! answered with identical bits.  Retryable refusals (`busy`,
//! `shutting-down`, connect failures) are retried with capped
//! exponential backoff and deterministic jitter, honoring the server's
//! `retry_after_ms` hint.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use msgpass::channel::ChannelWorld;
use msgpass::shmem::ShmemWorld;
use msgpass::{codec, Message, World};
use plinger::cli::{
    EnsembleArgs, FarmArgs, FarmSettings, ServeArgs, ServeSettings, SpecArgs, TransportKind,
};
use plinger::master::MasterConfig;
use plinger::output_files::write_run_report;
use plinger::pool::PoolOptions;
use plinger::service::{
    EnsembleRequest, EnsembleSummary, ErrorCode, ResultCache, ServiceError, ServiceMetrics,
    ShardReply, SpectrumRequest, TAG_REQ_ENSEMBLE, TAG_REQ_METRICS, TAG_REQ_SPECTRUM,
    TAG_RESP_ENSEMBLE, TAG_RESP_ERROR, TAG_RESP_METRICS, TAG_RESP_SHARD, TAG_RESP_SPECTRUM,
};
use plinger::{
    hash_reals, job_hash, CancelReason, FarmError, FarmPool, FaultPlan, JobControl, SchedulePolicy,
    SpecDecodeError, SpectrumService,
};
use telemetry::expo;
use telemetry::log::{self as tlog, Level};

/// Flight-recorder events dumped per failing job.
const FLIGHT_DUMP_EVENTS: usize = 256;

/// Idle-accept poll interval while waiting for connections.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Poll interval of the drain wait loop.
const DRAIN_POLL: Duration = Duration::from_millis(10);

/// Per-connection read timeout, so handlers blocked between frames
/// notice a drain instead of wedging the shutdown on a silent peer.
const READ_POLL: Duration = Duration::from_millis(200);

/// Retry hint per excess queued request when shedding, ms.
const SHED_RETRY_STEP_MS: u64 = 50;

/// Hard cap on any retry hint or client backoff delay, ms.
const RETRY_CAP_MS: u64 = 2000;

/// Client retry attempts after the first try (`--retries`).
const DEFAULT_RETRIES: u32 = 5;

/// Client backoff base delay (`--retry-base-ms`).
const DEFAULT_RETRY_BASE_MS: u64 = 50;

const USAGE: &str = "\
usage:
  plinger-serve --listen ADDR [server options]
  plinger-serve --connect ADDR [spectrum options]

server options:
  --listen ADDR             bind address (port 0 picks one; the bound
                            address is printed on startup)
  --metrics-addr ADDR       also serve HTTP GET /metrics (Prometheus
                            text) and /healthz on this address
  --workers N               resident pool workers            [cores]
  --transport channel|shmem pool transport                   [channel]
  --max-requests N          drain after N connections        [serve forever]
  --queue-limit N           shed requests past N in flight   [64]
  --cache-dir DIR           crash-safe result cache directory
  --report-dir DIR          write a run_report JSON per cache miss
  --recovery MODE           failfast|requeue                 [requeue]
  --max-attempts N          dispatches per mode before quarantine [2]
  --poll MS / --drain-timeout MS / --heartbeat-timeout MS
  --respawn-limit N         pooled worker respawn budget     [2]
  --chunk N                 modes per assignment message     [1]
  --log LEVEL[,json]        structured events on stderr
                            (error|warn|info|debug)          [off]
SIGTERM/SIGINT drain gracefully: stop accepting, finish the queue
(bounded by --drain-timeout), then exit 0.

spectrum options (client): the same cosmology/grid flags as linger —
  --model, --h, --omega-b, --omega-c, --omega-lambda, --m-nu, --n-s,
  --gauge, --ic, --preset, --kmin, --kmax, --nk, --lmax, --tau-end
plus:
  --metrics                 also query service counters
  --deadline-ms MS          give the server a time budget; an expired
                            request is cancelled, not finished
  --retries N               retry busy/shutting-down refusals [5]
  --retry-base-ms MS        backoff base delay                [50]
  --ensemble                sweep mode: send one tag-22 ensemble request
                            built from the axes below (the base
                            cosmology flags fill the non-swept fields)
  --sweep-omega-b LIST      comma-separated Ω_b axis   [base value]
  --sweep-h LIST            comma-separated h axis     [base value]
  --sweep-ns LIST           comma-separated n_s axis   [base value]
In --ensemble mode the client prints one `shard=i/N cache_hit=…
outputs=… fnv=…` line per tag-23 frame and a final `ensemble …`
summary line from the tag-24 terminator.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .position(|a| a == "--listen" || a == "--connect");
    let result = match mode.map(|i| args[i].as_str()) {
        Some("--listen") => server_main(&args),
        Some("--connect") => client_main(&args),
        _ => Err("need --listen ADDR (server) or --connect ADDR (client)".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

// ------------------------------------------------------------- signals

/// Drain trigger: set by the SIGTERM/SIGINT handler, polled by the
/// accept loop.
static TERM: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Route SIGTERM and SIGINT into the [`TERM`] flag so the accept loop
/// can drain instead of the process dying mid-request.
fn install_term_handler() {
    // SAFETY: `on_term` only stores to a static atomic, which is
    // async-signal-safe, and `signal` is the libc prototype.
    let handler = on_term as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

// ---------------------------------------------------------------- server

fn server_main(args: &[String]) -> Result<(), String> {
    let mut farm = FarmArgs::default();
    let mut serve_args = ServeArgs::default();
    let mut fault = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if farm.try_flag(flag, &mut it)? || serve_args.try_flag(flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            // hidden, test-only: script a fault into the initial workers
            "--fault" => {
                let spec = it.next().ok_or("--fault needs a value")?;
                fault = Some(
                    parse_fault_plan(spec).ok_or_else(|| format!("bad --fault value {spec}"))?,
                )
            }
            other => return Err(format!("unknown server flag {other}")),
        }
    }
    let settings = farm.build()?;
    let cfg = serve_args.build()?;
    settings.apply_log();
    install_term_handler();
    match settings.transport {
        TransportKind::Channel => serve::<ChannelWorld>(&settings, &cfg, fault),
        TransportKind::Shmem => serve::<ShmemWorld>(&settings, &cfg, fault),
        TransportKind::Tcp => {
            Err("plinger-serve pools thread transports; use --transport channel|shmem".into())
        }
    }
}

/// Parse the hidden `--fault` spec: `drop:RANK:AFTER`,
/// `stall:RANK:AFTER:MS`, or `failmode:IK` (ranks 1-based).
fn parse_fault_plan(s: &str) -> Option<FaultPlan> {
    let mut parts = s.split(':');
    match parts.next()? {
        "drop" => Some(FaultPlan::DropWorker {
            rank: parts.next()?.parse().ok()?,
            after_modes: parts.next()?.parse().ok()?,
        }),
        "stall" => Some(FaultPlan::StallWorker {
            rank: parts.next()?.parse().ok()?,
            after_modes: parts.next()?.parse().ok()?,
            stall: Duration::from_millis(parts.next()?.parse().ok()?),
        }),
        "failmode" => Some(FaultPlan::FailMode {
            ik: parts.next()?.parse().ok()?,
        }),
        _ => None,
    }
}

/// Request-lifecycle state shared between the accept loop and the
/// connection handlers.
struct ServeState {
    /// Reference point for the drain deadline arithmetic.
    start: Instant,
    /// Set once the server stops accepting (a drain has begun).
    draining: AtomicBool,
    /// Set when the drain deadline passes: every in-flight pool job's
    /// [`JobControl`] points here, so stragglers cancel cooperatively.
    hard_cancel: AtomicBool,
    /// Live connection handlers; the drain waits for zero.
    active: AtomicU64,
    /// Drain deadline as ms after `start` (0 = no drain yet).
    drain_deadline_ms: AtomicU64,
}

impl ServeState {
    fn new() -> Self {
        Self {
            start: Instant::now(),
            draining: AtomicBool::new(false),
            hard_cancel: AtomicBool::new(false),
            active: AtomicU64::new(0),
            drain_deadline_ms: AtomicU64::new(0),
        }
    }

    /// Stop admitting new connections and set the drain deadline.
    fn begin_drain(&self, timeout: Duration) {
        let deadline = (self.start.elapsed() + timeout).as_millis() as u64;
        // +1 so a zero-timeout drain still records a nonzero deadline
        self.drain_deadline_ms
            .store(deadline.max(1), Ordering::SeqCst);
        self.draining.store(true, Ordering::SeqCst);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// True once the drain window is exhausted: outstanding requests
    /// are refused and running jobs get cancelled.
    fn past_drain_deadline(&self) -> bool {
        let d = self.drain_deadline_ms.load(Ordering::SeqCst);
        d != 0 && self.start.elapsed().as_millis() as u64 >= d
    }
}

fn serve<W: World>(
    settings: &FarmSettings,
    cfg: &ServeSettings,
    fault: Option<FaultPlan>,
) -> Result<(), String> {
    let pool = FarmPool::<W>::start_with(
        settings.workers,
        settings.master_config(),
        PoolOptions {
            respawn_limit: settings.respawn_limit,
            fault,
        },
    )
    .map_err(|e| format!("starting pool failed: {e}"))?;
    let n_workers = pool.n_workers();
    let cache = match cfg.cache_dir.as_ref() {
        Some(dir) => ResultCache::with_dir(dir)
            .map_err(|e| format!("opening cache dir {} failed: {e}", dir.display()))?,
        None => ResultCache::new(),
    };
    let service = SpectrumService::with_cache(pool, SchedulePolicy::LargestFirst, cache);
    let metrics = service.metrics();
    let service = Mutex::new(service);

    let listen = cfg.listen.as_str();
    let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen} failed: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?;
    // the startup line scripts parse to learn the ephemeral port; the
    // metrics line (if any) must come after it
    println!("plinger-serve: listening on {addr}");
    if let Some(maddr) = cfg.metrics_addr.as_deref() {
        let mlistener =
            TcpListener::bind(maddr).map_err(|e| format!("bind {maddr} failed: {e}"))?;
        let maddr = mlistener
            .local_addr()
            .map_err(|e| format!("metrics local_addr failed: {e}"))?;
        println!("plinger-serve: metrics on {maddr}");
        let scrape = Arc::clone(&metrics);
        let queue_limit = cfg.queue_limit;
        // detached: the scrape endpoint only touches the shared metrics
        // handle, never the service lock, and dies with the process
        std::thread::spawn(move || serve_metrics(mlistener, &scrape, queue_limit));
    }
    eprintln!(
        "plinger-serve: pool of {} {} workers warm",
        settings.workers,
        W::NAME
    );

    // non-blocking accepts so the loop can poll the TERM flag
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking failed: {e}"))?;
    let state = ServeState::new();
    let drain_timeout = settings
        .drain_timeout
        .unwrap_or(MasterConfig::default().drain_timeout);

    let transport_tag = W::NAME;
    let dir = cfg.report_dir.as_deref();
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating report dir {} failed: {e}", dir.display()))?;
    }
    std::thread::scope(|scope| -> Result<(), String> {
        let mut accepted = 0usize;
        loop {
            if TERM.load(Ordering::SeqCst) {
                tlog::log(Level::Warn, "serve", "drain_signal", &[]);
                break;
            }
            if cfg.max_requests > 0 && accepted >= cfg.max_requests {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    accepted += 1;
                    // blocking per-connection I/O, but with a poll-sized
                    // read timeout so handlers notice a drain
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_read_timeout(Some(READ_POLL));
                    state.active.fetch_add(1, Ordering::SeqCst);
                    let service = &service;
                    let metrics = &*metrics;
                    let state = &state;
                    let queue_limit = cfg.queue_limit;
                    scope.spawn(move || {
                        if let Err(e) = handle_connection(
                            stream,
                            service,
                            metrics,
                            state,
                            queue_limit,
                            n_workers,
                            dir,
                            transport_tag,
                        ) {
                            eprintln!("plinger-serve: connection error: {e}");
                        }
                        state.active.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => return Err(format!("accept failed: {e}")),
            }
        }
        // graceful drain: stop accepting, finish the in-flight queue
        // bounded by the drain timeout, then cancel stragglers
        state.begin_drain(drain_timeout);
        metrics.set_draining(true);
        tlog::log(
            Level::Warn,
            "serve",
            "drain_begin",
            &[
                ("active", state.active.load(Ordering::SeqCst).to_string()),
                ("timeout_ms", drain_timeout.as_millis().to_string()),
            ],
        );
        while state.active.load(Ordering::SeqCst) > 0 && !state.past_drain_deadline() {
            std::thread::sleep(DRAIN_POLL);
        }
        let leftover = state.active.load(Ordering::SeqCst);
        if leftover > 0 {
            // cooperative kill switch: every running job's JobControl
            // watches this flag, and idle connections time out closed
            state.hard_cancel.store(true, Ordering::SeqCst);
            tlog::log(
                Level::Warn,
                "serve",
                "drain_forced",
                &[("active", leftover.to_string())],
            );
        }
        Ok(())
        // scope exit joins every remaining connection handler
    })?;
    tlog::log(Level::Info, "serve", "drain_done", &[]);

    let service = service
        .into_inner()
        .map_err(|_| "service lock poisoned".to_string())?;
    println!(
        "plinger-serve: served {} requests, cache hits={} misses={}, pool jobs={}",
        service.requests(),
        service.cache().hits(),
        service.cache().misses(),
        service.pool().jobs_run(),
    );
    service.shutdown();
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn handle_connection<W: World>(
    mut stream: TcpStream,
    service: &Mutex<SpectrumService<W>>,
    metrics: &ServiceMetrics,
    state: &ServeState,
    queue_limit: u64,
    n_workers: usize,
    report_dir: Option<&Path>,
    transport_tag: &str,
) -> Result<(), String> {
    let mut buf = BytesMut::new();
    let mut served = 0usize;
    loop {
        let msg = match read_frame(&mut stream, &mut buf)? {
            FrameRead::Frame(msg) => msg,
            FrameRead::Eof => return Ok(()),
            FrameRead::TimedOut => {
                // a keep-alive lull: during a drain, idle connections
                // that already got an answer are closed so the join
                // can't wedge on a silent peer; fresh connections get
                // until the drain deadline to speak
                if state.draining() && (served > 0 || state.past_drain_deadline()) {
                    return Ok(());
                }
                continue;
            }
        };
        match msg.tag {
            TAG_REQ_SPECTRUM => {
                let reply = if state.draining() && state.past_drain_deadline() {
                    // the drain window is spent: anything still asking
                    // is refused so the process can exit
                    Err(ServiceError::new(
                        ErrorCode::ShuttingDown,
                        "server is draining",
                    ))
                } else {
                    let depth = metrics.enter_queue();
                    if depth > queue_limit {
                        metrics.leave_queue();
                        Err(shed(metrics, depth, queue_limit))
                    } else {
                        answer_spectrum(
                            service,
                            metrics,
                            state,
                            &msg.data,
                            report_dir,
                            transport_tag,
                        )
                    }
                };
                served += 1;
                match reply {
                    Ok(payload) => send_frame(&mut stream, TAG_RESP_SPECTRUM, &payload)?,
                    Err(err) => send_frame(&mut stream, TAG_RESP_ERROR, &err.encode())?,
                }
            }
            TAG_REQ_ENSEMBLE => {
                if state.draining() && state.past_drain_deadline() {
                    let err = ServiceError::new(ErrorCode::ShuttingDown, "server is draining");
                    send_frame(&mut stream, TAG_RESP_ERROR, &err.encode())?;
                } else {
                    let depth = metrics.enter_queue();
                    if depth > queue_limit {
                        metrics.leave_queue();
                        let err = shed(metrics, depth, queue_limit);
                        send_frame(&mut stream, TAG_RESP_ERROR, &err.encode())?;
                    } else {
                        answer_ensemble(&mut stream, service, metrics, state, &msg.data)?;
                    }
                }
                served += 1;
            }
            // answered off the shared metrics handle, never the service
            // lock: a scrape during a long job must not block
            TAG_REQ_METRICS => send_frame(
                &mut stream,
                TAG_RESP_METRICS,
                &metrics.wire_payload(n_workers),
            )?,
            other => {
                let err = ServiceError::new(
                    ErrorCode::BadRequest,
                    format!("unknown request tag {other}"),
                );
                send_frame(&mut stream, TAG_RESP_ERROR, &err.encode())?;
            }
        }
    }
}

/// Refuse one over-limit request: count it, log it, and build the
/// typed `busy` frame whose retry hint scales with the excess load.
fn shed(metrics: &ServiceMetrics, depth: u64, queue_limit: u64) -> ServiceError {
    let excess = depth.saturating_sub(queue_limit);
    let retry_after_ms = (SHED_RETRY_STEP_MS * excess.max(1)).min(RETRY_CAP_MS);
    metrics.requests_shed.inc();
    tlog::log(
        Level::Warn,
        "service",
        "request_shed",
        &[
            ("queue_depth", depth.to_string()),
            ("queue_limit", queue_limit.to_string()),
            ("retry_after_ms", retry_after_ms.to_string()),
        ],
    );
    let mut err = ServiceError::new(
        ErrorCode::Busy,
        format!("queue full ({depth} requests in flight, limit {queue_limit})"),
    );
    err.retry_after_ms = retry_after_ms;
    err
}

/// Serve one spectrum request end to end, recording queue-wait, run,
/// and total latency plus the request-scoped log events.  The caller
/// has already counted the request into the queue; every path out of
/// here leaves it.
fn answer_spectrum<W: World>(
    service: &Mutex<SpectrumService<W>>,
    metrics: &ServiceMetrics,
    state: &ServeState,
    data: &[f64],
    report_dir: Option<&Path>,
    transport_tag: &str,
) -> Result<Vec<f64>, ServiceError> {
    let t_accept = Instant::now();
    let finish = || {
        metrics.leave_queue();
        metrics.total_ns.record(elapsed_ns(t_accept));
    };

    let req = match SpectrumRequest::decode(data) {
        Ok(req) => req,
        Err(e) => {
            let text = spec_error_text(&e);
            metrics.errors.inc();
            tlog::log(
                Level::Error,
                "service",
                "request_failed",
                &[("error", text.clone())],
            );
            finish();
            return Err(ServiceError::new(ErrorCode::BadRequest, text));
        }
    };
    let deadline = req
        .deadline_ms
        .map(|ms| t_accept + Duration::from_secs_f64(ms / 1e3));
    let key = job_hash(&req.spec);
    let job = tlog::job_hex(key);
    tlog::log(
        Level::Info,
        "service",
        "request_accepted",
        &[
            ("job", job.clone()),
            ("queue_depth", metrics.queue_depth().to_string()),
            (
                "deadline_ms",
                req.deadline_ms
                    .map_or("none".into(), |ms| format!("{ms:.0}")),
            ),
        ],
    );

    let Ok(mut svc) = service.lock() else {
        metrics.errors.inc();
        finish();
        return Err(ServiceError::new(
            ErrorCode::Internal,
            "service lock poisoned",
        ));
    };
    metrics.queue_wait_ns.record(elapsed_ns(t_accept));
    let ctrl = JobControl {
        deadline,
        cancel: Some(&state.hard_cancel),
    };
    let t_run = Instant::now();
    let outcome = svc.handle_with(&req.spec, &ctrl);
    let requests = svc.requests();
    drop(svc);
    metrics.run_ns.record(elapsed_ns(t_run));
    finish();

    let reply = match outcome {
        Ok(reply) => reply,
        Err(e) => {
            metrics.errors.inc();
            let (code, is_cancel) = match &e {
                FarmError::Cancelled { reason, .. } => (
                    match reason {
                        CancelReason::DeadlineExceeded => ErrorCode::DeadlineExceeded,
                        CancelReason::Cancelled => ErrorCode::Cancelled,
                    },
                    true,
                ),
                _ => (ErrorCode::Internal, false),
            };
            let text = if is_cancel {
                e.to_string()
            } else {
                format!("farm failed: {e}")
            };
            tlog::log(
                Level::Error,
                "service",
                "request_failed",
                &[("job", job.clone()), ("error", text.clone())],
            );
            // a cancel is deliberate — only real failures dump evidence
            if !is_cancel {
                write_flight_dump(report_dir, key, &job);
            }
            return Err(ServiceError::new(code, text));
        }
    };
    if let Some(report) = reply.report.as_ref() {
        // quarantined modes mean the answer is incomplete: keep the
        // evidence even though the request itself succeeded
        if !report.recovery.failed_modes.is_empty() {
            write_flight_dump(report_dir, key, &job);
        }
        if let Some(dir) = report_dir {
            let prefix = dir
                .join(format!("req{:04}_{:016x}", requests, reply.key))
                .to_string_lossy()
                .into_owned();
            match write_run_report(&prefix, report, transport_tag) {
                Ok((path, _)) => eprintln!("plinger-serve: run report written to {path}"),
                Err(e) => eprintln!("plinger-serve: writing run report failed: {e}"),
            }
        }
    }
    tlog::log(
        Level::Info,
        "service",
        "request_done",
        &[
            ("job", job),
            ("cache_hit", u8::from(reply.cache_hit).to_string()),
            (
                "wall_ms",
                format!("{:.3}", t_accept.elapsed().as_secs_f64() * 1e3),
            ),
        ],
    );
    let mut payload = Vec::with_capacity(1 + reply.body.len());
    payload.push(if reply.cache_hit { 1.0 } else { 0.0 });
    payload.extend_from_slice(&reply.body);
    Ok(payload)
}

/// Serve one ensemble request: stream a [`TAG_RESP_SHARD`] frame per
/// shard as the service finishes it (cache hits arrive immediately;
/// misses after their pool job), then the [`TAG_RESP_ENSEMBLE`]
/// terminator — or a [`TAG_RESP_ERROR`], which ends the stream.  The
/// caller has already counted the request into the queue; every path
/// out of here leaves it.
fn answer_ensemble<W: World>(
    stream: &mut TcpStream,
    service: &Mutex<SpectrumService<W>>,
    metrics: &ServiceMetrics,
    state: &ServeState,
    data: &[f64],
) -> Result<(), String> {
    let t_accept = Instant::now();
    let finish = || {
        metrics.leave_queue();
        metrics.total_ns.record(elapsed_ns(t_accept));
    };
    let req = match EnsembleRequest::decode(data) {
        Ok(req) => req,
        Err(e) => {
            let text = format!("bad ensemble request: {e}");
            metrics.errors.inc();
            tlog::log(
                Level::Error,
                "service",
                "request_failed",
                &[("error", text.clone())],
            );
            finish();
            let err = ServiceError::new(ErrorCode::BadRequest, text);
            return send_frame(stream, TAG_RESP_ERROR, &err.encode());
        }
    };
    let deadline = req
        .deadline_ms
        .map(|ms| t_accept + Duration::from_secs_f64(ms / 1e3));
    let Ok(mut svc) = service.lock() else {
        metrics.errors.inc();
        finish();
        let err = ServiceError::new(ErrorCode::Internal, "service lock poisoned");
        return send_frame(stream, TAG_RESP_ERROR, &err.encode());
    };
    metrics.queue_wait_ns.record(elapsed_ns(t_accept));
    let ctrl = JobControl {
        deadline,
        cancel: Some(&state.hard_cancel),
    };
    let t_run = Instant::now();
    let outcome = svc.handle_ensemble_with(&req.ens, &ctrl, |r: &ShardReply| {
        send_frame(stream, TAG_RESP_SHARD, &r.frame())
            .map_err(|detail| FarmError::Protocol { rank: 0, detail })
    });
    drop(svc);
    metrics.run_ns.record(elapsed_ns(t_run));
    finish();
    match outcome {
        Ok(summary) => send_frame(stream, TAG_RESP_ENSEMBLE, &summary.frame()),
        Err(FarmError::Protocol { detail, .. }) => {
            // the stream itself failed: nothing more can be sent
            Err(detail)
        }
        Err(e) => {
            metrics.errors.inc();
            let code = match &e {
                FarmError::Cancelled { reason, .. } => match reason {
                    CancelReason::DeadlineExceeded => ErrorCode::DeadlineExceeded,
                    CancelReason::Cancelled => ErrorCode::Cancelled,
                },
                _ => ErrorCode::Internal,
            };
            let err = ServiceError::new(code, format!("ensemble failed: {e}"));
            send_frame(stream, TAG_RESP_ERROR, &err.encode())
        }
    }
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos() as u64
}

/// Dump the flight recorder's last events for `key` next to the run
/// reports, so a failed or degraded job leaves its story behind.
fn write_flight_dump(report_dir: Option<&Path>, key: u64, job: &str) {
    let Some(dir) = report_dir else { return };
    let events = tlog::for_job(key, FLIGHT_DUMP_EVENTS);
    let path = dir.join(format!("flight_{job}.jsonl"));
    match std::fs::write(&path, tlog::render_flight_dump(&events)) {
        Ok(()) => {
            tlog::log(
                Level::Warn,
                "service",
                "flight_dump",
                &[
                    ("job", job.to_string()),
                    ("events", events.len().to_string()),
                    ("path", path.display().to_string()),
                ],
            );
            eprintln!(
                "plinger-serve: flight recorder dump ({} events) written to {}",
                events.len(),
                path.display()
            );
        }
        Err(e) => eprintln!("plinger-serve: writing flight dump failed: {e}"),
    }
}

// ----------------------------------------------------------- /metrics

/// Read a request head up to its blank line (requests can arrive
/// split across arbitrarily many segments), bounded at 4 kB.
fn read_http_head(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= 4096 {
            return None;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    Some(String::from_utf8_lossy(&head).into_owned())
}

/// Answer Prometheus scrapes and health probes on a dedicated
/// listener: strictly GET, one request per connection, HTTP/1.0.
fn serve_metrics(listener: TcpListener, metrics: &ServiceMetrics, queue_limit: u64) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let Some(head) = read_http_head(&mut stream) else {
            continue;
        };
        let response = match expo::parse_http_get(&head) {
            Some("/metrics") => expo::http_response(
                200,
                "OK",
                "text/plain; version=0.0.4",
                &telemetry::render_prometheus(&metrics.snapshot(), "plinger"),
            ),
            Some("/healthz") => {
                // not-ready the instant a drain begins, so load
                // balancers stop routing before the listener closes
                let ready = metrics.workers_alive() >= 1
                    && metrics.queue_depth() < queue_limit
                    && !metrics.draining();
                if ready {
                    expo::http_response(200, "OK", "text/plain", "ok\n")
                } else {
                    expo::http_response(503, "Service Unavailable", "text/plain", "not ready\n")
                }
            }
            Some(_) => expo::http_response(404, "Not Found", "text/plain", "not found\n"),
            None => expo::http_response(405, "Method Not Allowed", "text/plain", "GET only\n"),
        };
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

fn spec_error_text(e: &SpecDecodeError) -> String {
    format!("bad spectrum request: {e:?}")
}

// ---------------------------------------------------------------- client

/// Why a client attempt did not produce a spectrum.
enum ClientError {
    /// Transient refusal (busy, shutting down, connect failure):
    /// worth retrying after `hint_ms`.
    Retryable { hint_ms: u64, what: String },
    /// A real failure; retrying would just repeat it.
    Fatal(String),
}

fn client_main(args: &[String]) -> Result<(), String> {
    let mut spec = SpecArgs::default();
    let mut connect = None;
    let mut want_metrics = false;
    let mut deadline_ms: Option<f64> = None;
    let mut retries = DEFAULT_RETRIES;
    let mut retry_base_ms = DEFAULT_RETRY_BASE_MS;
    let mut ens_args = EnsembleArgs::default();

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if spec.try_flag(flag, &mut it)? || ens_args.try_flag(flag, &mut it)? {
            continue;
        }
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--connect" => connect = Some(val()?.clone()),
            "--metrics" => want_metrics = true,
            "--deadline-ms" => {
                let ms: f64 = val()?
                    .parse()
                    .map_err(|_| "bad --deadline-ms value".to_string())?;
                deadline_ms = (ms > 0.0).then_some(ms);
            }
            "--retries" => {
                retries = val()?
                    .parse()
                    .map_err(|_| "bad --retries value".to_string())?
            }
            "--retry-base-ms" => {
                retry_base_ms = val()?
                    .parse()
                    .map_err(|_| "bad --retry-base-ms value".to_string())?
            }
            other => return Err(format!("unknown client flag {other}")),
        }
    }
    let addr = connect.ok_or("--connect needs a value")?;
    let base = spec.build()?;
    if let Some(ens) = ens_args.build(base.clone())? {
        let request = EnsembleRequest { ens, deadline_ms };
        let key = plinger::ensemble_hash(&request.ens);
        let mut attempt = 0u32;
        loop {
            match client_ensemble_once(&addr, &request) {
                Ok(()) => return Ok(()),
                Err(ClientError::Fatal(msg)) => return Err(msg),
                Err(ClientError::Retryable { hint_ms, what }) => {
                    if attempt >= retries {
                        return Err(format!("giving up after {} attempts: {what}", attempt + 1));
                    }
                    let delay = backoff_ms(key, attempt, retry_base_ms, hint_ms);
                    eprintln!(
                        "plinger-serve: attempt {} refused ({what}); retrying in {delay} ms",
                        attempt + 1
                    );
                    std::thread::sleep(Duration::from_millis(delay));
                    attempt += 1;
                }
            }
        }
    }
    let request = SpectrumRequest {
        spec: base,
        deadline_ms,
    };
    let key = job_hash(&request.spec);

    let mut attempt = 0u32;
    loop {
        match client_once(&addr, &request, want_metrics) {
            Ok(()) => return Ok(()),
            Err(ClientError::Fatal(msg)) => return Err(msg),
            Err(ClientError::Retryable { hint_ms, what }) => {
                if attempt >= retries {
                    return Err(format!("giving up after {} attempts: {what}", attempt + 1));
                }
                let delay = backoff_ms(key, attempt, retry_base_ms, hint_ms);
                eprintln!(
                    "plinger-serve: attempt {} refused ({what}); retrying in {delay} ms",
                    attempt + 1
                );
                std::thread::sleep(Duration::from_millis(delay));
                attempt += 1;
            }
        }
    }
}

/// One connect-send-receive attempt of an ensemble sweep: send the
/// tag-22 request, print one line per tag-23 shard frame, finish on the
/// tag-24 summary.
fn client_ensemble_once(addr: &str, request: &EnsembleRequest) -> Result<(), ClientError> {
    let retryable = |what: String| ClientError::Retryable { hint_ms: 0, what };
    let mut stream =
        TcpStream::connect(addr).map_err(|e| retryable(format!("connect {addr} failed: {e}")))?;
    let mut buf = BytesMut::new();
    send_frame(&mut stream, TAG_REQ_ENSEMBLE, &request.encode()).map_err(&retryable)?;
    let mut shards_seen = 0usize;
    loop {
        let msg = match read_frame(&mut stream, &mut buf) {
            Ok(FrameRead::Frame(msg)) => msg,
            Ok(FrameRead::Eof) => {
                return Err(retryable(format!(
                    "server closed the stream after {shards_seen} shard(s)"
                )))
            }
            Ok(FrameRead::TimedOut) => continue, // shards can take a while
            Err(e) => return Err(ClientError::Fatal(e)),
        };
        match msg.tag {
            TAG_RESP_SHARD => {
                let shard = ShardReply::decode_frame(&msg.data).map_err(ClientError::Fatal)?;
                let (outputs, wall) = decode_body(&shard.body)?;
                println!(
                    "shard={}/{} cache_hit={} outputs={} wall={:.6} fnv={:016x}",
                    shard.shard,
                    shard.n_shards,
                    u8::from(shard.cache_hit),
                    outputs,
                    wall,
                    hash_reals(&shard.body),
                );
                shards_seen += 1;
            }
            TAG_RESP_ENSEMBLE => {
                let summary =
                    EnsembleSummary::decode_frame(&msg.data).map_err(ClientError::Fatal)?;
                println!(
                    "ensemble shards={} ok={} hits={} wall={:.6}",
                    summary.n_shards, summary.n_ok, summary.cache_hits, summary.wall_seconds,
                );
                return Ok(());
            }
            TAG_RESP_ERROR => {
                let err = ServiceError::decode(&msg.data);
                return Err(match err.code {
                    ErrorCode::Busy | ErrorCode::ShuttingDown => ClientError::Retryable {
                        hint_ms: err.retry_after_ms,
                        what: err.to_string(),
                    },
                    _ => ClientError::Fatal(format!("server error: {err}")),
                });
            }
            other => {
                return Err(ClientError::Fatal(format!(
                    "unexpected response tag {other}"
                )))
            }
        }
    }
}

/// Capped exponential backoff with deterministic jitter: the server's
/// `retry_after_ms` hint wins when it is longer, and the jitter is a
/// pure function of (job key, attempt) so reruns are reproducible.
fn backoff_ms(key: u64, attempt: u32, base_ms: u64, hint_ms: u64) -> u64 {
    let exp = base_ms
        .saturating_mul(1u64 << attempt.min(10))
        .min(RETRY_CAP_MS);
    let delay = exp.max(hint_ms).min(RETRY_CAP_MS);
    let jitter = hash_reals(&[key as f64, f64::from(attempt)]) % (delay / 4 + 1);
    delay + jitter
}

/// One connect-send-receive attempt against the server.
fn client_once(
    addr: &str,
    request: &SpectrumRequest,
    want_metrics: bool,
) -> Result<(), ClientError> {
    let retryable = |what: String| ClientError::Retryable { hint_ms: 0, what };
    let mut stream =
        TcpStream::connect(addr).map_err(|e| retryable(format!("connect {addr} failed: {e}")))?;
    let mut buf = BytesMut::new();

    send_frame(&mut stream, TAG_REQ_SPECTRUM, &request.encode()).map_err(&retryable)?;
    let msg = match read_frame(&mut stream, &mut buf) {
        Ok(FrameRead::Frame(msg)) => msg,
        // the server may close mid-drain or mid-restart; both are
        // transient from the client's seat
        Ok(FrameRead::Eof) => {
            return Err(retryable(
                "server closed the connection before answering".into(),
            ))
        }
        Ok(FrameRead::TimedOut) => return Err(retryable("receive timed out".into())),
        Err(e) => return Err(ClientError::Fatal(e)),
    };
    match msg.tag {
        TAG_RESP_SPECTRUM => {
            let (hit, body) = msg
                .data
                .split_first()
                .ok_or_else(|| ClientError::Fatal("empty spectrum response".into()))?;
            let (outputs, wall) = decode_body(body)?;
            println!(
                "cache_hit={} outputs={} wall={:.6} fnv={:016x}",
                if *hit != 0.0 { 1 } else { 0 },
                outputs,
                wall,
                hash_reals(body),
            );
        }
        TAG_RESP_ERROR => {
            let err = ServiceError::decode(&msg.data);
            return Err(match err.code {
                ErrorCode::Busy | ErrorCode::ShuttingDown => ClientError::Retryable {
                    hint_ms: err.retry_after_ms,
                    what: err.to_string(),
                },
                _ => ClientError::Fatal(format!("server error: {err}")),
            });
        }
        other => {
            return Err(ClientError::Fatal(format!(
                "unexpected response tag {other}"
            )))
        }
    }

    if want_metrics {
        send_frame(&mut stream, TAG_REQ_METRICS, &[]).map_err(&retryable)?;
        let msg = match read_frame(&mut stream, &mut buf) {
            Ok(FrameRead::Frame(msg)) => msg,
            Ok(_) => {
                return Err(retryable(
                    "server closed the connection before metrics".into(),
                ))
            }
            Err(e) => return Err(ClientError::Fatal(e)),
        };
        // the payload grows over time: the first five reals are fixed,
        // anything beyond is gauges + latency summaries (PROTOCOL.md)
        if msg.tag != TAG_RESP_METRICS || msg.data.len() < 5 {
            return Err(ClientError::Fatal(format!(
                "bad metrics response (tag {})",
                msg.tag
            )));
        }
        println!(
            "requests={} hits={} misses={} jobs={} workers={}",
            msg.data[0], msg.data[1], msg.data[2], msg.data[3], msg.data[4],
        );
        if msg.data.len() >= 15 {
            println!(
                "alive={} queue_depth={} errors={} bytes_served={}",
                msg.data[5], msg.data[6], msg.data[7], msg.data[8],
            );
            println!(
                "total_ms p50={:.3} p99={:.3}  queue_ms p50={:.3} p99={:.3}  run_ms p50={:.3} p99={:.3}",
                msg.data[9], msg.data[10], msg.data[11], msg.data[12], msg.data[13], msg.data[14],
            );
        }
    }
    Ok(())
}

/// Decode the response body, mapping failures to fatal client errors.
fn decode_body(body: &[f64]) -> Result<(usize, f64), ClientError> {
    let (outputs, wall) =
        plinger::service::decode_spectrum_body(body).map_err(ClientError::Fatal)?;
    Ok((outputs.len(), wall))
}

// --------------------------------------------------------------- framing

fn send_frame(stream: &mut TcpStream, tag: msgpass::Tag, data: &[f64]) -> Result<(), String> {
    stream
        .write_all(&codec::encode(0, tag, data))
        .map_err(|e| format!("send failed: {e}"))
}

/// Outcome of one framed read.
enum FrameRead {
    /// A complete frame arrived.
    Frame(Message),
    /// Clean EOF between frames (the peer hung up).
    Eof,
    /// The socket's read timeout elapsed with no complete frame; the
    /// partial bytes (if any) stay buffered for the next call.
    TimedOut,
}

/// Read one codec frame, buffering partial reads.
fn read_frame(stream: &mut TcpStream, buf: &mut BytesMut) -> Result<FrameRead, String> {
    loop {
        if let Some(msg) = codec::decode(buf).map_err(|e| format!("bad frame: {e}"))? {
            return Ok(FrameRead::Frame(msg));
        }
        let mut chunk = [0u8; 8192];
        match stream.read(&mut chunk) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(FrameRead::Eof);
                }
                return Err("connection closed mid-frame".into());
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(FrameRead::TimedOut)
            }
            Err(e) => return Err(format!("recv failed: {e}")),
        }
    }
}
