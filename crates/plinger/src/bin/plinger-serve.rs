//! `plinger-serve` — spectrum-as-a-service over a warm farm pool.
//!
//! ```text
//! plinger-serve --listen 127.0.0.1:0 --workers 4                 # server
//! plinger-serve --connect 127.0.0.1:PORT --model lcdm --nk 16    # client
//! ```
//!
//! The server starts one [`plinger::FarmPool`] of resident workers and
//! accepts TCP connections, each speaking the length-prefixed
//! request/response frames of `docs/PROTOCOL.md` (the `msgpass` codec
//! framing, tags 20–29).  Requests for a k-grid already served come
//! straight out of the content-addressed result cache, bit for bit;
//! misses run as one pooled job on the warm workers.  Concurrent
//! connections are each handled on their own thread and multiplex onto
//! the single pool in arrival order.
//!
//! The client parses the same cosmology/grid flags as `linger` and
//! `plinger`, sends one spectrum request, and prints a one-line summary
//! whose `fnv=` field hashes the response body's exact bit patterns —
//! two invocations print the same hash exactly when the service
//! answered with identical bits.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Mutex;

use bytes::BytesMut;
use msgpass::channel::ChannelWorld;
use msgpass::shmem::ShmemWorld;
use msgpass::{codec, Message, World};
use plinger::cli::{FarmArgs, FarmSettings, SpecArgs, TransportKind};
use plinger::output_files::write_run_report;
use plinger::pool::PoolOptions;
use plinger::service::{
    decode_error_text, decode_spectrum_body, encode_error_text, TAG_REQ_METRICS, TAG_REQ_SPECTRUM,
    TAG_RESP_ERROR, TAG_RESP_METRICS, TAG_RESP_SPECTRUM,
};
use plinger::{hash_reals, FarmPool, RunSpec, SchedulePolicy, SpecDecodeError, SpectrumService};

const USAGE: &str = "\
usage:
  plinger-serve --listen ADDR [server options]
  plinger-serve --connect ADDR [spectrum options]

server options:
  --listen ADDR             bind address (port 0 picks one; the bound
                            address is printed on startup)
  --workers N               resident pool workers            [cores]
  --transport channel|shmem pool transport                   [channel]
  --max-requests N          exit after N connections         [serve forever]
  --report-dir DIR          write a run_report JSON per cache miss
  --recovery MODE           failfast|requeue                 [requeue]
  --max-attempts N          dispatches per mode before quarantine [2]
  --poll MS / --drain-timeout MS / --heartbeat-timeout MS
  --respawn-limit N         pooled worker respawn budget     [2]
  --chunk N                 modes per assignment message     [1]

spectrum options (client): the same cosmology/grid flags as linger —
  --model, --h, --omega-b, --omega-c, --omega-lambda, --m-nu, --n-s,
  --gauge, --ic, --preset, --kmin, --kmax, --nk, --lmax, --tau-end
plus:
  --metrics                 also query service counters
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .position(|a| a == "--listen" || a == "--connect");
    let result = match mode.map(|i| args[i].as_str()) {
        Some("--listen") => server_main(&args),
        Some("--connect") => client_main(&args),
        _ => Err("need --listen ADDR (server) or --connect ADDR (client)".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------- server

fn server_main(args: &[String]) -> Result<(), String> {
    let mut farm = FarmArgs::default();
    let mut listen = None;
    let mut max_requests = 0usize;
    let mut report_dir: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if farm.try_flag(flag, &mut it)? {
            continue;
        }
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => listen = Some(val()?.clone()),
            "--max-requests" => {
                max_requests = val()?
                    .parse()
                    .map_err(|_| "bad --max-requests value".to_string())?
            }
            "--report-dir" => report_dir = Some(PathBuf::from(val()?)),
            other => return Err(format!("unknown server flag {other}")),
        }
    }
    let listen = listen.ok_or("--listen needs a value")?;
    let settings = farm.build()?;
    match settings.transport {
        TransportKind::Channel => {
            serve::<ChannelWorld>(&settings, &listen, max_requests, report_dir)
        }
        TransportKind::Shmem => serve::<ShmemWorld>(&settings, &listen, max_requests, report_dir),
        TransportKind::Tcp => {
            Err("plinger-serve pools thread transports; use --transport channel|shmem".into())
        }
    }
}

fn serve<W: World>(
    settings: &FarmSettings,
    listen: &str,
    max_requests: usize,
    report_dir: Option<PathBuf>,
) -> Result<(), String> {
    let pool = FarmPool::<W>::start_with(
        settings.workers,
        settings.master_config(),
        PoolOptions {
            respawn_limit: settings.respawn_limit,
            fault: None,
        },
    )
    .map_err(|e| format!("starting pool failed: {e}"))?;
    let service = Mutex::new(SpectrumService::new(pool, SchedulePolicy::LargestFirst));

    let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen} failed: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?;
    // the startup line scripts parse to learn the ephemeral port
    println!("plinger-serve: listening on {addr}");
    eprintln!(
        "plinger-serve: pool of {} {} workers warm",
        settings.workers,
        W::NAME
    );

    let transport_tag = W::NAME;
    let dir = report_dir.as_deref();
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating report dir {} failed: {e}", dir.display()))?;
    }
    std::thread::scope(|scope| -> Result<(), String> {
        let mut accepted = 0usize;
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
            accepted += 1;
            let service = &service;
            scope.spawn(move || {
                if let Err(e) = handle_connection(stream, service, dir, transport_tag) {
                    eprintln!("plinger-serve: connection error: {e}");
                }
            });
            if max_requests > 0 && accepted >= max_requests {
                break;
            }
        }
        Ok(())
        // scope exit joins every in-flight connection handler
    })?;

    let service = service
        .into_inner()
        .map_err(|_| "service lock poisoned".to_string())?;
    println!(
        "plinger-serve: served {} requests, cache hits={} misses={}, pool jobs={}",
        service.requests(),
        service.cache().hits(),
        service.cache().misses(),
        service.pool().jobs_run(),
    );
    service.shutdown();
    Ok(())
}

fn handle_connection<W: World>(
    mut stream: TcpStream,
    service: &Mutex<SpectrumService<W>>,
    report_dir: Option<&Path>,
    transport_tag: &str,
) -> Result<(), String> {
    let mut buf = BytesMut::new();
    while let Some(msg) = read_frame(&mut stream, &mut buf)? {
        match msg.tag {
            TAG_REQ_SPECTRUM => {
                let reply = match RunSpec::decode(&msg.data) {
                    Ok(spec) => answer_spectrum(service, &spec, report_dir, transport_tag),
                    Err(e) => Err(spec_error_text(&e)),
                };
                match reply {
                    Ok(payload) => send_frame(&mut stream, TAG_RESP_SPECTRUM, &payload)?,
                    Err(text) => {
                        send_frame(&mut stream, TAG_RESP_ERROR, &encode_error_text(&text))?
                    }
                }
            }
            TAG_REQ_METRICS => {
                let counters = {
                    let svc = service
                        .lock()
                        .map_err(|_| "service lock poisoned".to_string())?;
                    [
                        svc.requests() as f64,
                        svc.cache().hits() as f64,
                        svc.cache().misses() as f64,
                        svc.pool().jobs_run() as f64,
                        svc.pool().n_workers() as f64,
                    ]
                };
                send_frame(&mut stream, TAG_RESP_METRICS, &counters)?;
            }
            other => {
                let text = format!("unknown request tag {other}");
                send_frame(&mut stream, TAG_RESP_ERROR, &encode_error_text(&text))?;
            }
        }
    }
    Ok(())
}

fn answer_spectrum<W: World>(
    service: &Mutex<SpectrumService<W>>,
    spec: &RunSpec,
    report_dir: Option<&Path>,
    transport_tag: &str,
) -> Result<Vec<f64>, String> {
    let mut svc = service
        .lock()
        .map_err(|_| "service lock poisoned".to_string())?;
    let reply = svc.handle(spec).map_err(|e| format!("farm failed: {e}"))?;
    let requests = svc.requests();
    drop(svc);
    if let (Some(dir), Some(report)) = (report_dir, reply.report.as_ref()) {
        let prefix = dir
            .join(format!("req{:04}_{:016x}", requests, reply.key))
            .to_string_lossy()
            .into_owned();
        match write_run_report(&prefix, report, transport_tag) {
            Ok((path, _)) => eprintln!("plinger-serve: run report written to {path}"),
            Err(e) => eprintln!("plinger-serve: writing run report failed: {e}"),
        }
    }
    let mut payload = Vec::with_capacity(1 + reply.body.len());
    payload.push(if reply.cache_hit { 1.0 } else { 0.0 });
    payload.extend_from_slice(&reply.body);
    Ok(payload)
}

fn spec_error_text(e: &SpecDecodeError) -> String {
    format!("bad spectrum request: {e:?}")
}

// ---------------------------------------------------------------- client

fn client_main(args: &[String]) -> Result<(), String> {
    let mut spec = SpecArgs::default();
    let mut connect = None;
    let mut want_metrics = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if spec.try_flag(flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--connect" => {
                connect = Some(
                    it.next()
                        .ok_or_else(|| "--connect needs a value".to_string())?
                        .clone(),
                )
            }
            "--metrics" => want_metrics = true,
            other => return Err(format!("unknown client flag {other}")),
        }
    }
    let addr = connect.ok_or("--connect needs a value")?;
    let spec = spec.build()?;

    let mut stream =
        TcpStream::connect(&addr).map_err(|e| format!("connect {addr} failed: {e}"))?;
    let mut buf = BytesMut::new();

    send_frame(&mut stream, TAG_REQ_SPECTRUM, &spec.encode())?;
    let msg = read_frame(&mut stream, &mut buf)?
        .ok_or_else(|| "server closed the connection before answering".to_string())?;
    match msg.tag {
        TAG_RESP_SPECTRUM => {
            let (hit, body) = msg
                .data
                .split_first()
                .ok_or_else(|| "empty spectrum response".to_string())?;
            let (outputs, wall) = decode_spectrum_body(body)?;
            println!(
                "cache_hit={} outputs={} wall={:.6} fnv={:016x}",
                if *hit != 0.0 { 1 } else { 0 },
                outputs.len(),
                wall,
                hash_reals(body),
            );
        }
        TAG_RESP_ERROR => return Err(format!("server error: {}", decode_error_text(&msg.data))),
        other => return Err(format!("unexpected response tag {other}")),
    }

    if want_metrics {
        send_frame(&mut stream, TAG_REQ_METRICS, &[])?;
        let msg = read_frame(&mut stream, &mut buf)?
            .ok_or_else(|| "server closed the connection before metrics".to_string())?;
        if msg.tag != TAG_RESP_METRICS || msg.data.len() != 5 {
            return Err(format!("bad metrics response (tag {})", msg.tag));
        }
        println!(
            "requests={} hits={} misses={} jobs={} workers={}",
            msg.data[0], msg.data[1], msg.data[2], msg.data[3], msg.data[4],
        );
    }
    Ok(())
}

// --------------------------------------------------------------- framing

fn send_frame(stream: &mut TcpStream, tag: msgpass::Tag, data: &[f64]) -> Result<(), String> {
    stream
        .write_all(&codec::encode(0, tag, data))
        .map_err(|e| format!("send failed: {e}"))
}

/// Read one codec frame, buffering partial reads.  `Ok(None)` is a
/// clean EOF between frames (the peer hung up).
fn read_frame(stream: &mut TcpStream, buf: &mut BytesMut) -> Result<Option<Message>, String> {
    loop {
        if let Some(msg) = codec::decode(buf).map_err(|e| format!("bad frame: {e}"))? {
            return Ok(Some(msg));
        }
        let mut chunk = [0u8; 8192];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err("connection closed mid-frame".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}
