//! `plinger-serve` — spectrum-as-a-service over a warm farm pool.
//!
//! ```text
//! plinger-serve --listen 127.0.0.1:0 --workers 4                 # server
//! plinger-serve --connect 127.0.0.1:PORT --model lcdm --nk 16    # client
//! ```
//!
//! The server starts one [`plinger::FarmPool`] of resident workers and
//! accepts TCP connections, each speaking the length-prefixed
//! request/response frames of `docs/PROTOCOL.md` (the `msgpass` codec
//! framing, tags 20–29).  Requests for a k-grid already served come
//! straight out of the content-addressed result cache, bit for bit;
//! misses run as one pooled job on the warm workers.  Concurrent
//! connections are each handled on their own thread and multiplex onto
//! the single pool in arrival order.
//!
//! The client parses the same cosmology/grid flags as `linger` and
//! `plinger`, sends one spectrum request, and prints a one-line summary
//! whose `fnv=` field hashes the response body's exact bit patterns —
//! two invocations print the same hash exactly when the service
//! answered with identical bits.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::BytesMut;
use msgpass::channel::ChannelWorld;
use msgpass::shmem::ShmemWorld;
use msgpass::{codec, Message, World};
use plinger::cli::{FarmArgs, FarmSettings, SpecArgs, TransportKind};
use plinger::output_files::write_run_report;
use plinger::pool::PoolOptions;
use plinger::service::{
    decode_error_text, decode_spectrum_body, encode_error_text, ServiceMetrics, TAG_REQ_METRICS,
    TAG_REQ_SPECTRUM, TAG_RESP_ERROR, TAG_RESP_METRICS, TAG_RESP_SPECTRUM,
};
use plinger::{
    hash_reals, job_hash, FarmPool, FaultPlan, RunSpec, SchedulePolicy, SpecDecodeError,
    SpectrumService,
};
use telemetry::expo;
use telemetry::log::{self as tlog, Level};

/// `/healthz` reports not-ready once this many requests are in flight.
const HEALTHZ_QUEUE_LIMIT: u64 = 64;

/// Flight-recorder events dumped per failing job.
const FLIGHT_DUMP_EVENTS: usize = 256;

const USAGE: &str = "\
usage:
  plinger-serve --listen ADDR [server options]
  plinger-serve --connect ADDR [spectrum options]

server options:
  --listen ADDR             bind address (port 0 picks one; the bound
                            address is printed on startup)
  --metrics-addr ADDR       also serve HTTP GET /metrics (Prometheus
                            text) and /healthz on this address
  --workers N               resident pool workers            [cores]
  --transport channel|shmem pool transport                   [channel]
  --max-requests N          exit after N connections         [serve forever]
  --report-dir DIR          write a run_report JSON per cache miss
  --recovery MODE           failfast|requeue                 [requeue]
  --max-attempts N          dispatches per mode before quarantine [2]
  --poll MS / --drain-timeout MS / --heartbeat-timeout MS
  --respawn-limit N         pooled worker respawn budget     [2]
  --chunk N                 modes per assignment message     [1]
  --log LEVEL[,json]        structured events on stderr
                            (error|warn|info|debug)          [off]

spectrum options (client): the same cosmology/grid flags as linger —
  --model, --h, --omega-b, --omega-c, --omega-lambda, --m-nu, --n-s,
  --gauge, --ic, --preset, --kmin, --kmax, --nk, --lmax, --tau-end
plus:
  --metrics                 also query service counters
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args
        .iter()
        .position(|a| a == "--listen" || a == "--connect");
    let result = match mode.map(|i| args[i].as_str()) {
        Some("--listen") => server_main(&args),
        Some("--connect") => client_main(&args),
        _ => Err("need --listen ADDR (server) or --connect ADDR (client)".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

// ---------------------------------------------------------------- server

fn server_main(args: &[String]) -> Result<(), String> {
    let mut farm = FarmArgs::default();
    let mut listen = None;
    let mut metrics_addr = None;
    let mut max_requests = 0usize;
    let mut report_dir: Option<PathBuf> = None;
    let mut fault = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if farm.try_flag(flag, &mut it)? {
            continue;
        }
        let mut val = || it.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => listen = Some(val()?.clone()),
            "--metrics-addr" => metrics_addr = Some(val()?.clone()),
            "--max-requests" => {
                max_requests = val()?
                    .parse()
                    .map_err(|_| "bad --max-requests value".to_string())?
            }
            "--report-dir" => report_dir = Some(PathBuf::from(val()?)),
            // hidden, test-only: script a fault into the initial workers
            "--fault" => {
                let spec = val()?;
                fault = Some(
                    parse_fault_plan(spec).ok_or_else(|| format!("bad --fault value {spec}"))?,
                )
            }
            other => return Err(format!("unknown server flag {other}")),
        }
    }
    let listen = listen.ok_or("--listen needs a value")?;
    let settings = farm.build()?;
    settings.apply_log();
    let cfg = ServeConfig {
        listen,
        metrics_addr,
        max_requests,
        report_dir,
        fault,
    };
    match settings.transport {
        TransportKind::Channel => serve::<ChannelWorld>(&settings, &cfg),
        TransportKind::Shmem => serve::<ShmemWorld>(&settings, &cfg),
        TransportKind::Tcp => {
            Err("plinger-serve pools thread transports; use --transport channel|shmem".into())
        }
    }
}

/// Server options beyond the shared [`FarmSettings`].
struct ServeConfig {
    listen: String,
    metrics_addr: Option<String>,
    max_requests: usize,
    report_dir: Option<PathBuf>,
    fault: Option<FaultPlan>,
}

/// Parse the hidden `--fault` spec: `drop:RANK:AFTER`,
/// `stall:RANK:AFTER:MS`, or `failmode:IK` (ranks 1-based).
fn parse_fault_plan(s: &str) -> Option<FaultPlan> {
    let mut parts = s.split(':');
    match parts.next()? {
        "drop" => Some(FaultPlan::DropWorker {
            rank: parts.next()?.parse().ok()?,
            after_modes: parts.next()?.parse().ok()?,
        }),
        "stall" => Some(FaultPlan::StallWorker {
            rank: parts.next()?.parse().ok()?,
            after_modes: parts.next()?.parse().ok()?,
            stall: Duration::from_millis(parts.next()?.parse().ok()?),
        }),
        "failmode" => Some(FaultPlan::FailMode {
            ik: parts.next()?.parse().ok()?,
        }),
        _ => None,
    }
}

fn serve<W: World>(settings: &FarmSettings, cfg: &ServeConfig) -> Result<(), String> {
    let pool = FarmPool::<W>::start_with(
        settings.workers,
        settings.master_config(),
        PoolOptions {
            respawn_limit: settings.respawn_limit,
            fault: cfg.fault,
        },
    )
    .map_err(|e| format!("starting pool failed: {e}"))?;
    let n_workers = pool.n_workers();
    let service = SpectrumService::new(pool, SchedulePolicy::LargestFirst);
    let metrics = service.metrics();
    let service = Mutex::new(service);

    let listen = cfg.listen.as_str();
    let listener = TcpListener::bind(listen).map_err(|e| format!("bind {listen} failed: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr failed: {e}"))?;
    // the startup line scripts parse to learn the ephemeral port; the
    // metrics line (if any) must come after it
    println!("plinger-serve: listening on {addr}");
    if let Some(maddr) = cfg.metrics_addr.as_deref() {
        let mlistener =
            TcpListener::bind(maddr).map_err(|e| format!("bind {maddr} failed: {e}"))?;
        let maddr = mlistener
            .local_addr()
            .map_err(|e| format!("metrics local_addr failed: {e}"))?;
        println!("plinger-serve: metrics on {maddr}");
        let scrape = Arc::clone(&metrics);
        // detached: the scrape endpoint only touches the shared metrics
        // handle, never the service lock, and dies with the process
        std::thread::spawn(move || serve_metrics(mlistener, &scrape));
    }
    eprintln!(
        "plinger-serve: pool of {} {} workers warm",
        settings.workers,
        W::NAME
    );

    let transport_tag = W::NAME;
    let dir = cfg.report_dir.as_deref();
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("creating report dir {} failed: {e}", dir.display()))?;
    }
    std::thread::scope(|scope| -> Result<(), String> {
        let mut accepted = 0usize;
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| format!("accept failed: {e}"))?;
            accepted += 1;
            let service = &service;
            let metrics = &*metrics;
            scope.spawn(move || {
                if let Err(e) =
                    handle_connection(stream, service, metrics, n_workers, dir, transport_tag)
                {
                    eprintln!("plinger-serve: connection error: {e}");
                }
            });
            if cfg.max_requests > 0 && accepted >= cfg.max_requests {
                break;
            }
        }
        Ok(())
        // scope exit joins every in-flight connection handler
    })?;

    let service = service
        .into_inner()
        .map_err(|_| "service lock poisoned".to_string())?;
    println!(
        "plinger-serve: served {} requests, cache hits={} misses={}, pool jobs={}",
        service.requests(),
        service.cache().hits(),
        service.cache().misses(),
        service.pool().jobs_run(),
    );
    service.shutdown();
    Ok(())
}

fn handle_connection<W: World>(
    mut stream: TcpStream,
    service: &Mutex<SpectrumService<W>>,
    metrics: &ServiceMetrics,
    n_workers: usize,
    report_dir: Option<&Path>,
    transport_tag: &str,
) -> Result<(), String> {
    let mut buf = BytesMut::new();
    while let Some(msg) = read_frame(&mut stream, &mut buf)? {
        match msg.tag {
            TAG_REQ_SPECTRUM => {
                let reply = answer_spectrum(service, metrics, &msg.data, report_dir, transport_tag);
                match reply {
                    Ok(payload) => send_frame(&mut stream, TAG_RESP_SPECTRUM, &payload)?,
                    Err(text) => {
                        send_frame(&mut stream, TAG_RESP_ERROR, &encode_error_text(&text))?
                    }
                }
            }
            // answered off the shared metrics handle, never the service
            // lock: a scrape during a long job must not block
            TAG_REQ_METRICS => send_frame(
                &mut stream,
                TAG_RESP_METRICS,
                &metrics.wire_payload(n_workers),
            )?,
            other => {
                let text = format!("unknown request tag {other}");
                send_frame(&mut stream, TAG_RESP_ERROR, &encode_error_text(&text))?;
            }
        }
    }
    Ok(())
}

/// Serve one spectrum request end to end, recording queue-wait, run,
/// and total latency plus the request-scoped log events.
fn answer_spectrum<W: World>(
    service: &Mutex<SpectrumService<W>>,
    metrics: &ServiceMetrics,
    data: &[f64],
    report_dir: Option<&Path>,
    transport_tag: &str,
) -> Result<Vec<f64>, String> {
    let t_accept = Instant::now();
    metrics.enter_queue();
    let finish = || {
        metrics.leave_queue();
        metrics.total_ns.record(elapsed_ns(t_accept));
    };

    let spec = match RunSpec::decode(data) {
        Ok(spec) => spec,
        Err(e) => {
            let text = spec_error_text(&e);
            metrics.errors.inc();
            tlog::log(
                Level::Error,
                "service",
                "request_failed",
                &[("error", text.clone())],
            );
            finish();
            return Err(text);
        }
    };
    let key = job_hash(&spec);
    let job = tlog::job_hex(key);
    tlog::log(
        Level::Info,
        "service",
        "request_accepted",
        &[
            ("job", job.clone()),
            ("queue_depth", metrics.queue_depth().to_string()),
        ],
    );

    let Ok(mut svc) = service.lock() else {
        metrics.errors.inc();
        finish();
        return Err("service lock poisoned".into());
    };
    metrics.queue_wait_ns.record(elapsed_ns(t_accept));
    let t_run = Instant::now();
    let outcome = svc.handle(&spec);
    let requests = svc.requests();
    drop(svc);
    metrics.run_ns.record(elapsed_ns(t_run));
    finish();

    let reply = match outcome {
        Ok(reply) => reply,
        Err(e) => {
            let text = format!("farm failed: {e}");
            metrics.errors.inc();
            tlog::log(
                Level::Error,
                "service",
                "request_failed",
                &[("job", job.clone()), ("error", text.clone())],
            );
            write_flight_dump(report_dir, key, &job);
            return Err(text);
        }
    };
    if let Some(report) = reply.report.as_ref() {
        // quarantined modes mean the answer is incomplete: keep the
        // evidence even though the request itself succeeded
        if !report.recovery.failed_modes.is_empty() {
            write_flight_dump(report_dir, key, &job);
        }
        if let Some(dir) = report_dir {
            let prefix = dir
                .join(format!("req{:04}_{:016x}", requests, reply.key))
                .to_string_lossy()
                .into_owned();
            match write_run_report(&prefix, report, transport_tag) {
                Ok((path, _)) => eprintln!("plinger-serve: run report written to {path}"),
                Err(e) => eprintln!("plinger-serve: writing run report failed: {e}"),
            }
        }
    }
    tlog::log(
        Level::Info,
        "service",
        "request_done",
        &[
            ("job", job),
            ("cache_hit", u8::from(reply.cache_hit).to_string()),
            (
                "wall_ms",
                format!("{:.3}", t_accept.elapsed().as_secs_f64() * 1e3),
            ),
        ],
    );
    let mut payload = Vec::with_capacity(1 + reply.body.len());
    payload.push(if reply.cache_hit { 1.0 } else { 0.0 });
    payload.extend_from_slice(&reply.body);
    Ok(payload)
}

fn elapsed_ns(t: Instant) -> u64 {
    t.elapsed().as_nanos() as u64
}

/// Dump the flight recorder's last events for `key` next to the run
/// reports, so a failed or degraded job leaves its story behind.
fn write_flight_dump(report_dir: Option<&Path>, key: u64, job: &str) {
    let Some(dir) = report_dir else { return };
    let events = tlog::for_job(key, FLIGHT_DUMP_EVENTS);
    let path = dir.join(format!("flight_{job}.jsonl"));
    match std::fs::write(&path, tlog::render_flight_dump(&events)) {
        Ok(()) => {
            tlog::log(
                Level::Warn,
                "service",
                "flight_dump",
                &[
                    ("job", job.to_string()),
                    ("events", events.len().to_string()),
                    ("path", path.display().to_string()),
                ],
            );
            eprintln!(
                "plinger-serve: flight recorder dump ({} events) written to {}",
                events.len(),
                path.display()
            );
        }
        Err(e) => eprintln!("plinger-serve: writing flight dump failed: {e}"),
    }
}

// ----------------------------------------------------------- /metrics

/// Read a request head up to its blank line (requests can arrive
/// split across arbitrarily many segments), bounded at 4 kB.
fn read_http_head(stream: &mut TcpStream) -> Option<String> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() >= 4096 {
            return None;
        }
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    Some(String::from_utf8_lossy(&head).into_owned())
}

/// Answer Prometheus scrapes and health probes on a dedicated
/// listener: strictly GET, one request per connection, HTTP/1.0.
fn serve_metrics(listener: TcpListener, metrics: &ServiceMetrics) {
    for stream in listener.incoming() {
        let Ok(mut stream) = stream else { continue };
        let Some(head) = read_http_head(&mut stream) else {
            continue;
        };
        let response = match expo::parse_http_get(&head) {
            Some("/metrics") => expo::http_response(
                200,
                "OK",
                "text/plain; version=0.0.4",
                &telemetry::render_prometheus(&metrics.snapshot(), "plinger"),
            ),
            Some("/healthz") => {
                let ready =
                    metrics.workers_alive() >= 1 && metrics.queue_depth() < HEALTHZ_QUEUE_LIMIT;
                if ready {
                    expo::http_response(200, "OK", "text/plain", "ok\n")
                } else {
                    expo::http_response(503, "Service Unavailable", "text/plain", "not ready\n")
                }
            }
            Some(_) => expo::http_response(404, "Not Found", "text/plain", "not found\n"),
            None => expo::http_response(405, "Method Not Allowed", "text/plain", "GET only\n"),
        };
        let _ = stream.write_all(response.as_bytes());
        let _ = stream.shutdown(std::net::Shutdown::Both);
    }
}

fn spec_error_text(e: &SpecDecodeError) -> String {
    format!("bad spectrum request: {e:?}")
}

// ---------------------------------------------------------------- client

fn client_main(args: &[String]) -> Result<(), String> {
    let mut spec = SpecArgs::default();
    let mut connect = None;
    let mut want_metrics = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if spec.try_flag(flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--connect" => {
                connect = Some(
                    it.next()
                        .ok_or_else(|| "--connect needs a value".to_string())?
                        .clone(),
                )
            }
            "--metrics" => want_metrics = true,
            other => return Err(format!("unknown client flag {other}")),
        }
    }
    let addr = connect.ok_or("--connect needs a value")?;
    let spec = spec.build()?;

    let mut stream =
        TcpStream::connect(&addr).map_err(|e| format!("connect {addr} failed: {e}"))?;
    let mut buf = BytesMut::new();

    send_frame(&mut stream, TAG_REQ_SPECTRUM, &spec.encode())?;
    let msg = read_frame(&mut stream, &mut buf)?
        .ok_or_else(|| "server closed the connection before answering".to_string())?;
    match msg.tag {
        TAG_RESP_SPECTRUM => {
            let (hit, body) = msg
                .data
                .split_first()
                .ok_or_else(|| "empty spectrum response".to_string())?;
            let (outputs, wall) = decode_spectrum_body(body)?;
            println!(
                "cache_hit={} outputs={} wall={:.6} fnv={:016x}",
                if *hit != 0.0 { 1 } else { 0 },
                outputs.len(),
                wall,
                hash_reals(body),
            );
        }
        TAG_RESP_ERROR => return Err(format!("server error: {}", decode_error_text(&msg.data))),
        other => return Err(format!("unexpected response tag {other}")),
    }

    if want_metrics {
        send_frame(&mut stream, TAG_REQ_METRICS, &[])?;
        let msg = read_frame(&mut stream, &mut buf)?
            .ok_or_else(|| "server closed the connection before metrics".to_string())?;
        // the payload grows over time: the first five reals are fixed,
        // anything beyond is gauges + latency summaries (PROTOCOL.md)
        if msg.tag != TAG_RESP_METRICS || msg.data.len() < 5 {
            return Err(format!("bad metrics response (tag {})", msg.tag));
        }
        println!(
            "requests={} hits={} misses={} jobs={} workers={}",
            msg.data[0], msg.data[1], msg.data[2], msg.data[3], msg.data[4],
        );
        if msg.data.len() >= 15 {
            println!(
                "alive={} queue_depth={} errors={} bytes_served={}",
                msg.data[5], msg.data[6], msg.data[7], msg.data[8],
            );
            println!(
                "total_ms p50={:.3} p99={:.3}  queue_ms p50={:.3} p99={:.3}  run_ms p50={:.3} p99={:.3}",
                msg.data[9], msg.data[10], msg.data[11], msg.data[12], msg.data[13], msg.data[14],
            );
        }
    }
    Ok(())
}

// --------------------------------------------------------------- framing

fn send_frame(stream: &mut TcpStream, tag: msgpass::Tag, data: &[f64]) -> Result<(), String> {
    stream
        .write_all(&codec::encode(0, tag, data))
        .map_err(|e| format!("send failed: {e}"))
}

/// Read one codec frame, buffering partial reads.  `Ok(None)` is a
/// clean EOF between frames (the peer hung up).
fn read_frame(stream: &mut TcpStream, buf: &mut BytesMut) -> Result<Option<Message>, String> {
    loop {
        if let Some(msg) = codec::decode(buf).map_err(|e| format!("bad frame: {e}"))? {
            return Ok(Some(msg));
        }
        let mut chunk = [0u8; 8192];
        let n = stream
            .read(&mut chunk)
            .map_err(|e| format!("recv failed: {e}"))?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err("connection closed mid-frame".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}
