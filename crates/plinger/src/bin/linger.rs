//! `linger` — the serial code: LINGER's main loop over wavenumbers.
//!
//! ```text
//! linger --model scdm --nk 32 --kmax 0.1 --output run1
//! ```
//!
//! Writes `run1.linger` (ASCII headers) and `run1.lingerd` (binary
//! moment payloads), the two output units of the paper's master
//! subroutine.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::process::ExitCode;

use plinger::cli::{parse, Parsed, TelemetryMode, USAGE};
use plinger::output_files::{write_ascii, write_binary, write_run_report, write_trace};
use plinger::{render_pretty, run_serial, FarmReport, FarmTelemetry, RecoveryLog};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(Parsed::Run(o)) => o,
        Ok(Parsed::TcpWorker(_)) => {
            eprintln!("linger is the serial code; --tcp-worker belongs to plinger");
            return ExitCode::from(2);
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\nusage: linger [options]\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    opts.apply_log();

    eprintln!(
        "linger: {} modes, k ∈ [{:.3e}, {:.3e}] Mpc⁻¹, gauge {:?}, preset {:?}",
        opts.spec.ks.len(),
        opts.spec.ks[0],
        opts.spec.ks[opts.spec.ks.len() - 1],
        opts.spec.gauge,
        opts.spec.preset
    );
    let t0 = std::time::Instant::now();
    let (outputs, wall) = match run_serial(&opts.spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("linger: {e}");
            return ExitCode::FAILURE;
        }
    };
    let flops: u64 = outputs.iter().map(|o| o.stats.total_flops()).sum();
    let rate = if wall > 0.0 {
        flops as f64 / wall / 1e6
    } else {
        0.0
    };
    eprintln!(
        "linger: done in {wall:.2} s ({rate:.1} Mflop/s); writing {}.linger / {}.lingerd",
        opts.output, opts.output
    );
    if let Err(e) = write_ascii(format!("{}.linger", opts.output), &opts.spec, &outputs) {
        eprintln!("linger: writing ASCII output failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_binary(format!("{}.lingerd", opts.output), &outputs) {
        eprintln!("linger: writing binary output failed: {e}");
        return ExitCode::FAILURE;
    }
    // The serial code has no workers or message traffic, but the mode
    // timing ledger is still worth a report: wrap the run in an
    // otherwise-empty FarmReport so the same writers apply.
    let report = FarmReport {
        outputs,
        wall_seconds: wall,
        worker_stats: Vec::new(),
        bytes_received: 0,
        completion_log: Vec::new(),
        telemetry: FarmTelemetry::default(),
        recovery: RecoveryLog::default(),
    };
    if opts.telemetry != TelemetryMode::Off {
        match write_run_report(&opts.output, &report, "serial") {
            Ok((path, text)) => match opts.telemetry {
                TelemetryMode::Json => println!("{text}"),
                TelemetryMode::Pretty => {
                    print!("{}", render_pretty(&report, "serial"));
                    eprintln!("linger: run report written to {path}");
                }
                TelemetryMode::Off => unreachable!(),
            },
            Err(e) => {
                eprintln!("linger: writing run report failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &opts.trace_out {
        if let Err(e) = write_trace(path, &report) {
            eprintln!("linger: writing trace failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("linger: chrome trace written to {path}");
    }
    eprintln!("linger: total {:.2} s", t0.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}
