//! `linger` — the serial code: LINGER's main loop over wavenumbers.
//!
//! ```text
//! linger --model scdm --nk 32 --kmax 0.1 --output run1
//! ```
//!
//! Writes `run1.linger` (ASCII headers) and `run1.lingerd` (binary
//! moment payloads), the two output units of the paper's master
//! subroutine.

use plinger::cli::{parse, Parsed, USAGE};
use plinger::output_files::{write_ascii, write_binary};
use plinger::run_serial;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(Parsed::Run(o)) => o,
        Ok(Parsed::TcpWorker(_)) => {
            eprintln!("linger is the serial code; --tcp-worker belongs to plinger");
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\nusage: linger [options]\n{USAGE}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "linger: {} modes, k ∈ [{:.3e}, {:.3e}] Mpc⁻¹, gauge {:?}, preset {:?}",
        opts.spec.ks.len(),
        opts.spec.ks[0],
        opts.spec.ks[opts.spec.ks.len() - 1],
        opts.spec.gauge,
        opts.spec.preset
    );
    let t0 = std::time::Instant::now();
    let (outputs, wall) = run_serial(&opts.spec);
    let flops: u64 = outputs.iter().map(|o| o.stats.total_flops()).sum();
    eprintln!(
        "linger: done in {wall:.2} s ({:.1} Mflop/s); writing {}.linger / {}.lingerd",
        flops as f64 / wall / 1e6,
        opts.output,
        opts.output
    );
    write_ascii(format!("{}.linger", opts.output), &opts.spec, &outputs)
        .expect("write ascii output");
    write_binary(format!("{}.lingerd", opts.output), &outputs).expect("write binary output");
    eprintln!("linger: total {:.2} s", t0.elapsed().as_secs_f64());
}
