//! The master subroutine (`parentsub` in Appendix A), hardened into a
//! session loop that survives worker death.
//!
//! The paper's listing drives the farm with a blocking `mycheckany`; a
//! worker that dies without a goodbye would park that master forever.
//! This version polls with [`Transport::probe_timeout`] and consults a
//! caller-supplied liveness watch between polls.  What happens when a
//! worker is lost is governed by [`RecoveryPolicy`]:
//!
//! * under [`RecoveryPolicy::FailFast`] any abnormal event — worker
//!   death, a tag-8 failure report, an unexpected tag, a malformed
//!   result — routes through one drain-and-stop shutdown that flushes
//!   tag-6 stops to all surviving workers and collects what statistics
//!   it can before returning the typed error;
//! * under [`RecoveryPolicy::Requeue`] the dead rank's in-flight mode
//!   goes back to the head of the work queue and is redistributed to
//!   survivors (state machine: *in-flight → requeued*, or *in-flight →
//!   quarantined* once the mode's attempt budget is spent), and the run
//!   finishes as long as one worker lives.
//!
//! Liveness has two sources: the watch callback (thread joins, process
//! exits, socket closes) and tag-9 heartbeats — a rank holding an
//! assignment that has been silent for `heartbeat_timeout` is declared
//! dead even if its thread still exists, which catches *hung* workers.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use boltzmann::ModeOutput;
use msgpass::wrappers::*;
use msgpass::{Rank, Tag, Transport};
use telemetry::{SpanEvent, SpanRecorder};

use telemetry::log::{self as tlog, Level};

use crate::error::{CancelReason, FarmError};
use crate::protocol::{
    job_hash, RunSpec, TAG_ASSIGN, TAG_CANCEL, TAG_DATA, TAG_FAIL, TAG_HEADER, TAG_HEARTBEAT,
    TAG_INIT, TAG_JOBDONE, TAG_NEWJOB, TAG_PREFETCH, TAG_REQUEST, TAG_STATS, TAG_STOP,
};
use crate::recovery::{FailedMode, RecoveryLog, RecoveryPolicy, WorkerEvent};
use crate::schedule::{SchedulePolicy, WorkQueue};
use crate::worker::WorkerStats;

/// Timing and recovery knobs of the master loop.
#[derive(Debug, Clone, Copy)]
pub struct MasterConfig {
    /// How long one bounded probe waits before re-checking liveness.
    pub poll: Duration,
    /// How long the drain phase waits for survivors' statistics (and the
    /// normal shutdown waits for stragglers) before giving up.
    pub drain_timeout: Duration,
    /// A rank holding an assignment that has sent nothing (result,
    /// request, or tag-9 heartbeat) for this long is declared dead.
    /// Workers heartbeat at ~100 ms intervals while integrating, so the
    /// default is generous by orders of magnitude.
    pub heartbeat_timeout: Duration,
    /// What to do when a worker is lost.
    pub recovery: RecoveryPolicy,
    /// Modes per tag-3 assignment.  `1` (the default) is the paper's
    /// one-at-a-time protocol; larger chunks amortize the
    /// request/assign round trip when modes are cheap.  A chunk is a
    /// *run* of the dispatch order, so largest-first remains
    /// largest-first across chunks; `0` is treated as `1`.
    pub chunk: usize,
}

impl Default for MasterConfig {
    fn default() -> Self {
        Self {
            poll: Duration::from_millis(25),
            drain_timeout: Duration::from_secs(5),
            heartbeat_timeout: Duration::from_secs(30),
            recovery: RecoveryPolicy::FailFast,
            chunk: 1,
        }
    }
}

/// How a master session relates to its workers' lifetimes.
///
/// The session loop itself is identical either way — hand out modes,
/// collect results, recover casualties — but the messages that open and
/// close a job differ:
///
/// * [`SessionKind::OneShot`]: the historical `Farm::run` shape.  The
///   job opens with a tag-1 broadcast and closes by *stopping* workers
///   (tag 6); their session ends with the job.
/// * [`SessionKind::Pooled`]: a `FarmPool` job.  The job opens with
///   per-rank tag-10 `NewJob` sends (skipping ranks already known dead
///   from earlier jobs) and closes by *releasing* workers (tag 11);
///   they answer with per-job stats and park warm for the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionKind {
    /// One job, one worker lifetime (tag 1 open, tag 6 close).
    OneShot,
    /// One job on resident workers (tag 10 open, tag 11 close).
    Pooled,
}

impl SessionKind {
    /// The tag that idles a worker at the end of this session: a stop
    /// for one-shot workers, a job-done release for pooled ones.
    fn release_tag(self) -> Tag {
        match self {
            SessionKind::OneShot => TAG_STOP,
            SessionKind::Pooled => TAG_JOBDONE,
        }
    }
}

/// External control of a running job: a wall-clock deadline and/or a
/// shared cancel flag, both optional.  The master checks it once per
/// poll interval; when either trigger fires it broadcasts tag-12
/// [`TAG_CANCEL`] to every live un-stopped rank, drains the session
/// (collecting statistics like any other shutdown), and returns
/// [`FarmError::Cancelled`].  The default is uncontrolled — the
/// historical run-to-completion behaviour.
#[derive(Clone, Copy, Default)]
pub struct JobControl<'a> {
    /// Abort the job once this instant passes.
    pub deadline: Option<Instant>,
    /// Abort the job once this flag reads `true`.
    pub cancel: Option<&'a AtomicBool>,
}

impl JobControl<'_> {
    /// Which trigger, if any, has fired.  An explicit cancel wins over
    /// a deadline when both have.
    pub fn triggered(&self) -> Option<CancelReason> {
        if self.cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return Some(CancelReason::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Some(CancelReason::DeadlineExceeded);
        }
        None
    }
}

/// What the master accumulated over one farm run.
#[derive(Debug)]
pub struct MasterLedger {
    /// Finished modes, indexed like `spec.ks` (every slot filled on
    /// success; quarantined modes leave `None` holes).
    pub outputs: Vec<Option<ModeOutput>>,
    /// Wall-clock seconds of the master loop (broadcast → last stop).
    pub wall_seconds: f64,
    /// Bytes received from workers (tags 4 + 5).
    pub bytes_received: usize,
    /// Completion order: `(ik, worker_rank)` in arrival order.
    pub completion_log: Vec<(usize, usize)>,
    /// Per-worker statistics in rank order (rank 1 first), collected
    /// from the tag-7 reports.
    pub worker_stats: Vec<WorkerStats>,
    /// Master-side wall-clock spans (`assign`, `collect`, `idle`, and
    /// `recover` events on track 0).  Empty when telemetry is disabled.
    pub spans: Vec<SpanEvent>,
    /// Seconds the master spent with nothing pending (the contiguous
    /// gaps between handled messages).
    pub idle_seconds: f64,
    /// Every recovery action taken (requeues, heartbeat misses,
    /// respawns, quarantined modes).  Clean on an undisturbed run.
    pub recovery: RecoveryLog,
}

/// Internal mutable state of one master session.
struct Session {
    queue: WorkQueue,
    ks: Vec<f64>,
    outputs: Vec<Option<ModeOutput>>,
    completion_log: Vec<(usize, usize)>,
    bytes_received: usize,
    /// Ranks the stop message has been sent to.
    stopped: HashSet<Rank>,
    /// The tag that idles a worker when its part of the job is over
    /// (tag 6 one-shot, tag 11 pooled) — see [`SessionKind`].
    release_tag: Tag,
    /// Statistics by worker index (rank − 1).
    stats: Vec<Option<WorkerStats>>,
    n_workers: usize,
    /// Recovery knobs (copied out of the config so helpers don't need
    /// the whole config threaded through).
    policy: RecoveryPolicy,
    /// Modes per tag-3 assignment (≥ 1; copied from the config).
    chunk: usize,
    /// Modes currently held by each worker (index = rank − 1), in the
    /// order they were assigned — the worker reports them back in this
    /// order, one result (or tag-8 failure) per mode.
    in_flight: Vec<Vec<usize>>,
    /// Ranks declared dead (watch report or heartbeat silence).
    dead: HashSet<Rank>,
    /// Last time each rank sent *anything* (index = rank − 1).
    last_seen: Vec<Instant>,
    /// Idle ranks held back from their stop because another worker still
    /// carries a mode that may yet be requeued (Requeue policy only).
    parked: HashSet<Rank>,
    /// Modes that exhausted their attempt budget.
    quarantined: HashSet<usize>,
    /// Counters for every recovery action.
    recovery: RecoveryLog,
    /// Master-side span timeline (track 0 of the trace).
    rec: SpanRecorder,
    /// Start of the current contiguous idle interval, if any.
    idle_since: Option<Instant>,
    /// Accumulated idle seconds.
    idle_seconds: f64,
    /// Encoded spec of the *next* job, appended as a tag-13 prefetch
    /// hint to each pooled release so the worker warms the next job's
    /// physics tables while its peers finish this job's tail chunks.
    /// `None` (the default) sends no hint; one-shot sessions ignore it.
    prefetch_wire: Option<Vec<f64>>,
    /// Canonical request identity ([`job_hash`] of the spec, rendered
    /// as 16 hex digits) — stamped on every span and log event this
    /// session records, so one request's trail is filterable
    /// end to end.
    job: String,
}

impl Session {
    fn ikdone(&self) -> usize {
        self.completion_log.len()
    }

    fn unfinished(&self) -> Vec<usize> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(ik, o)| o.is_none().then_some(ik))
            .collect()
    }

    /// Every mode is either completed or quarantined.
    fn all_settled(&self) -> bool {
        self.ikdone() + self.quarantined.len() >= self.outputs.len()
    }

    /// Session exit condition.  Under FailFast this is exactly the
    /// historical one (all modes done, all workers stopped and
    /// reported); under Requeue a dead rank counts as resolved — it will
    /// never stop or report.
    fn finished(&self) -> bool {
        if !self.all_settled() {
            return false;
        }
        (1..=self.n_workers).all(|r| {
            (self.policy.recovers() && self.dead.contains(&r))
                || (self.stopped.contains(&r) && self.stats[r - 1].is_some())
        })
    }

    /// Close the current idle interval, if one is open, recording it as
    /// an `idle` span and adding it to the idle total.
    fn end_idle(&mut self) {
        if let Some(since) = self.idle_since.take() {
            let now = Instant::now();
            self.idle_seconds += now.duration_since(since).as_secs_f64();
            let job = self.job.clone();
            self.rec
                .record("idle", "master", since, now, &[("job", job)]);
        }
    }

    /// Reply to a ready worker: next assignment (a chunk of up to
    /// `self.chunk` modes in one tag-3 message), or stop.  A worker
    /// still part-way through a chunk gets nothing — it is refilled
    /// only once its last in-flight mode resolves.  Under the Requeue
    /// policy a worker with no pending work is *parked* (no reply yet)
    /// while other workers still carry modes that may come back to the
    /// queue.
    fn dispatch<T: Transport>(&mut self, t: &mut T, rank: Rank) -> Result<(), FarmError> {
        if !self.in_flight[rank - 1].is_empty() {
            return Ok(());
        }
        let iks = self.queue.pop_chunk(self.chunk);
        if !iks.is_empty() {
            let t0 = Instant::now();
            let wire: Vec<f64> = iks.iter().map(|&ik| ik as f64).collect();
            mysendreal(t, &wire, TAG_ASSIGN, rank)?;
            self.in_flight[rank - 1] = iks;
            // the silence clock measures the worker against *this*
            // assignment; a long park before it must not count
            self.last_seen[rank - 1] = Instant::now();
            let iks_str = self.in_flight[rank - 1]
                .iter()
                .map(|ik| ik.to_string())
                .collect::<Vec<_>>()
                .join(",");
            self.rec.record(
                "assign",
                "master",
                t0,
                Instant::now(),
                &[
                    ("ik", iks_str),
                    ("worker", rank.to_string()),
                    ("job", self.job.clone()),
                ],
            );
        } else if self.policy.recovers() && !self.all_settled() {
            self.parked.insert(rank);
        } else {
            self.release(t, rank)?;
        }
        Ok(())
    }

    /// Send a rank its release and, for pooled sessions with a next-job
    /// hint set, follow it with a tag-13 prefetch so the worker warms
    /// the next job's physics tables while it parks.  The hint is
    /// best-effort: a rank that cannot take it is already being handled
    /// by the watch, and the next job re-announces its spec anyway.
    fn release<T: Transport>(&mut self, t: &mut T, rank: Rank) -> Result<(), FarmError> {
        mysendreal(t, &[0.0], self.release_tag, rank)?;
        self.stopped.insert(rank);
        if self.release_tag == TAG_JOBDONE {
            if let Some(wire) = self.prefetch_wire.as_ref() {
                let _ = mysendreal(t, wire, TAG_PREFETCH, rank);
            }
        }
        Ok(())
    }

    /// Strike one resolved mode off a rank's in-flight list (no-op if
    /// it was not held — e.g. already recovered through another path).
    fn resolve_in_flight(&mut self, rank: Rank, ik: usize) {
        let held = &mut self.in_flight[rank - 1];
        if let Some(pos) = held.iter().position(|&x| x == ik) {
            held.remove(pos);
        }
    }

    /// Take everything a lost rank was holding and requeue (or
    /// quarantine) it, front-of-queue, preserving the chunk's internal
    /// dispatch order.
    fn recover_chunk<T: Transport>(
        &mut self,
        t: &mut T,
        rank: Rank,
        reason: &str,
    ) -> Result<(), FarmError> {
        let chunk = std::mem::take(&mut self.in_flight[rank - 1]);
        // requeue back-to-front so requeue_front leaves the chunk's
        // first mode first in the queue
        for &ik in chunk.iter().rev() {
            self.requeue_or_quarantine(t, ik, reason)?;
        }
        Ok(())
    }

    /// Release every parked worker with a stop (called once all modes
    /// are settled).
    fn stop_parked<T: Transport>(&mut self, t: &mut T) -> Result<(), FarmError> {
        if self.parked.is_empty() {
            return Ok(());
        }
        let ranks: Vec<Rank> = self.parked.drain().collect();
        for rank in ranks {
            self.release(t, rank)?;
        }
        Ok(())
    }

    /// A mode came back without a result (its worker died, stalled, or
    /// reported failure): return it to the head of the queue if it still
    /// has attempt budget, else quarantine it.  Requeued work wakes any
    /// parked worker.
    fn requeue_or_quarantine<T: Transport>(
        &mut self,
        t: &mut T,
        ik: usize,
        reason: &str,
    ) -> Result<(), FarmError> {
        let t0 = Instant::now();
        let attempts = self.queue.attempts(ik);
        if attempts >= self.policy.max_attempts() {
            self.quarantined.insert(ik);
            self.recovery.failed_modes.push(FailedMode {
                ik,
                k: self.ks.get(ik).copied().unwrap_or(f64::NAN),
                attempts,
                reason: reason.to_string(),
            });
            self.rec.record(
                "recover",
                "master",
                t0,
                Instant::now(),
                &[
                    ("ik", ik.to_string()),
                    ("action", "quarantine".to_string()),
                    ("reason", reason.to_string()),
                    ("job", self.job.clone()),
                ],
            );
            tlog::log(
                Level::Error,
                "master",
                "mode_quarantined",
                &[
                    ("job", self.job.clone()),
                    ("ik", ik.to_string()),
                    ("attempts", attempts.to_string()),
                    ("reason", reason.to_string()),
                ],
            );
        } else {
            self.queue.requeue_front(ik);
            self.recovery.requeues += 1;
            self.rec.record(
                "recover",
                "master",
                t0,
                Instant::now(),
                &[
                    ("ik", ik.to_string()),
                    ("action", "requeue".to_string()),
                    ("reason", reason.to_string()),
                    ("job", self.job.clone()),
                ],
            );
            tlog::log(
                Level::Warn,
                "master",
                "chunk_requeue",
                &[
                    ("job", self.job.clone()),
                    ("ik", ik.to_string()),
                    ("reason", reason.to_string()),
                ],
            );
            let parked: Vec<Rank> = self.parked.drain().collect();
            for rank in parked {
                self.dispatch(t, rank)?;
            }
        }
        Ok(())
    }

    /// Declare a rank dead and recover its in-flight mode (Requeue
    /// policy only).
    fn mark_dead<T: Transport>(
        &mut self,
        t: &mut T,
        rank: Rank,
        reason: &str,
    ) -> Result<(), FarmError> {
        if !self.dead.insert(rank) {
            return Ok(());
        }
        tlog::log(
            Level::Warn,
            "master",
            "worker_dead",
            &[
                ("job", self.job.clone()),
                ("worker", rank.to_string()),
                ("reason", reason.to_string()),
            ],
        );
        self.parked.remove(&rank);
        self.recover_chunk(t, rank, reason)
    }

    /// Fold a batch of watch events into the session.  Returns
    /// `Ok(Some(rank))` when the FailFast policy demands the session
    /// abort with [`FarmError::WorkerLost`] for that rank.
    fn apply_events<T: Transport>(
        &mut self,
        t: &mut T,
        spec_wire: &[f64],
        events: Vec<WorkerEvent>,
    ) -> Result<Option<Rank>, FarmError> {
        for ev in events {
            match ev {
                WorkerEvent::Dead(rank) => {
                    if rank == 0 || rank > self.n_workers || self.dead.contains(&rank) {
                        continue;
                    }
                    if self.policy.recovers() {
                        self.mark_dead(t, rank, "worker lost")?;
                    } else if !self.stopped.contains(&rank) {
                        return Ok(Some(rank));
                    }
                    // FailFast + already stopped: the idle branch's
                    // missing-statistics check handles it (WorkerJoin).
                }
                WorkerEvent::Respawned(rank) => {
                    if rank == 0 || rank > self.n_workers {
                        continue;
                    }
                    let t0 = Instant::now();
                    self.dead.remove(&rank);
                    self.stopped.remove(&rank);
                    self.parked.remove(&rank);
                    self.stats[rank - 1] = None;
                    // a watch that replaces a child reports Respawned
                    // without a Dead first; whatever the old incarnation
                    // was holding died with it
                    self.recover_chunk(t, rank, "worker respawned")?;
                    self.last_seen[rank - 1] = Instant::now();
                    self.recovery.respawns += 1;
                    // the replacement process missed the tag-1 broadcast;
                    // re-send the spec point-to-point, it will answer with
                    // a tag-2 work request like any fresh worker
                    mysendreal(t, spec_wire, TAG_INIT, rank)?;
                    self.rec.record(
                        "recover",
                        "master",
                        t0,
                        Instant::now(),
                        &[
                            ("worker", rank.to_string()),
                            ("action", "respawn".to_string()),
                            ("job", self.job.clone()),
                        ],
                    );
                    tlog::log(
                        Level::Warn,
                        "master",
                        "worker_respawned",
                        &[("job", self.job.clone()), ("worker", rank.to_string())],
                    );
                }
            }
        }
        Ok(None)
    }

    /// Declare dead any live rank that holds an assignment but has been
    /// silent past the heartbeat timeout (Requeue policy only): workers
    /// heartbeat every ~100 ms while integrating, so prolonged silence
    /// means the worker is hung, not busy.
    fn scan_heartbeats<T: Transport>(
        &mut self,
        t: &mut T,
        timeout: Duration,
    ) -> Result<(), FarmError> {
        for rank in 1..=self.n_workers {
            if self.dead.contains(&rank) || self.stopped.contains(&rank) {
                continue;
            }
            if !self.in_flight[rank - 1].is_empty() && self.last_seen[rank - 1].elapsed() > timeout
            {
                self.recovery.heartbeat_misses += 1;
                tlog::log(
                    Level::Warn,
                    "master",
                    "heartbeat_miss",
                    &[("job", self.job.clone()), ("worker", rank.to_string())],
                );
                self.mark_dead(t, rank, "heartbeat timeout")?;
            }
        }
        Ok(())
    }

    fn record_stats(&mut self, rank: Rank, payload: &[f64]) -> Result<(), FarmError> {
        let ws = WorkerStats::from_wire(payload).ok_or_else(|| FarmError::Protocol {
            rank,
            detail: format!(
                "stats message must be 4, 8, 9, or 10 finite non-negative reals, got {} values",
                payload.len()
            ),
        })?;
        if let Some(slot) = self.stats.get_mut(rank.wrapping_sub(1)) {
            *slot = Some(ws);
        }
        Ok(())
    }

    /// Flush stops to every worker not yet stopped, then drain pending
    /// messages (collecting statistics) until the deadline or until
    /// every live worker has reported.  Send errors are ignored: some of
    /// these workers may already be gone, and the point is to unblock
    /// the survivors.
    fn drain_and_stop<T: Transport>(
        &mut self,
        t: &mut T,
        cfg: &MasterConfig,
        watch: &mut dyn FnMut() -> Vec<WorkerEvent>,
    ) {
        for rank in 1..=self.n_workers {
            if !self.stopped.contains(&rank) {
                let _ = mysendreal(t, &[0.0], self.release_tag, rank);
                self.stopped.insert(rank);
            }
        }
        let deadline = Instant::now() + cfg.drain_timeout;
        let mut buf = Vec::new();
        while Instant::now() < deadline {
            let dead: HashSet<Rank> = watch()
                .into_iter()
                .filter_map(|e| match e {
                    WorkerEvent::Dead(r) => Some(r),
                    WorkerEvent::Respawned(_) => None,
                })
                .chain(self.dead.iter().copied())
                .collect();
            let expected = (1..=self.n_workers)
                .filter(|r| !dead.contains(r) && self.stats[r - 1].is_none())
                .count();
            if expected == 0 {
                break;
            }
            match t.probe_timeout(None, None, cfg.poll) {
                Ok(Some(env)) => {
                    if myrecvreal(t, &mut buf, env.tag, env.source).is_err() {
                        break;
                    }
                    if env.tag == TAG_STATS {
                        let _ = self.record_stats(env.source, &buf);
                    }
                }
                Ok(None) => continue,
                Err(_) => break,
            }
        }
    }

    /// Cooperatively cancel the job: tag-12 to every live un-stopped
    /// rank (integrating workers abort mid-chunk at their next observer
    /// poll; parked workers take it as their release), then the normal
    /// drain — stats are collected and pooled workers park consistently
    /// for the next job.  Returns the error the session ends with.
    fn cancel_job<T: Transport>(
        &mut self,
        t: &mut T,
        cfg: &MasterConfig,
        watch: &mut dyn FnMut() -> Vec<WorkerEvent>,
        reason: CancelReason,
    ) -> FarmError {
        let unfinished = self.unfinished();
        tlog::log(
            Level::Warn,
            "master",
            "job_cancelled",
            &[
                ("job", self.job.clone()),
                ("reason", reason.to_string()),
                ("unfinished", unfinished.len().to_string()),
            ],
        );
        for rank in 1..=self.n_workers {
            if self.dead.contains(&rank) || self.stopped.contains(&rank) {
                continue;
            }
            // best-effort, like the drain's release sends: a rank that
            // cannot be reached is already being handled by the watch
            let _ = mysendreal(t, &[0.0], TAG_CANCEL, rank);
        }
        self.recovery.cancelled = true;
        self.drain_and_stop(t, cfg, watch);
        FarmError::Cancelled { reason, unfinished }
    }

    /// Collect tag-7 goodbye reports that were still in flight when the
    /// death report won the race against them (a worker that took its
    /// stop, sent statistics, and exited can be seen dead by the watch
    /// before its last message is read).  Bounded by the drain timeout.
    fn sweep_stats<T: Transport>(&mut self, t: &mut T, cfg: &MasterConfig) {
        let deadline = Instant::now() + cfg.drain_timeout;
        let mut buf = Vec::new();
        while Instant::now() < deadline {
            let expected = (1..=self.n_workers)
                .filter(|&r| self.stopped.contains(&r) && self.stats[r - 1].is_none())
                .count();
            if expected == 0 {
                break;
            }
            match t.probe_timeout(None, None, cfg.poll) {
                Ok(Some(env)) => {
                    if myrecvreal(t, &mut buf, env.tag, env.source).is_err() {
                        break;
                    }
                    if env.tag == TAG_STATS {
                        let _ = self.record_stats(env.source, &buf);
                    }
                }
                Ok(None) => continue,
                Err(_) => break,
            }
        }
    }

    fn into_ledger(mut self, t0: Instant) -> MasterLedger {
        self.end_idle();
        MasterLedger {
            outputs: self.outputs,
            wall_seconds: t0.elapsed().as_secs_f64(),
            bytes_received: self.bytes_received,
            completion_log: self.completion_log,
            worker_stats: self
                .stats
                .into_iter()
                .map(Option::unwrap_or_default)
                .collect(),
            spans: self.rec.into_events(),
            idle_seconds: self.idle_seconds,
            recovery: self.recovery,
        }
    }
}

/// Run the master loop: broadcast the spec, hand out wavenumbers in
/// `policy` order, collect the two-part results, stop every worker,
/// gather their statistics.
///
/// `watch` is polled between probes and must report liveness changes
/// (thread farms report workers whose loop returned; process farms
/// report children that exited, and may report a respawn after
/// re-handshaking a replacement).  Under [`RecoveryPolicy::FailFast`] a
/// dead rank that was never stopped aborts the session with
/// [`FarmError::WorkerLost`] after draining the survivors; under
/// [`RecoveryPolicy::Requeue`] its work is redistributed.
pub fn master_loop<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
    cfg: &MasterConfig,
    watch: &mut dyn FnMut() -> Vec<WorkerEvent>,
) -> Result<MasterLedger, FarmError> {
    master_session(t, spec, policy, cfg, watch, Instant::now())
}

/// [`master_loop`] with an explicit span epoch: every span the master
/// records is stamped relative to `epoch`, so a farm that hands the same
/// epoch to its workers gets one aligned timeline across all tracks.
pub fn master_session<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
    cfg: &MasterConfig,
    watch: &mut dyn FnMut() -> Vec<WorkerEvent>,
    epoch: Instant,
) -> Result<MasterLedger, FarmError> {
    master_job_session(
        t,
        spec,
        policy,
        cfg,
        watch,
        epoch,
        SessionKind::OneShot,
        &JobControl::default(),
    )
}

/// [`master_session`] generalized over the worker-lifetime relation.
///
/// Every per-job structure — the work queue, output slots, recovery
/// ledger, heartbeat clocks, idle accounting, span timeline — is built
/// fresh here, which is what makes a pooled session *reset* without
/// tearing anything down: the state lives on the stack of this call,
/// not in the world.  Only the transport endpoints (and, worker-side,
/// the warm physics caches) persist between calls.
///
/// `ctrl` is checked once per poll interval; a fired deadline or cancel
/// flag cancels the job cooperatively (see [`JobControl`]).
#[allow(clippy::too_many_arguments)]
pub fn master_job_session<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
    cfg: &MasterConfig,
    watch: &mut dyn FnMut() -> Vec<WorkerEvent>,
    epoch: Instant,
    kind: SessionKind,
    ctrl: &JobControl<'_>,
) -> Result<MasterLedger, FarmError> {
    master_job_session_prefetch(t, spec, policy, cfg, watch, epoch, kind, ctrl, None)
}

/// [`master_job_session`] with an optional next-job prefetch hint: when
/// `prefetch` is set and the session is [`SessionKind::Pooled`], every
/// tag-11 release is followed by a tag-13 [`TAG_PREFETCH`] carrying the
/// next job's spec, so released workers build that job's physics tables
/// while the session's tail chunks finish on their peers.  This is the
/// ensemble scheduler's overlap mechanism; it never changes results
/// (caches are keyed on the canonical cosmology hash) and one-shot
/// sessions ignore it.
#[allow(clippy::too_many_arguments)]
pub fn master_job_session_prefetch<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
    cfg: &MasterConfig,
    watch: &mut dyn FnMut() -> Vec<WorkerEvent>,
    epoch: Instant,
    kind: SessionKind,
    ctrl: &JobControl<'_>,
    prefetch: Option<&RunSpec>,
) -> Result<MasterLedger, FarmError> {
    let t0 = Instant::now();
    let nk = spec.ks.len();
    let n_workers = t.size() - 1;
    let order = policy.order(&spec.ks);
    let job = tlog::job_hex(job_hash(spec));
    let mut s = Session {
        queue: WorkQueue::new(&order, nk),
        ks: spec.ks.clone(),
        outputs: (0..nk).map(|_| None).collect(),
        completion_log: Vec::with_capacity(nk),
        bytes_received: 0,
        stopped: HashSet::new(),
        release_tag: kind.release_tag(),
        stats: vec![None; n_workers],
        n_workers,
        policy: cfg.recovery,
        chunk: cfg.chunk.max(1),
        in_flight: vec![Vec::new(); n_workers],
        dead: HashSet::new(),
        last_seen: vec![Instant::now(); n_workers],
        parked: HashSet::new(),
        quarantined: HashSet::new(),
        recovery: RecoveryLog::default(),
        rec: SpanRecorder::new(epoch, 0, 0),
        idle_since: None,
        idle_seconds: 0.0,
        prefetch_wire: prefetch.map(RunSpec::encode),
        job: job.clone(),
    };
    tlog::log(
        Level::Info,
        "master",
        "job_start",
        &[
            ("job", job.clone()),
            ("modes", nk.to_string()),
            ("workers", n_workers.to_string()),
        ],
    );

    let spec_wire = spec.encode();
    match kind {
        SessionKind::OneShot => {
            // broadcast data to all node programs; a partial broadcast
            // leaves the world inconsistent, so any failure here is
            // fatal for the session
            mybcastreal(t, &spec_wire, TAG_INIT).map_err(FarmError::Setup)?;
        }
        SessionKind::Pooled => {
            // fold in casualties from earlier jobs first, so a rank
            // that died on the pool is never offered this job; a rank
            // respawned between jobs is a fresh worker that picks the
            // job up from the tag-10 send like everyone else
            for ev in watch() {
                match ev {
                    WorkerEvent::Dead(rank) => {
                        if rank == 0 || rank > n_workers || s.dead.contains(&rank) {
                            continue;
                        }
                        if s.policy.recovers() {
                            s.mark_dead(t, rank, "dead before job start")?;
                        } else {
                            return Err(FarmError::WorkerLost {
                                rank,
                                unfinished: s.unfinished(),
                            });
                        }
                    }
                    WorkerEvent::Respawned(rank) => {
                        if rank == 0 || rank > n_workers {
                            continue;
                        }
                        s.dead.remove(&rank);
                        s.recovery.respawns += 1;
                    }
                }
            }
            for rank in 1..=n_workers {
                if s.dead.contains(&rank) {
                    continue;
                }
                if let Err(e) = mysendreal(t, &spec_wire, TAG_NEWJOB, rank) {
                    if s.policy.recovers() {
                        s.mark_dead(t, rank, "unreachable at job start")?;
                    } else {
                        return Err(FarmError::Setup(e));
                    }
                }
            }
            if s.dead.len() == s.n_workers {
                return Err(FarmError::AllWorkersLost {
                    unfinished: s.unfinished(),
                });
            }
        }
    }

    let mut header = Vec::new();
    let mut payload = Vec::new();

    while !s.finished() {
        // deadline/cancel check rides the poll cadence: cancellation
        // latency is one poll interval plus the workers' observer lag
        if let Some(reason) = ctrl.triggered() {
            return Err(s.cancel_job(t, cfg, watch, reason));
        }
        // a quarantine can settle the run while workers sit parked
        if s.all_settled() {
            s.stop_parked(t)?;
        }
        let poll_start = Instant::now();
        let env = match t.probe_timeout(None, None, cfg.poll) {
            Ok(e) => e,
            Err(e) => {
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::Comm(e));
            }
        };
        let Some(env) = env else {
            // nothing pending for a whole poll interval: the master is
            // idle; keep (or open) the contiguous idle interval
            if s.idle_since.is_none() {
                s.idle_since = Some(poll_start);
            }
            // silence: check for casualties before waiting again
            let events = watch();
            let dead_now: Vec<Rank> = events
                .iter()
                .filter_map(|e| match e {
                    WorkerEvent::Dead(r) => Some(*r),
                    WorkerEvent::Respawned(_) => None,
                })
                .collect();
            if let Some(rank) = s.apply_events(t, &spec_wire, events)? {
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::WorkerLost {
                    rank,
                    unfinished: s.unfinished(),
                });
            }
            if cfg.recovery.recovers() {
                s.scan_heartbeats(t, cfg.heartbeat_timeout)?;
                if s.dead.len() == s.n_workers && !s.all_settled() {
                    return Err(FarmError::AllWorkersLost {
                        unfinished: s.unfinished(),
                    });
                }
            } else {
                // a stopped worker that died before reporting statistics
                // can never report; don't wait for it forever
                if let Some(&rank) = dead_now
                    .iter()
                    .find(|&&r| r >= 1 && r <= n_workers && s.stats[r - 1].is_none())
                {
                    if s.ikdone() == nk && s.stopped.len() == n_workers {
                        return Err(FarmError::WorkerJoin {
                            rank,
                            detail: "worker exited without reporting statistics".into(),
                        });
                    }
                }
            }
            continue;
        };
        let itid = env.source;
        s.end_idle();
        if itid >= 1 && itid <= n_workers {
            s.last_seen[itid - 1] = Instant::now();
        }

        // a rank already declared dead may still have messages in the
        // pipe (the death report raced them); consume without acting —
        // except its goodbye statistics, which are still good data
        if s.dead.contains(&itid) {
            let _ = myrecvreal(t, &mut payload, env.tag, itid);
            match env.tag {
                TAG_STATS => {
                    let _ = s.record_stats(itid, &payload);
                }
                TAG_HEADER | TAG_FAIL => s.recovery.late_results += 1,
                _ => {}
            }
            continue;
        }

        match env.tag {
            TAG_REQUEST => {
                // the worker is ready for its first ik; no data
                myrecvreal(t, &mut header, TAG_REQUEST, itid)?;
                s.dispatch(t, itid)?;
            }
            TAG_HEARTBEAT => {
                // tag 9: liveness only; last_seen was refreshed above
                myrecvreal(t, &mut payload, TAG_HEARTBEAT, itid)?;
                s.recovery.heartbeats += 1;
            }
            TAG_HEADER => {
                let t_collect = Instant::now();
                // first part of the data; its tail tells us lmax
                myrecvreal(t, &mut header, TAG_HEADER, itid)?;
                // second part follows from the same worker (tag 5);
                // bounded wait in case the worker dies in between
                let data_deadline = Instant::now() + cfg.drain_timeout;
                let mut lost = false;
                loop {
                    match t.probe_timeout(Some(itid), Some(TAG_DATA), cfg.poll)? {
                        Some(_) => break,
                        None => {
                            let events = watch();
                            if let Some(rank) = s.apply_events(t, &spec_wire, events)? {
                                s.drain_and_stop(t, cfg, watch);
                                return Err(FarmError::WorkerLost {
                                    rank,
                                    unfinished: s.unfinished(),
                                });
                            }
                            if s.dead.contains(&itid) {
                                // apply_events already requeued its mode
                                lost = true;
                                break;
                            }
                            if Instant::now() >= data_deadline {
                                if cfg.recovery.recovers() {
                                    s.mark_dead(t, itid, "silent between header and data")?;
                                    lost = true;
                                    break;
                                }
                                s.drain_and_stop(t, cfg, watch);
                                return Err(FarmError::WorkerLost {
                                    rank: itid,
                                    unfinished: s.unfinished(),
                                });
                            }
                        }
                    }
                }
                if lost {
                    continue;
                }
                myrecvreal(t, &mut payload, TAG_DATA, itid)?;
                s.last_seen[itid - 1] = Instant::now();
                s.bytes_received += (header.len() + payload.len()) * 8;
                let (ik, out) = match ModeOutput::from_wire(&header, &payload) {
                    Ok(pair) => pair,
                    Err(e) => {
                        if cfg.recovery.recovers() {
                            let held = s.in_flight[itid - 1].len();
                            // a corrupted result is recoverable: the
                            // mode goes back to the queue
                            s.recover_chunk(t, itid, &format!("malformed result: {e}"))?;
                            if held <= 1 {
                                // single-mode protocol: the worker is
                                // between modes, hand it fresh work
                                s.dispatch(t, itid)?;
                            } else {
                                // mid-chunk the result stream can no
                                // longer be trusted mode-for-mode:
                                // retire the rank so its remaining
                                // sends are consumed as late traffic
                                s.mark_dead(t, itid, "result stream desynchronized")?;
                            }
                            continue;
                        }
                        s.drain_and_stop(t, cfg, watch);
                        return Err(FarmError::Wire {
                            rank: itid,
                            source: e,
                        });
                    }
                };
                if ik >= nk || s.outputs[ik].is_some() {
                    s.drain_and_stop(t, cfg, watch);
                    return Err(FarmError::Protocol {
                        rank: itid,
                        detail: format!("result for invalid or duplicate mode ik={ik}"),
                    });
                }
                s.rec.record(
                    "collect",
                    "master",
                    t_collect,
                    Instant::now(),
                    &[
                        ("ik", ik.to_string()),
                        ("k", format!("{:.6e}", out.k)),
                        ("worker", itid.to_string()),
                        ("job", s.job.clone()),
                    ],
                );
                s.outputs[ik] = Some(out);
                s.completion_log.push((ik, itid));
                s.resolve_in_flight(itid, ik);
                s.dispatch(t, itid)?;
                if s.all_settled() {
                    s.stop_parked(t)?;
                }
            }
            TAG_FAIL => {
                myrecvreal(t, &mut payload, TAG_FAIL, itid)?;
                let ik = payload.first().copied().unwrap_or(-1.0) as usize;
                let k = payload.get(1).copied().unwrap_or(f64::NAN);
                if cfg.recovery.recovers() {
                    // the worker survives its failed mode (and keeps
                    // working through the rest of its chunk); budget
                    // the mode and refill the worker once it runs dry
                    s.resolve_in_flight(itid, ik);
                    if ik < nk && s.outputs[ik].is_none() && !s.quarantined.contains(&ik) {
                        s.requeue_or_quarantine(
                            t,
                            ik,
                            &format!("integration failed on rank {itid}"),
                        )?;
                    }
                    s.dispatch(t, itid)?;
                    if s.all_settled() {
                        s.stop_parked(t)?;
                    }
                } else {
                    s.drain_and_stop(t, cfg, watch);
                    return Err(FarmError::Evolve {
                        rank: itid,
                        ik,
                        k,
                        source: None,
                    });
                }
            }
            TAG_STATS => {
                myrecvreal(t, &mut payload, TAG_STATS, itid)?;
                s.record_stats(itid, &payload)?;
            }
            other => {
                // consume it so the drain doesn't trip over it again,
                // then shut the session down
                let _ = myrecvreal(t, &mut payload, other, itid);
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::Protocol {
                    rank: itid,
                    detail: format!("unexpected tag {other}"),
                });
            }
        }
    }

    if cfg.recovery.recovers() {
        // collect goodbye statistics that raced a death report, then give
        // ranks we declared dead on heartbeat evidence (which may in fact
        // be alive, just stalled) a best-effort stop so they can exit
        s.sweep_stats(t, cfg);
        for rank in 1..=n_workers {
            if !s.stopped.contains(&rank) {
                let _ = mysendreal(t, &[0.0], s.release_tag, rank);
            }
        }
    }

    let quarantined = s.quarantined.len();
    let ledger = s.into_ledger(t0);
    tlog::log(
        Level::Info,
        "master",
        "job_done",
        &[
            ("job", job),
            ("modes", ledger.completion_log.len().to_string()),
            ("quarantined", quarantined.to_string()),
            ("wall_ms", format!("{:.1}", ledger.wall_seconds * 1000.0)),
        ],
    );
    Ok(ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::worker_loop;
    use boltzmann::Preset;
    use msgpass::channel::ChannelWorld;
    use std::thread;

    fn no_watch() -> impl FnMut() -> Vec<WorkerEvent> {
        Vec::new
    }

    #[test]
    fn farm_protocol_end_to_end_two_workers() {
        let mut spec = RunSpec::standard_cdm(vec![0.002, 0.01, 0.03, 0.005]);
        spec.preset = Preset::Draft;
        let mut eps = ChannelWorld::new(3);
        let workers: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| thread::spawn(move || worker_loop(&mut ep).unwrap()))
            .collect();
        let mut master_ep = eps.pop().unwrap();
        let cfg = MasterConfig::default();
        let ledger = master_loop(
            &mut master_ep,
            &spec,
            SchedulePolicy::LargestFirst,
            &cfg,
            &mut no_watch(),
        )
        .unwrap();

        assert_eq!(ledger.completion_log.len(), 4);
        assert!(ledger.outputs.iter().all(|o| o.is_some()));
        for (i, out) in ledger.outputs.iter().enumerate() {
            let out = out.as_ref().unwrap();
            assert_eq!(out.k, spec.ks[i], "slot {i} holds the right mode");
            assert!(out.delta_c.is_finite());
        }
        // largest-first: the first completion should be one of the big k's
        // (can't be strict with 2 workers, but the first *assignment* is
        // k = 0.03 → ik 2 must not complete last)
        assert!(ledger.completion_log.iter().any(|&(ik, _)| ik == 2));
        let local: Vec<_> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        let total: usize = local.iter().map(|s| s.modes).sum();
        assert_eq!(total, 4);
        // the wire-carried statistics must agree with the workers' own
        assert_eq!(ledger.worker_stats.len(), 2);
        assert_eq!(
            ledger.worker_stats.iter().map(|s| s.modes).sum::<usize>(),
            4
        );
        assert!(ledger.worker_stats.iter().all(|s| s.busy_seconds > 0.0));
        assert_eq!(
            ledger
                .worker_stats
                .iter()
                .map(|s| s.bytes_sent)
                .sum::<usize>(),
            ledger.bytes_received
        );
    }

    #[test]
    fn unexpected_tag_drains_and_errors() {
        let spec = RunSpec::standard_cdm(vec![0.01]);
        let mut eps = ChannelWorld::new(2);
        let mut rogue = eps.pop().unwrap();
        let mut master_ep = eps.pop().unwrap();
        let h = thread::spawn(move || {
            let mut buf = Vec::new();
            // swallow the init broadcast, then send garbage
            rogue.recv(0, TAG_INIT, &mut buf).unwrap();
            rogue.send(0, 99, &[1.0]).unwrap();
            // the drain must still deliver our stop
            rogue.recv(0, TAG_STOP, &mut buf).unwrap();
        });
        let cfg = MasterConfig {
            poll: Duration::from_millis(5),
            drain_timeout: Duration::from_millis(300),
            ..MasterConfig::default()
        };
        let err = master_loop(
            &mut master_ep,
            &spec,
            SchedulePolicy::Fifo,
            &cfg,
            &mut no_watch(),
        )
        .unwrap_err();
        match err {
            FarmError::Protocol { rank, detail } => {
                assert_eq!(rank, 1);
                assert!(detail.contains("99"), "{detail}");
            }
            other => panic!("expected Protocol, got {other}"),
        }
        h.join().unwrap();
    }
}
