//! The master subroutine (`parentsub` in Appendix A), hardened into a
//! session loop that survives worker death.
//!
//! The paper's listing drives the farm with a blocking `mycheckany`; a
//! worker that dies without a goodbye would park that master forever.
//! This version polls with [`Transport::probe_timeout`] and consults a
//! caller-supplied liveness watch between polls, so a lost worker turns
//! into a typed [`FarmError::WorkerLost`] naming every unfinished mode
//! instead of a deadlock.  Any abnormal event — worker death, a tag-8
//! failure report, an unexpected tag, a malformed result — routes
//! through one drain-and-stop shutdown that flushes tag-6 stops to all
//! surviving workers and collects what statistics it can before
//! returning the error.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use boltzmann::ModeOutput;
use msgpass::wrappers::*;
use msgpass::{Rank, Transport};
use telemetry::{SpanEvent, SpanRecorder};

use crate::error::FarmError;
use crate::protocol::{
    RunSpec, TAG_ASSIGN, TAG_DATA, TAG_FAIL, TAG_HEADER, TAG_INIT, TAG_REQUEST, TAG_STATS, TAG_STOP,
};
use crate::schedule::SchedulePolicy;
use crate::worker::WorkerStats;

/// Timing knobs of the master loop.
#[derive(Debug, Clone, Copy)]
pub struct MasterConfig {
    /// How long one bounded probe waits before re-checking liveness.
    pub poll: Duration,
    /// How long the drain phase waits for survivors' statistics (and the
    /// normal shutdown waits for stragglers) before giving up.
    pub drain_timeout: Duration,
}

impl Default for MasterConfig {
    fn default() -> Self {
        Self {
            poll: Duration::from_millis(25),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// What the master accumulated over one farm run.
#[derive(Debug)]
pub struct MasterLedger {
    /// Finished modes, indexed like `spec.ks` (every slot filled on
    /// success).
    pub outputs: Vec<Option<ModeOutput>>,
    /// Wall-clock seconds of the master loop (broadcast → last stop).
    pub wall_seconds: f64,
    /// Bytes received from workers (tags 4 + 5).
    pub bytes_received: usize,
    /// Completion order: `(ik, worker_rank)` in arrival order.
    pub completion_log: Vec<(usize, usize)>,
    /// Per-worker statistics in rank order (rank 1 first), collected
    /// from the tag-7 reports.
    pub worker_stats: Vec<WorkerStats>,
    /// Master-side wall-clock spans (`assign`, `collect`, `idle` events
    /// on track 0).  Empty when telemetry is disabled.
    pub spans: Vec<SpanEvent>,
    /// Seconds the master spent with nothing pending (the contiguous
    /// gaps between handled messages).
    pub idle_seconds: f64,
}

/// Internal mutable state of one master session.
struct Session {
    order: Vec<usize>,
    next: usize,
    outputs: Vec<Option<ModeOutput>>,
    completion_log: Vec<(usize, usize)>,
    bytes_received: usize,
    /// Ranks the stop message has been sent to.
    stopped: HashSet<Rank>,
    /// Statistics by worker index (rank − 1).
    stats: Vec<Option<WorkerStats>>,
    n_workers: usize,
    /// Master-side span timeline (track 0 of the trace).
    rec: SpanRecorder,
    /// Start of the current contiguous idle interval, if any.
    idle_since: Option<Instant>,
    /// Accumulated idle seconds.
    idle_seconds: f64,
}

impl Session {
    fn ikdone(&self) -> usize {
        self.completion_log.len()
    }

    fn stats_done(&self) -> usize {
        self.stats.iter().filter(|s| s.is_some()).count()
    }

    fn unfinished(&self) -> Vec<usize> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(ik, o)| o.is_none().then_some(ik))
            .collect()
    }

    /// Close the current idle interval, if one is open, recording it as
    /// an `idle` span and adding it to the idle total.
    fn end_idle(&mut self) {
        if let Some(since) = self.idle_since.take() {
            let now = Instant::now();
            self.idle_seconds += now.duration_since(since).as_secs_f64();
            self.rec.record("idle", "master", since, now, &[]);
        }
    }

    /// Reply to a ready worker: next assignment, or stop.
    fn dispatch<T: Transport>(&mut self, t: &mut T, rank: Rank) -> Result<(), FarmError> {
        if self.next < self.order.len() {
            let ik = self.order[self.next];
            self.next += 1;
            let t0 = Instant::now();
            mysendreal(t, &[ik as f64], TAG_ASSIGN, rank)?;
            self.rec.record(
                "assign",
                "master",
                t0,
                Instant::now(),
                &[("ik", ik.to_string()), ("worker", rank.to_string())],
            );
        } else {
            mysendreal(t, &[0.0], TAG_STOP, rank)?;
            self.stopped.insert(rank);
        }
        Ok(())
    }

    fn record_stats(&mut self, rank: Rank, payload: &[f64]) -> Result<(), FarmError> {
        let ws = WorkerStats::from_wire(payload).ok_or_else(|| FarmError::Protocol {
            rank,
            detail: format!(
                "stats message must be 4 or 8 finite non-negative reals, got {} values",
                payload.len()
            ),
        })?;
        if let Some(slot) = self.stats.get_mut(rank.wrapping_sub(1)) {
            *slot = Some(ws);
        }
        Ok(())
    }

    /// Flush stops to every worker not yet stopped, then drain pending
    /// messages (collecting statistics) until the deadline or until
    /// every live worker has reported.  Send errors are ignored: some of
    /// these workers may already be gone, and the point is to unblock
    /// the survivors.
    fn drain_and_stop<T: Transport>(
        &mut self,
        t: &mut T,
        cfg: &MasterConfig,
        watch: &mut dyn FnMut() -> Vec<Rank>,
    ) {
        for rank in 1..=self.n_workers {
            if !self.stopped.contains(&rank) {
                let _ = mysendreal(t, &[0.0], TAG_STOP, rank);
                self.stopped.insert(rank);
            }
        }
        let deadline = Instant::now() + cfg.drain_timeout;
        let mut buf = Vec::new();
        while Instant::now() < deadline {
            let dead: HashSet<Rank> = watch().into_iter().collect();
            let expected = (1..=self.n_workers)
                .filter(|r| !dead.contains(r) && self.stats[r - 1].is_none())
                .count();
            if expected == 0 {
                break;
            }
            match t.probe_timeout(None, None, cfg.poll) {
                Ok(Some(env)) => {
                    if myrecvreal(t, &mut buf, env.tag, env.source).is_err() {
                        break;
                    }
                    if env.tag == TAG_STATS {
                        let _ = self.record_stats(env.source, &buf);
                    }
                }
                Ok(None) => continue,
                Err(_) => break,
            }
        }
    }

    fn into_ledger(mut self, t0: Instant) -> MasterLedger {
        self.end_idle();
        MasterLedger {
            outputs: self.outputs,
            wall_seconds: t0.elapsed().as_secs_f64(),
            bytes_received: self.bytes_received,
            completion_log: self.completion_log,
            worker_stats: self
                .stats
                .into_iter()
                .map(Option::unwrap_or_default)
                .collect(),
            spans: self.rec.into_events(),
            idle_seconds: self.idle_seconds,
        }
    }
}

/// Run the master loop: broadcast the spec, hand out wavenumbers in
/// `policy` order, collect the two-part results, stop every worker,
/// gather their statistics.
///
/// `watch` is polled between probes and must return the ranks believed
/// dead (thread farms report workers whose loop returned; process farms
/// report children that exited).  A dead rank that was never stopped
/// aborts the session with [`FarmError::WorkerLost`] after draining the
/// survivors.
pub fn master_loop<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
    cfg: &MasterConfig,
    watch: &mut dyn FnMut() -> Vec<Rank>,
) -> Result<MasterLedger, FarmError> {
    master_session(t, spec, policy, cfg, watch, Instant::now())
}

/// [`master_loop`] with an explicit span epoch: every span the master
/// records is stamped relative to `epoch`, so a farm that hands the same
/// epoch to its workers gets one aligned timeline across all tracks.
pub fn master_session<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
    cfg: &MasterConfig,
    watch: &mut dyn FnMut() -> Vec<Rank>,
    epoch: Instant,
) -> Result<MasterLedger, FarmError> {
    let t0 = Instant::now();
    let nk = spec.ks.len();
    let n_workers = t.size() - 1;
    let mut s = Session {
        order: policy.order(&spec.ks),
        next: 0,
        outputs: (0..nk).map(|_| None).collect(),
        completion_log: Vec::with_capacity(nk),
        bytes_received: 0,
        stopped: HashSet::new(),
        stats: vec![None; n_workers],
        n_workers,
        rec: SpanRecorder::new(epoch, 0, 0),
        idle_since: None,
        idle_seconds: 0.0,
    };

    // broadcast data to all node programs; a partial broadcast leaves the
    // world inconsistent, so any failure here is fatal for the session
    mybcastreal(t, &spec.encode(), TAG_INIT).map_err(FarmError::Setup)?;

    let mut header = Vec::new();
    let mut payload = Vec::new();

    while s.ikdone() < nk || s.stopped.len() < n_workers || s.stats_done() < n_workers {
        let poll_start = Instant::now();
        let env = match t.probe_timeout(None, None, cfg.poll) {
            Ok(e) => e,
            Err(e) => {
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::Comm(e));
            }
        };
        let Some(env) = env else {
            // nothing pending for a whole poll interval: the master is
            // idle; keep (or open) the contiguous idle interval
            if s.idle_since.is_none() {
                s.idle_since = Some(poll_start);
            }
            // silence: check for casualties before waiting again
            let dead = watch();
            if let Some(&rank) = dead.iter().find(|r| !s.stopped.contains(r)) {
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::WorkerLost {
                    rank,
                    unfinished: s.unfinished(),
                });
            }
            // a stopped worker that died before reporting statistics can
            // never report; don't wait for it forever
            if let Some(&rank) = dead.iter().find(|&&r| s.stats[r - 1].is_none()) {
                if s.ikdone() == nk && s.stopped.len() == n_workers {
                    return Err(FarmError::WorkerJoin {
                        rank,
                        detail: "worker exited without reporting statistics".into(),
                    });
                }
            }
            continue;
        };
        let itid = env.source;
        s.end_idle();

        match env.tag {
            TAG_REQUEST => {
                // the worker is ready for its first ik; no data
                myrecvreal(t, &mut header, TAG_REQUEST, itid)?;
                s.dispatch(t, itid)?;
            }
            TAG_HEADER => {
                let t_collect = Instant::now();
                // first part of the data; its tail tells us lmax
                myrecvreal(t, &mut header, TAG_HEADER, itid)?;
                // second part follows from the same worker (tag 5);
                // bounded wait in case the worker dies in between
                let data_deadline = Instant::now() + cfg.drain_timeout;
                loop {
                    match t.probe_timeout(Some(itid), Some(TAG_DATA), cfg.poll)? {
                        Some(_) => break,
                        None => {
                            if watch().contains(&itid) || Instant::now() >= data_deadline {
                                s.drain_and_stop(t, cfg, watch);
                                return Err(FarmError::WorkerLost {
                                    rank: itid,
                                    unfinished: s.unfinished(),
                                });
                            }
                        }
                    }
                }
                myrecvreal(t, &mut payload, TAG_DATA, itid)?;
                s.bytes_received += (header.len() + payload.len()) * 8;
                let (ik, out) = match ModeOutput::from_wire(&header, &payload) {
                    Ok(pair) => pair,
                    Err(e) => {
                        s.drain_and_stop(t, cfg, watch);
                        return Err(FarmError::Wire {
                            rank: itid,
                            source: e,
                        });
                    }
                };
                if ik >= nk || s.outputs[ik].is_some() {
                    s.drain_and_stop(t, cfg, watch);
                    return Err(FarmError::Protocol {
                        rank: itid,
                        detail: format!("result for invalid or duplicate mode ik={ik}"),
                    });
                }
                s.rec.record(
                    "collect",
                    "master",
                    t_collect,
                    Instant::now(),
                    &[
                        ("ik", ik.to_string()),
                        ("k", format!("{:.6e}", out.k)),
                        ("worker", itid.to_string()),
                    ],
                );
                s.outputs[ik] = Some(out);
                s.completion_log.push((ik, itid));
                s.dispatch(t, itid)?;
            }
            TAG_FAIL => {
                myrecvreal(t, &mut payload, TAG_FAIL, itid)?;
                let ik = payload.first().copied().unwrap_or(-1.0) as usize;
                let k = payload.get(1).copied().unwrap_or(f64::NAN);
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::Evolve {
                    rank: itid,
                    ik,
                    k,
                    source: None,
                });
            }
            TAG_STATS => {
                myrecvreal(t, &mut payload, TAG_STATS, itid)?;
                s.record_stats(itid, &payload)?;
            }
            other => {
                // consume it so the drain doesn't trip over it again,
                // then shut the session down
                let _ = myrecvreal(t, &mut payload, other, itid);
                s.drain_and_stop(t, cfg, watch);
                return Err(FarmError::Protocol {
                    rank: itid,
                    detail: format!("unexpected tag {other}"),
                });
            }
        }
    }

    Ok(s.into_ledger(t0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::worker_loop;
    use boltzmann::Preset;
    use msgpass::channel::ChannelWorld;
    use std::thread;

    fn no_watch() -> impl FnMut() -> Vec<Rank> {
        Vec::new
    }

    #[test]
    fn farm_protocol_end_to_end_two_workers() {
        let mut spec = RunSpec::standard_cdm(vec![0.002, 0.01, 0.03, 0.005]);
        spec.preset = Preset::Draft;
        let mut eps = ChannelWorld::new(3);
        let workers: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| thread::spawn(move || worker_loop(&mut ep).unwrap()))
            .collect();
        let mut master_ep = eps.pop().unwrap();
        let cfg = MasterConfig::default();
        let ledger = master_loop(
            &mut master_ep,
            &spec,
            SchedulePolicy::LargestFirst,
            &cfg,
            &mut no_watch(),
        )
        .unwrap();

        assert_eq!(ledger.completion_log.len(), 4);
        assert!(ledger.outputs.iter().all(|o| o.is_some()));
        for (i, out) in ledger.outputs.iter().enumerate() {
            let out = out.as_ref().unwrap();
            assert_eq!(out.k, spec.ks[i], "slot {i} holds the right mode");
            assert!(out.delta_c.is_finite());
        }
        // largest-first: the first completion should be one of the big k's
        // (can't be strict with 2 workers, but the first *assignment* is
        // k = 0.03 → ik 2 must not complete last)
        assert!(ledger.completion_log.iter().any(|&(ik, _)| ik == 2));
        let local: Vec<_> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        let total: usize = local.iter().map(|s| s.modes).sum();
        assert_eq!(total, 4);
        // the wire-carried statistics must agree with the workers' own
        assert_eq!(ledger.worker_stats.len(), 2);
        assert_eq!(
            ledger.worker_stats.iter().map(|s| s.modes).sum::<usize>(),
            4
        );
        assert!(ledger.worker_stats.iter().all(|s| s.busy_seconds > 0.0));
        assert_eq!(
            ledger
                .worker_stats
                .iter()
                .map(|s| s.bytes_sent)
                .sum::<usize>(),
            ledger.bytes_received
        );
    }

    #[test]
    fn unexpected_tag_drains_and_errors() {
        let spec = RunSpec::standard_cdm(vec![0.01]);
        let mut eps = ChannelWorld::new(2);
        let mut rogue = eps.pop().unwrap();
        let mut master_ep = eps.pop().unwrap();
        let h = thread::spawn(move || {
            let mut buf = Vec::new();
            // swallow the init broadcast, then send garbage
            rogue.recv(0, TAG_INIT, &mut buf).unwrap();
            rogue.send(0, 99, &[1.0]).unwrap();
            // the drain must still deliver our stop
            rogue.recv(0, TAG_STOP, &mut buf).unwrap();
        });
        let cfg = MasterConfig {
            poll: Duration::from_millis(5),
            drain_timeout: Duration::from_millis(300),
        };
        let err = master_loop(
            &mut master_ep,
            &spec,
            SchedulePolicy::Fifo,
            &cfg,
            &mut no_watch(),
        )
        .unwrap_err();
        match err {
            FarmError::Protocol { rank, detail } => {
                assert_eq!(rank, 1);
                assert!(detail.contains("99"), "{detail}");
            }
            other => panic!("expected Protocol, got {other}"),
        }
        h.join().unwrap();
    }
}
