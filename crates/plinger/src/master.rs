//! The master subroutine (`parentsub` in Appendix A).

use boltzmann::ModeOutput;
use msgpass::wrappers::*;
use msgpass::{CommError, Transport};

use crate::protocol::{RunSpec, TAG_ASSIGN, TAG_DATA, TAG_HEADER, TAG_INIT, TAG_REQUEST, TAG_STOP};
use crate::schedule::SchedulePolicy;

/// What the master accumulated over one farm run.
#[derive(Debug)]
pub struct MasterLedger {
    /// Finished modes, indexed like `spec.ks` (every slot filled).
    pub outputs: Vec<Option<ModeOutput>>,
    /// Wall-clock seconds of the master loop (broadcast → last stop).
    pub wall_seconds: f64,
    /// Bytes received from workers (tags 4 + 5).
    pub bytes_received: usize,
    /// Completion order: `(ik, worker_rank)` in arrival order.
    pub completion_log: Vec<(usize, usize)>,
}

/// Run the master loop: broadcast the spec, hand out wavenumbers in
/// `policy` order, collect the two-part results, stop every worker.
///
/// Follows Appendix A: `mycheckany` drives the event loop; a tag-2
/// request or a completed tag-4/5 pair triggers the next assignment (or
/// tag-6 stop).
pub fn master_loop<T: Transport>(
    t: &mut T,
    spec: &RunSpec,
    policy: SchedulePolicy,
) -> Result<MasterLedger, CommError> {
    let t0 = std::time::Instant::now();
    let nk = spec.ks.len();
    let order = policy.order(&spec.ks);
    let mut next = 0usize; // cursor into `order`
    let mut ikdone = 0usize;
    let mut outputs: Vec<Option<ModeOutput>> = (0..nk).map(|_| None).collect();
    let mut completion_log = Vec::with_capacity(nk);
    let mut bytes_received = 0usize;
    let mut stopped = 0usize;
    let n_workers = t.size() - 1;

    // broadcast data to all node programs
    mybcastreal(t, &spec.encode(), TAG_INIT)?;

    let mut header = Vec::new();
    let mut payload = Vec::new();

    while ikdone < nk || stopped < n_workers {
        let (msgtype, itid) = mycheckany(t)?;
        let reply;

        if msgtype == TAG_REQUEST {
            // the worker is ready for its first ik; the message has no data
            myrecvreal(t, &mut header, TAG_REQUEST, itid)?;
            reply = true;
        } else if msgtype == TAG_HEADER {
            // first part of the data; its tail tells us lmax
            myrecvreal(t, &mut header, TAG_HEADER, itid)?;
            // second part follows from the same worker (tag 5)
            mycheckone(t, TAG_DATA, itid)?;
            myrecvreal(t, &mut payload, TAG_DATA, itid)?;
            bytes_received += (header.len() + payload.len()) * 8;
            let (ik, out) = ModeOutput::from_wire(&header, &payload);
            outputs[ik] = Some(out);
            completion_log.push((ik, itid));
            ikdone += 1;
            reply = true;
        } else {
            return Err(CommError::Protocol(format!(
                "unexpected tag {msgtype} from rank {itid}"
            )));
        }

        if reply {
            if next < nk {
                let ik = order[next];
                next += 1;
                mysendreal(t, &[ik as f64], TAG_ASSIGN, itid)?;
            } else {
                mysendreal(t, &[0.0], TAG_STOP, itid)?;
                stopped += 1;
            }
        }
    }

    Ok(MasterLedger {
        outputs,
        wall_seconds: t0.elapsed().as_secs_f64(),
        bytes_received,
        completion_log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::worker_loop;
    use boltzmann::Preset;
    use msgpass::channel::ChannelWorld;
    use std::thread;

    #[test]
    fn farm_protocol_end_to_end_two_workers() {
        let mut spec = RunSpec::standard_cdm(vec![0.002, 0.01, 0.03, 0.005]);
        spec.preset = Preset::Draft;
        let mut eps = ChannelWorld::new(3);
        let workers: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| thread::spawn(move || worker_loop(&mut ep).unwrap()))
            .collect();
        let mut master_ep = eps.pop().unwrap();
        let ledger = master_loop(&mut master_ep, &spec, SchedulePolicy::LargestFirst).unwrap();

        assert_eq!(ledger.completion_log.len(), 4);
        assert!(ledger.outputs.iter().all(|o| o.is_some()));
        for (i, out) in ledger.outputs.iter().enumerate() {
            let out = out.as_ref().unwrap();
            assert_eq!(out.k, spec.ks[i], "slot {i} holds the right mode");
            assert!(out.delta_c.is_finite());
        }
        // largest-first: the first completion should be one of the big k's
        // (can't be strict with 2 workers, but the first *assignment* is
        // k = 0.03 → ik 2 must not complete last)
        assert!(ledger.completion_log.iter().any(|&(ik, _)| ik == 2));
        let stats: Vec<_> = workers.into_iter().map(|h| h.join().unwrap()).collect();
        let total: usize = stats.iter().map(|s| s.modes).sum();
        assert_eq!(total, 4);
        assert!(stats.iter().all(|s| s.busy_seconds > 0.0));
        assert_eq!(
            stats.iter().map(|s| s.bytes_sent).sum::<usize>(),
            ledger.bytes_received
        );
    }
}
