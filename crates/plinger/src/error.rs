//! The typed error taxonomy of a farm session.
//!
//! Everything that can go wrong between `Farm::run`'s broadcast and its
//! final report is named here, so callers (the CLI, the bench binaries,
//! the tests) can distinguish a transport that failed to assemble from a
//! worker that died mid-mode from a mode integration that blew up —
//! instead of the panics the first version of the farm used.

use std::fmt;

use boltzmann::{EvolveError, WireError};
use msgpass::{CommError, Rank};

use crate::protocol::SpecDecodeError;

/// Why a job was cancelled mid-run (see [`FarmError::Cancelled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The request's deadline passed while the job was queued or running.
    DeadlineExceeded,
    /// An explicit cancel (client abandoned the request, server drain).
    Cancelled,
}

impl fmt::Display for CancelReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
            CancelReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A farm session failure.
#[derive(Debug)]
pub enum FarmError {
    /// The session never started: world assembly or the tag-1 spec
    /// broadcast failed.  Broadcast is all-or-nothing for the farm — a
    /// partial broadcast (see `Transport::broadcast`) leaves workers in
    /// mixed states, so any broadcast error lands here and aborts.
    Setup(CommError),
    /// A transport operation failed mid-session.
    Comm(CommError),
    /// A peer violated the Appendix A protocol (unexpected tag, bad
    /// geometry, impossible state).
    Protocol {
        /// Rank the violation was observed on or attributed to.
        rank: Rank,
        /// Human-readable description.
        detail: String,
    },
    /// A result message failed wire validation.
    Wire {
        /// Worker that sent the malformed record.
        rank: Rank,
        /// The decode failure.
        source: WireError,
    },
    /// The tag-1 run-spec broadcast failed to decode on a worker.
    SpecDecode(SpecDecodeError),
    /// A mode integration failed on a worker (reported via tag 8).
    Evolve {
        /// Worker the mode was running on (0 for the serial runner).
        rank: Rank,
        /// Index of the failed mode in the k-grid.
        ik: usize,
        /// Wavenumber of the failed mode, Mpc⁻¹.
        k: f64,
        /// The underlying integrator error when it is available locally
        /// (serial runs); `None` when the failure arrived over the wire.
        source: Option<EvolveError>,
    },
    /// A worker stopped responding before the run finished.  The farm
    /// drained the survivors and shut the session down; `unfinished`
    /// names every mode index that had no result when the loss was
    /// detected.
    WorkerLost {
        /// The rank that died.
        rank: Rank,
        /// Mode indices (into the k-grid) left without results.
        unfinished: Vec<usize>,
    },
    /// A worker thread or process could not be joined cleanly.
    WorkerJoin {
        /// The rank that failed to join.
        rank: Rank,
        /// Panic payload or exit-status description.
        detail: String,
    },
    /// Under [`crate::RecoveryPolicy::Requeue`], every worker died (and
    /// respawn, if any, was exhausted) while modes were still pending.
    /// Requeue can survive any loss but the last.
    AllWorkersLost {
        /// Mode indices (into the k-grid) left without results.
        unfinished: Vec<usize>,
    },
    /// The job was cancelled cooperatively (tag-12): its deadline
    /// expired or the caller gave up.  Workers released their chunks
    /// mid-flight and the session drained cleanly — a pooled farm stays
    /// healthy and serves the next job.
    Cancelled {
        /// What triggered the cancellation.
        reason: CancelReason,
        /// Mode indices (into the k-grid) left without results.
        unfinished: Vec<usize>,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::Setup(e) => write!(f, "farm setup failed: {e}"),
            FarmError::Comm(e) => write!(f, "communication failed: {e}"),
            FarmError::Protocol { rank, detail } => {
                write!(f, "protocol violation at rank {rank}: {detail}")
            }
            FarmError::Wire { rank, source } => {
                write!(f, "malformed result from rank {rank}: {source}")
            }
            FarmError::SpecDecode(e) => write!(f, "run spec failed to decode: {e}"),
            FarmError::Evolve {
                rank,
                ik,
                k,
                source,
            } => {
                write!(f, "mode ik={ik} (k={k} 1/Mpc) failed on rank {rank}")?;
                if let Some(e) = source {
                    write!(f, ": {e}")?;
                }
                Ok(())
            }
            FarmError::WorkerLost { rank, unfinished } => write!(
                f,
                "worker rank {rank} lost; {} mode(s) unfinished: {:?}",
                unfinished.len(),
                unfinished
            ),
            FarmError::WorkerJoin { rank, detail } => {
                write!(f, "worker rank {rank} failed to join: {detail}")
            }
            FarmError::AllWorkersLost { unfinished } => write!(
                f,
                "all workers lost; {} mode(s) unfinished: {:?}",
                unfinished.len(),
                unfinished
            ),
            FarmError::Cancelled { reason, unfinished } => write!(
                f,
                "job cancelled ({reason}); {} mode(s) unfinished",
                unfinished.len()
            ),
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::Setup(e) | FarmError::Comm(e) => Some(e),
            FarmError::Wire { source, .. } => Some(source),
            FarmError::SpecDecode(e) => Some(e),
            FarmError::Evolve {
                source: Some(e), ..
            } => Some(e),
            _ => None,
        }
    }
}

impl From<CommError> for FarmError {
    fn from(e: CommError) -> Self {
        FarmError::Comm(e)
    }
}

impl From<SpecDecodeError> for FarmError {
    fn from(e: SpecDecodeError) -> Self {
        FarmError::SpecDecode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = FarmError::WorkerLost {
            rank: 3,
            unfinished: vec![1, 4],
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("[1, 4]"));

        let e = FarmError::Evolve {
            rank: 2,
            ik: 7,
            k: 0.05,
            source: None,
        };
        assert!(e.to_string().contains("ik=7"));
    }

    #[test]
    fn comm_errors_convert() {
        let e: FarmError = CommError::Disconnected.into();
        assert!(matches!(e, FarmError::Comm(CommError::Disconnected)));
    }
}
