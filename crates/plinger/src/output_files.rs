//! Output files in the spirit of the paper's master subroutine, which
//! writes each mode's 21-real header "to an ascii file" (unit 1) and the
//! moment payload "to a binary file" (unit 2).
//!
//! Beyond the two paper files, a run also produces observability
//! artifacts: [`write_run_report`] emits the machine-readable
//! `<prefix>.run_report.json` ledger (schema documented in
//! [`crate::report`]) and [`write_trace`] dumps the recorded spans as a
//! chrome-tracing JSON array loadable in Perfetto / `chrome://tracing`.

use crate::farm::FarmReport;
use crate::protocol::RunSpec;
use crate::report::build_run_report;
use boltzmann::ModeOutput;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Write the ASCII header file: one line of run metadata, then one line
/// of 21 reals per mode (the paper's `WRITE(unit_1,*) (y(i),i=1,20)`
/// plus `lmax`).
pub fn write_ascii<P: AsRef<Path>>(
    path: P,
    spec: &RunSpec,
    outputs: &[ModeOutput],
) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(
        w,
        "# linger output: nk = {}, h = {}, omega_b = {}, omega_c = {:.6}, \
         omega_lambda = {}, t_cmb = {}, n_s = {}",
        outputs.len(),
        spec.cosmo.h,
        spec.cosmo.omega_b,
        spec.cosmo.omega_c,
        spec.cosmo.omega_lambda,
        spec.cosmo.t_cmb_k,
        spec.cosmo.n_s
    )?;
    writeln!(
        w,
        "# ik k tau_end a_end delta_c theta_c delta_b theta_b delta_g theta_g \
         delta_nu theta_nu delta_h sigma_g sigma_nu phi psi constraint cpu flops lmax"
    )?;
    for (ik, out) in outputs.iter().enumerate() {
        let (header, _) = out.to_wire(ik);
        let fields: Vec<String> = header.iter().map(|v| format!("{v:.10e}")).collect();
        writeln!(w, "{}", fields.join(" "))?;
    }
    w.flush()
}

/// Write the binary moment file: for each mode, `lmax` and the payload
/// length as u64s followed by the payload reals, little endian (the
/// paper's unit-2 file).  The explicit length lets a line-of-sight
/// record carry its trailing source extension past the `2·lmax+8`
/// hierarchy block.
pub fn write_binary<P: AsRef<Path>>(path: P, outputs: &[ModeOutput]) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    w.write_all(&(outputs.len() as u64).to_le_bytes())?;
    for (ik, out) in outputs.iter().enumerate() {
        let (_, payload) = out.to_wire(ik);
        w.write_all(&(ik as u64).to_le_bytes())?;
        w.write_all(&(out.lmax_g as u64).to_le_bytes())?;
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        for v in &payload {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Write the run-report ledger to `<prefix>.run_report.json` and return
/// the serialized JSON text (so callers can also print it).
///
/// `transport` names the substrate the farm ran over (`"channel"`,
/// `"shmem"`, `"tcp"`, or `"serial"`).
pub fn write_run_report(
    prefix: &str,
    report: &FarmReport,
    transport: &str,
) -> io::Result<(String, String)> {
    let path = format!("{prefix}.run_report.json");
    let text = build_run_report(report, transport).to_string();
    std::fs::write(&path, &text)?;
    Ok((path, text))
}

/// Write the recorded spans as a chrome-tracing JSON array to `path`.
pub fn write_trace<P: AsRef<Path>>(path: P, report: &FarmReport) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    telemetry::write_chrome_trace(&mut w, &report.telemetry.spans)?;
    w.flush()
}

/// Read back a binary moment file: `(ik, lmax, payload)` per record.
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<Vec<(usize, usize, Vec<f64>)>> {
    let bytes = std::fs::read(path)?;
    let mut pos = 0usize;
    let take_u64 = |pos: &mut usize| -> io::Result<u64> {
        if *pos + 8 > bytes.len() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated"));
        }
        let mut word = [0u8; 8];
        word.copy_from_slice(&bytes[*pos..*pos + 8]);
        *pos += 8;
        Ok(u64::from_le_bytes(word))
    };
    let n = take_u64(&mut pos)? as usize;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let ik = take_u64(&mut pos)? as usize;
        let lmax = take_u64(&mut pos)? as usize;
        let len = take_u64(&mut pos)? as usize;
        if len < 2 * lmax + 8 || len > bytes.len() / 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("implausible payload length {len} for lmax {lmax}"),
            ));
        }
        let mut payload = Vec::with_capacity(len);
        for _ in 0..len {
            if pos + 8 > bytes.len() {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated"));
            }
            let mut word = [0u8; 8];
            word.copy_from_slice(&bytes[pos..pos + 8]);
            payload.push(f64::from_le_bytes(word));
            pos += 8;
        }
        records.push((ik, lmax, payload));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::run_serial;
    use boltzmann::Preset;

    #[test]
    fn files_roundtrip() {
        let mut spec = RunSpec::standard_cdm(vec![4.0e-4, 1.2e-3]);
        spec.preset = Preset::Draft;
        let (outputs, _) = run_serial(&spec).unwrap();
        let dir = std::env::temp_dir().join("plinger_files_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ascii = dir.join("run.linger");
        let binary = dir.join("run.lingerd");
        write_ascii(&ascii, &spec, &outputs).unwrap();
        write_binary(&binary, &outputs).unwrap();

        let text = std::fs::read_to_string(&ascii).unwrap();
        assert_eq!(text.lines().count(), 2 + outputs.len());
        assert!(text.contains("# linger output: nk = 2"));

        let records = read_binary(&binary).unwrap();
        assert_eq!(records.len(), 2);
        for ((ik, lmax, payload), out) in records.iter().zip(&outputs) {
            assert_eq!(*lmax, out.lmax_g);
            let (_, expect) = out.to_wire(*ik);
            assert_eq!(payload, &expect, "binary payload must be bit-exact");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_roundtrip_keeps_the_source_extension() {
        let mut spec = RunSpec::standard_cdm(vec![4.0e-4, 1.2e-3]);
        spec.preset = Preset::Draft;
        spec.method = boltzmann::SpectrumMethod::LineOfSight;
        let (outputs, _) = run_serial(&spec).unwrap();
        assert!(outputs.iter().all(|o| o.sources.is_some()));

        let dir = std::env::temp_dir().join("plinger_files_los_test");
        std::fs::create_dir_all(&dir).unwrap();
        let binary = dir.join("run.lingerd");
        write_binary(&binary, &outputs).unwrap();

        let records = read_binary(&binary).unwrap();
        for ((ik, lmax, payload), out) in records.iter().zip(&outputs) {
            assert_eq!(*lmax, out.lmax_g);
            assert!(payload.len() > 2 * lmax + 8, "extension must be carried");
            let (_, expect) = out.to_wire(*ik);
            assert_eq!(payload, &expect, "binary payload must be bit-exact");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_report_and_trace_files() {
        use crate::farm::Farm;
        use crate::schedule::SchedulePolicy;
        use msgpass::channel::ChannelWorld;

        let mut spec = RunSpec::standard_cdm(vec![4.0e-4, 1.2e-3, 2.0e-3]);
        spec.preset = Preset::Draft;
        let rep = Farm::<ChannelWorld>::new(2)
            .run(&spec, SchedulePolicy::LargestFirst)
            .unwrap();

        let dir = std::env::temp_dir().join("plinger_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("run").to_string_lossy().into_owned();

        let (path, text) = write_run_report(&prefix, &rep, "channel").unwrap();
        assert!(path.ends_with(".run_report.json"));
        let parsed = telemetry::Json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("plinger.run_report/2")
        );
        let run = parsed.get("run").unwrap();
        let eff = run.get("efficiency").and_then(|v| v.as_f64()).unwrap();
        assert!(eff > 0.0 && eff <= 1.0, "efficiency {eff} out of range");
        let modes = parsed.get("modes").and_then(|v| v.as_array()).unwrap();
        assert_eq!(modes.len(), 3);

        let trace = dir.join("trace.json");
        write_trace(&trace, &rep).unwrap();
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        let events = telemetry::Json::parse(&trace_text).unwrap();
        let events = events.as_array().unwrap();
        assert!(!events.is_empty());
        for ev in events {
            assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
            assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_binary_rejects_truncation() {
        let dir = std::env::temp_dir().join("plinger_files_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bad.lingerd");
        std::fs::write(&p, 5u64.to_le_bytes()).unwrap();
        assert!(read_binary(&p).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
