//! The worker subroutine (`kidsub` in Appendix A).

use std::time::{Duration, Instant};

use background::Background;
use boltzmann::{evolve_mode, evolve_mode_observed, evolve_mode_scratch, ModeOutput};
use msgpass::wrappers::*;
use msgpass::Transport;
use ode::Integrator;
use recomb::ThermoHistory;
use telemetry::{SpanEvent, SpanRecorder};

use crate::error::FarmError;
use crate::protocol::{
    cosmo_hash, job_hash, RunSpec, TAG_ASSIGN, TAG_CANCEL, TAG_DATA, TAG_FAIL, TAG_HEADER,
    TAG_HEARTBEAT, TAG_INIT, TAG_NEWJOB, TAG_PREFETCH, TAG_REQUEST, TAG_STATS, TAG_STOP,
};

/// How many accepted integrator steps pass between heartbeat-clock
/// checks (checking `Instant::now` every step would be pure overhead).
const HEARTBEAT_CHECK_STEPS: usize = 64;

/// Minimum wall-clock spacing between two heartbeats from one worker.
const HEARTBEAT_MIN_INTERVAL: Duration = Duration::from_millis(100);

/// A scripted worker misbehaviour, driven by the farm's fault plan.
/// Real deployments pass `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Return silently (no goodbye, no stats) when the next assignment
    /// arrives after `after_modes` completed modes — a dead thread/node.
    Vanish {
        /// Completed modes before vanishing.
        after_modes: usize,
    },
    /// Go silent for `stall` on the next assignment after `after_modes`
    /// completed modes, then vanish — a hung worker that heartbeat
    /// timeouts must catch.
    Stall {
        /// Completed modes before stalling.
        after_modes: usize,
        /// How long to hang before vanishing.
        stall: Duration,
    },
    /// Report mode `ik` as failed (tag 8) instead of integrating it.
    FailMode {
        /// The poisoned mode index.
        ik: usize,
    },
}

/// Per-worker state built from the tag-1 broadcast: the background
/// expansion and thermal history every mode integration shares.
pub struct WorkerContext {
    /// Decoded run description.
    pub spec: RunSpec,
    /// Background tables (built on this "node").
    pub bg: Background,
    /// Thermal history tables.
    pub thermo: ThermoHistory,
}

impl WorkerContext {
    /// Rebuild the physics tables from a broadcast payload — the work a
    /// PLINGER worker did once per run on its own node.  A malformed
    /// payload is reported, not panicked on.
    pub fn from_broadcast(wire: &[f64]) -> Result<Self, FarmError> {
        let spec = RunSpec::decode(wire)?;
        let bg = Background::new(spec.cosmo.clone());
        let thermo = ThermoHistory::new(&bg);
        Ok(Self { spec, bg, thermo })
    }

    /// Integrate one wavenumber by index.
    pub fn run_mode(&self, ik: usize) -> Result<ModeOutput, boltzmann::EvolveError> {
        let k = self.spec.ks[ik];
        evolve_mode(&self.bg, &self.thermo, k, &self.spec.mode_config())
    }

    /// [`Self::run_mode`] with a per-accepted-step callback (the
    /// heartbeat + cancellation hook).  The observer cannot perturb the
    /// numerics; outputs are bit-identical to [`Self::run_mode`].  A
    /// `false` return aborts the mode with `OdeError::Aborted`.
    pub fn run_mode_observed(
        &self,
        ik: usize,
        observer: Option<&mut dyn FnMut() -> bool>,
    ) -> Result<ModeOutput, boltzmann::EvolveError> {
        let k = self.spec.ks[ik];
        evolve_mode_observed(
            &self.bg,
            &self.thermo,
            k,
            &self.spec.mode_config(),
            observer,
        )
    }

    /// [`Self::run_mode_observed`] reusing a caller-held integrator as
    /// scratch space (bit-identical; the session loop passes one
    /// integrator across all its assignments so stage buffers are
    /// allocated once per worker, not once per mode).
    pub fn run_mode_scratch(
        &self,
        ik: usize,
        observer: Option<&mut dyn FnMut() -> bool>,
        integ: &mut Integrator,
    ) -> Result<ModeOutput, boltzmann::EvolveError> {
        let k = self.spec.ks[ik];
        evolve_mode_scratch(
            &self.bg,
            &self.thermo,
            k,
            &self.spec.mode_config(),
            observer,
            integ,
        )
    }
}

/// Statistics a worker reports after its stop message, shipped to the
/// master as the tag-7 payload (10 reals; see the `protocol` module
/// docs for the wire layout).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Modes completed.
    pub modes: usize,
    /// Seconds spent inside mode integrations (busy time).
    pub busy_seconds: f64,
    /// Total seconds between receiving the broadcast and stopping.
    pub total_seconds: f64,
    /// Bytes sent back to the master (header + data payloads).
    pub bytes_sent: usize,
    /// Integrator steps accepted across all modes.
    pub steps_accepted: usize,
    /// Integrator steps rejected across all modes.
    pub steps_rejected: usize,
    /// Right-hand-side evaluations across all modes.
    pub rhs_evals: usize,
    /// Bytes received from the master (broadcast + assignments).
    pub bytes_received: usize,
    /// Background/thermo cache rebuilds this session (0 or 1 per job:
    /// 1 when the broadcast's cosmology hash differed from the cached
    /// one and the physics tables were rebuilt, 0 on a warm-cache job).
    pub ctx_rebuilds: usize,
    /// Context builds that happened *off* the job's critical path: the
    /// worker rebuilt its tables while parked, answering a tag-13
    /// prefetch hint between jobs, and the build is attributed to the
    /// next job it serves.  A prefetched job therefore typically shows
    /// `ctx_rebuilds == 0, prefetch_builds == 1` — same work, but
    /// overlapped with the previous job's tail instead of serialized in
    /// front of this one.
    pub prefetch_builds: usize,
}

impl WorkerStats {
    /// Encode as the tag-7 payload.
    pub fn to_wire(&self) -> [f64; 10] {
        [
            self.modes as f64,
            self.busy_seconds,
            self.total_seconds,
            self.bytes_sent as f64,
            self.steps_accepted as f64,
            self.steps_rejected as f64,
            self.rhs_evals as f64,
            self.bytes_received as f64,
            self.ctx_rebuilds as f64,
            self.prefetch_builds as f64,
        ]
    }

    /// Decode a tag-7 payload.
    ///
    /// Accepts the current 10-real layout plus the three earlier shapes
    /// — 9 reals (pre-prefetch), 8 reals (pre-pool, no rebuild counter)
    /// and 4 reals (the 1995 field set) — with missing trailing
    /// counters read as zero.  Returns `None` for any other length and
    /// for payloads containing NaN, non-finite, or negative values — a
    /// garbled stats message must not silently become a
    /// plausible-looking report.
    pub fn from_wire(v: &[f64]) -> Option<Self> {
        if v.len() != 4 && v.len() != 8 && v.len() != 9 && v.len() != 10 {
            return None;
        }
        if v.iter().any(|x| !x.is_finite() || *x < 0.0) {
            return None;
        }
        let at = |i: usize| v.get(i).copied().unwrap_or(0.0);
        Some(Self {
            modes: at(0) as usize,
            busy_seconds: at(1),
            total_seconds: at(2),
            bytes_sent: at(3) as usize,
            steps_accepted: at(4) as usize,
            steps_rejected: at(5) as usize,
            rhs_evals: at(6) as usize,
            bytes_received: at(7) as usize,
            ctx_rebuilds: at(8) as usize,
            prefetch_builds: at(9) as usize,
        })
    }

    /// Field-wise accumulate `other` into `self` — a pooled worker's
    /// whole-session totals are the sum of its per-job reports.
    pub fn absorb(&mut self, other: &WorkerStats) {
        self.modes += other.modes;
        self.busy_seconds += other.busy_seconds;
        self.total_seconds += other.total_seconds;
        self.bytes_sent += other.bytes_sent;
        self.steps_accepted += other.steps_accepted;
        self.steps_rejected += other.steps_rejected;
        self.rhs_evals += other.rhs_evals;
        self.bytes_received += other.bytes_received;
        self.ctx_rebuilds += other.ctx_rebuilds;
        self.prefetch_builds += other.prefetch_builds;
    }
}

/// What one worker accumulated over a session: the wire-shipped
/// statistics plus its local span timeline (mode and wait intervals,
/// stamped against the session epoch).
#[derive(Debug, Default)]
pub struct WorkerOutcome {
    /// The statistics also shipped to the master as tag 7.
    pub stats: WorkerStats,
    /// Local wall-clock spans (`mode` and `wait` events on this rank's
    /// track).  Empty when telemetry is disabled.
    pub spans: Vec<SpanEvent>,
}

/// Run the worker loop until the master sends tag 6.
///
/// Mirrors Appendix A line by line — receive the initial data, ask for a
/// wavenumber, keep integrating until told to stop — with three
/// session-layer refinements over the paper's listing:
///
/// * the first wait accepts *any* tag from the master, so a stop sent
///   before (or instead of) the init broadcast still unblocks the
///   worker — the master's drain path relies on this;
/// * a failed mode integration is reported with tag 8 (ik, k) instead of
///   killing the worker, after which the worker parks until stopped;
/// * after the stop, the worker ships its statistics as tag 7 so the
///   master's report is transport-independent.
pub fn worker_loop<T: Transport>(t: &mut T) -> Result<WorkerStats, FarmError> {
    worker_session(t, None, Instant::now()).map(|o| o.stats)
}

/// [`worker_loop`] with an optional mode budget: after completing
/// `max_modes` assignments the worker returns silently on its next
/// assignment, exactly as if its thread or node had died mid-run.  This
/// is the fault-injection hook behind `FaultPlan::DropWorker`; real
/// deployments pass `None` via [`worker_loop`].
pub fn worker_loop_limited<T: Transport>(
    t: &mut T,
    max_modes: Option<usize>,
) -> Result<WorkerStats, FarmError> {
    let fault = max_modes.map(|after_modes| WorkerFault::Vanish { after_modes });
    worker_session(t, fault, Instant::now()).map(|o| o.stats)
}

/// The full worker session: [`worker_loop_limited`] plus telemetry.
///
/// `epoch` anchors this worker's span timestamps; the farm passes one
/// epoch to every rank so the per-rank tracks align in a trace viewer.
/// Two span kinds are recorded on the worker's track: `mode` (one per
/// integration, with `ik` and `k` arguments) and `wait` (the interval
/// spent blocked on the master between finishing one result and
/// receiving the next assignment).
///
/// During each integration the worker emits tag-9 heartbeats between
/// DVERK step batches, at most one per `HEARTBEAT_MIN_INTERVAL`
/// (100 ms).
/// Heartbeat sends are best-effort (a send error is swallowed — the
/// master will notice the silence) and excluded from
/// [`WorkerStats::bytes_sent`], which accounts result traffic only.
pub fn worker_session<T: Transport>(
    t: &mut T,
    fault: Option<WorkerFault>,
    epoch: Instant,
) -> Result<WorkerOutcome, FarmError> {
    let (mytid, mastid) = initpass(t);
    let mut buf = Vec::new();
    let mut stats = WorkerStats::default();
    let mut rec = SpanRecorder::new(epoch, 0, mytid as u64);

    // First wait: any tag from the master.  Normally this is the tag-1
    // broadcast; a drain-and-stop can arrive first instead.
    let first = mychecktid(t, mastid)?;
    if first == TAG_STOP {
        myrecvreal(t, &mut buf, TAG_STOP, mastid)?;
        mysendreal(t, &stats.to_wire(), TAG_STATS, mastid)?;
        return Ok(WorkerOutcome {
            stats,
            spans: rec.into_events(),
        });
    }
    if first != TAG_INIT {
        return Err(FarmError::Protocol {
            rank: t.rank(),
            detail: format!("worker expected init or stop, got tag {first}"),
        });
    }
    let n = myrecvreal(t, &mut buf, TAG_INIT, mastid)?;
    stats.bytes_received += n * 8;
    let t_start = Instant::now();
    let ctx = WorkerContext::from_broadcast(&buf)?;
    stats.ctx_rebuilds = 1;

    // ask for a wavenumber from master
    mysendreal(t, &[0.0], TAG_REQUEST, mastid)?;

    let mut hb = Heartbeat::new();
    // one integrator for the whole session: scratch buffers warm up on
    // the first mode and are reused (bit-identically) for every mode after
    let mut integ = Integrator::new();
    let mut modes_done = 0usize;
    let released = serve_assignments(
        t,
        mastid,
        &ctx.spec,
        &ctx.bg,
        &ctx.thermo,
        fault,
        &mut modes_done,
        &mut stats,
        &mut integ,
        &mut hb,
        &mut rec,
        &mut buf,
    )?;
    if released.is_none() {
        // scripted vanish/stall: disappear without the goodbye
        return Ok(WorkerOutcome {
            stats,
            spans: rec.into_events(),
        });
    }
    stats.total_seconds = t_start.elapsed().as_secs_f64();
    mysendreal(t, &stats.to_wire(), TAG_STATS, mastid)?;
    Ok(WorkerOutcome {
        stats,
        spans: rec.into_events(),
    })
}

/// Heartbeat emission state, carried across assignments (and, for a
/// pooled worker, across jobs — the ~100 ms spacing is a per-rank
/// property, not a per-job one).
struct Heartbeat {
    last: Instant,
    seq: f64,
}

impl Heartbeat {
    fn new() -> Self {
        Self {
            last: Instant::now(),
            seq: 0.0,
        }
    }
}

/// Serve tag-3 assignments until any other tag arrives, integrating
/// each mode and answering with a tag-4/5 pair or a tag-8 failure.
/// The terminating message's payload is consumed (and counted into
/// `stats.bytes_received`) and its tag returned, so the caller decides
/// what stop/job-done/new-job means for its lifetime.
///
/// Returns `Ok(None)` when a scripted [`WorkerFault`] says to vanish —
/// the caller must then return without a goodbye.  `modes_done` counts
/// completed modes across the whole worker lifetime (fault triggers key
/// on it), while `stats` is the caller's per-session or per-job ledger.
#[allow(clippy::too_many_arguments)]
fn serve_assignments<T: Transport>(
    t: &mut T,
    mastid: msgpass::Rank,
    spec: &RunSpec,
    bg: &Background,
    thermo: &ThermoHistory,
    fault: Option<WorkerFault>,
    modes_done: &mut usize,
    stats: &mut WorkerStats,
    integ: &mut Integrator,
    hb: &mut Heartbeat,
    rec: &mut SpanRecorder,
    buf: &mut Vec<f64>,
) -> Result<Option<msgpass::Tag>, FarmError> {
    let cfg = spec.mode_config();
    // the same request identity the master stamps on its spans — both
    // ends derive it from the spec wire bits, so no extra protocol
    let job = telemetry::log::job_hex(job_hash(spec));
    loop {
        // receive from master: next ik or a release message
        let t_wait = Instant::now();
        let tag = mychecktid(t, mastid)?;
        let n = myrecvreal(t, buf, tag, mastid)?;
        stats.bytes_received += n * 8;
        rec.record(
            "wait",
            "worker",
            t_wait,
            Instant::now(),
            &[("job", job.clone())],
        );
        if tag != TAG_ASSIGN {
            return Ok(Some(tag));
        }
        // a tag-3 assignment carries one or more mode indices (a
        // chunk); work through them in assignment order, answering
        // each with a header+data pair or a tag-8 failure before
        // touching the next — the master strikes them off one by one
        let iks: Vec<usize> = buf.iter().map(|&v| v as usize).collect();
        for ik in iks {
            if ik >= spec.ks.len() {
                return Err(FarmError::Protocol {
                    rank: t.rank(),
                    detail: format!("assignment ik={ik} outside the k-grid"),
                });
            }
            let k = spec.ks[ik];
            // fault checks run per *mode*, not per assignment, so a fault
            // can strike mid-chunk (the recovery tests depend on this)
            match fault {
                Some(WorkerFault::Vanish { after_modes }) if *modes_done >= after_modes => {
                    // fault injection: vanish without a goodbye
                    return Ok(None);
                }
                Some(WorkerFault::Stall { after_modes, stall }) if *modes_done >= after_modes => {
                    // fault injection: hang silently, then vanish — the
                    // master's heartbeat timeout must catch this
                    std::thread::sleep(stall);
                    return Ok(None);
                }
                Some(WorkerFault::FailMode { ik: bad }) if bad == ik => {
                    // fault injection: report the mode as failed
                    mysendreal(t, &[ik as f64, k], TAG_FAIL, mastid)?;
                    continue;
                }
                _ => {}
            }
            let t_mode = Instant::now();
            let mut cancel_seen = false;
            let result = {
                let cancel = &mut cancel_seen;
                let mut steps_since = 0usize;
                let mut observer = || {
                    steps_since += 1;
                    if steps_since >= HEARTBEAT_CHECK_STEPS {
                        steps_since = 0;
                        // cancel poll: a pending tag-12 from the master
                        // aborts this mode (and the rest of the chunk)
                        // mid-integration; probe errors are ignored — a
                        // dead master surfaces on the next real send
                        if let Ok(Some(_)) =
                            t.probe_timeout(Some(mastid), Some(TAG_CANCEL), Duration::ZERO)
                        {
                            *cancel = true;
                            return false;
                        }
                        if hb.last.elapsed() >= HEARTBEAT_MIN_INTERVAL {
                            hb.seq += 1.0;
                            // best-effort: not counted in bytes_sent, and a
                            // dead master will surface on the next real send
                            let _ = t.send(mastid, TAG_HEARTBEAT, &[hb.seq]);
                            hb.last = Instant::now();
                        }
                    }
                    true
                };
                evolve_mode_scratch(bg, thermo, k, &cfg, Some(&mut observer), integ)
            };
            if cancel_seen {
                // consume the cancel frame, abandon the remaining chunk,
                // and release like any other terminating tag — the caller
                // sends its stats and parks (pooled) or exits (one-shot)
                let n = myrecvreal(t, buf, TAG_CANCEL, mastid)?;
                stats.bytes_received += n * 8;
                rec.record(
                    "mode",
                    "worker",
                    t_mode,
                    Instant::now(),
                    &[
                        ("ik", ik.to_string()),
                        ("cancelled", "true".to_string()),
                        ("job", job.clone()),
                    ],
                );
                stats.busy_seconds += t_mode.elapsed().as_secs_f64();
                return Ok(Some(TAG_CANCEL));
            }
            match result {
                Ok(out) => {
                    rec.record(
                        "mode",
                        "worker",
                        t_mode,
                        Instant::now(),
                        &[
                            ("ik", ik.to_string()),
                            ("k", format!("{k:.6e}")),
                            ("job", job.clone()),
                        ],
                    );
                    stats.busy_seconds += t_mode.elapsed().as_secs_f64();
                    stats.modes += 1;
                    *modes_done += 1;
                    stats.steps_accepted += out.stats.accepted;
                    stats.steps_rejected += out.stats.rejected;
                    stats.rhs_evals += out.stats.rhs_evals;
                    // send results to master: header (tag 4) then data (tag 5)
                    let (header, payload) = out.to_wire(ik);
                    stats.bytes_sent += (header.len() + payload.len()) * 8;
                    mysendreal(t, &header, TAG_HEADER, mastid)?;
                    mysendreal(t, &payload, TAG_DATA, mastid)?;
                }
                Err(_) => {
                    rec.record(
                        "mode",
                        "worker",
                        t_mode,
                        Instant::now(),
                        &[
                            ("ik", ik.to_string()),
                            ("failed", "true".to_string()),
                            ("job", job.clone()),
                        ],
                    );
                    stats.busy_seconds += t_mode.elapsed().as_secs_f64();
                    // report the failure and go back to waiting: a
                    // fail-fast master answers with the stop, a requeueing
                    // master with the next assignment
                    mysendreal(t, &[ik as f64, k], TAG_FAIL, mastid)?;
                }
            }
        }
    }
}

/// The warm physics tables a persistent worker keeps between jobs,
/// keyed by the canonical cosmology hash of the job that built them.
struct PhysicsCache {
    hash: u64,
    bg: Background,
    thermo: ThermoHistory,
}

/// What one persistent worker accumulated over its whole pool lifetime.
#[derive(Debug, Default)]
pub struct PoolWorkerOutcome {
    /// Jobs served to completion (each answered with a tag-7 report).
    pub jobs: usize,
    /// Whole-lifetime statistics: the per-job reports summed.
    pub stats: WorkerStats,
    /// Local wall-clock spans across all jobs, on one timeline
    /// (`mode`, `wait`, and `build_ctx` events).
    pub spans: Vec<SpanEvent>,
}

/// The persistent worker session of a [`crate::FarmPool`]: serve jobs
/// until the master sends a final tag-6 stop.
///
/// Where [`worker_session`] lives exactly one run, this loop parks
/// between jobs holding its [`Background`]/[`ThermoHistory`] tables,
/// its integrator scratch, and its heartbeat clock, and:
///
/// * treats tag 10 (`NewJob`) and tag 1 (`Init`) identically as a job
///   start — a respawned rank is re-initialised with tag 1 mid-job, and
///   a one-shot master over this session speaks tag 1 throughout;
/// * rebuilds the physics tables **only when the job's canonical
///   cosmology hash differs** from the cached one, recording a
///   `build_ctx` span and setting [`WorkerStats::ctx_rebuilds`] for the
///   job, so cache reuse is visible in the run report;
/// * answers the per-job release (tag 11, or tag 6 under a one-shot
///   master) with that job's own tag-7 stats — fresh counters every
///   job, so idle/imbalance accounting never bleeds across sessions;
/// * consumes and ignores stale traffic between jobs (e.g. an
///   assignment addressed to this rank's previous incarnation that was
///   already requeued elsewhere);
/// * on an idle tag-6 stop, reports its stats (zeroed if it never saw a
///   job, summed over jobs otherwise) and exits, mirroring the one-shot
///   early-stop handshake.
pub fn worker_pool_session<T: Transport>(
    t: &mut T,
    fault: Option<WorkerFault>,
    epoch: Instant,
) -> Result<PoolWorkerOutcome, FarmError> {
    let (mytid, mastid) = initpass(t);
    let mut buf = Vec::new();
    let mut rec = SpanRecorder::new(epoch, 0, mytid as u64);
    let mut out = PoolWorkerOutcome::default();
    let mut cache: Option<PhysicsCache> = None;
    let mut integ = Integrator::new();
    let mut hb = Heartbeat::new();
    let mut modes_done = 0usize;
    // context builds answered from tag-13 hints while parked, waiting
    // to be attributed to the next job's stats
    let mut pending_prefetch_builds = 0usize;

    loop {
        let tag = mychecktid(t, mastid)?;
        if tag != TAG_INIT && tag != TAG_NEWJOB {
            let n = myrecvreal(t, &mut buf, tag, mastid)?;
            if tag == TAG_STOP {
                // session over; report lifetime totals like the
                // one-shot early-stop path does
                mysendreal(t, &out.stats.to_wire(), TAG_STATS, mastid)?;
                out.spans = rec.into_events();
                return Ok(out);
            }
            if tag == TAG_PREFETCH {
                // a hint, not a job: warm the physics cache for the
                // announced cosmology and park again.  A malformed
                // payload is ignored — prefetch must never be able to
                // kill a healthy worker.
                if let Ok(spec) = RunSpec::decode(&buf[..n]) {
                    let hash = cosmo_hash(&spec.cosmo);
                    if cache.as_ref().map(|c| c.hash) != Some(hash) {
                        let t_build = Instant::now();
                        let bg = Background::new(spec.cosmo.clone());
                        let thermo = ThermoHistory::new(&bg);
                        rec.record(
                            "prefetch_ctx",
                            "worker",
                            t_build,
                            Instant::now(),
                            &[
                                ("cosmo_hash", format!("{hash:016x}")),
                                ("job", telemetry::log::job_hex(job_hash(&spec))),
                            ],
                        );
                        cache = Some(PhysicsCache { hash, bg, thermo });
                        pending_prefetch_builds += 1;
                    }
                }
                continue;
            }
            // stale traffic for a previous incarnation of this rank
            // (its work was already requeued): consume and ignore
            continue;
        }

        // job start: tag 1 (init / respawn re-init) or tag 10 (pooled)
        let n = myrecvreal(t, &mut buf, tag, mastid)?;
        let mut stats = WorkerStats {
            bytes_received: n * 8,
            prefetch_builds: std::mem::take(&mut pending_prefetch_builds),
            ..WorkerStats::default()
        };
        let t_start = Instant::now();
        let spec = RunSpec::decode(&buf)?;
        let hash = cosmo_hash(&spec.cosmo);
        if cache.as_ref().map(|c| c.hash) != Some(hash) {
            let t_build = Instant::now();
            let bg = Background::new(spec.cosmo.clone());
            let thermo = ThermoHistory::new(&bg);
            rec.record(
                "build_ctx",
                "worker",
                t_build,
                Instant::now(),
                &[
                    ("cosmo_hash", format!("{hash:016x}")),
                    ("job", telemetry::log::job_hex(job_hash(&spec))),
                ],
            );
            cache = Some(PhysicsCache { hash, bg, thermo });
            stats.ctx_rebuilds = 1;
        }
        let Some(pc) = cache.as_ref() else {
            return Err(FarmError::Protocol {
                rank: t.rank(),
                detail: "physics cache missing after job init".to_string(),
            });
        };

        mysendreal(t, &[0.0], TAG_REQUEST, mastid)?;
        let released = serve_assignments(
            t,
            mastid,
            &spec,
            &pc.bg,
            &pc.thermo,
            fault,
            &mut modes_done,
            &mut stats,
            &mut integ,
            &mut hb,
            &mut rec,
            &mut buf,
        )?;
        let Some(release_tag) = released else {
            // scripted vanish/stall: disappear without the goodbye
            out.stats.absorb(&stats);
            out.spans = rec.into_events();
            return Ok(out);
        };
        stats.total_seconds = t_start.elapsed().as_secs_f64();
        mysendreal(t, &stats.to_wire(), TAG_STATS, mastid)?;
        out.jobs += 1;
        out.stats.absorb(&stats);
        if release_tag == TAG_STOP {
            // a one-shot master ends its only job with the session stop
            out.spans = rec.into_events();
            return Ok(out);
        }
        // tag 11 (or a back-to-back job start already consumed? no —
        // serve_assignments returns the tag unhandled only after
        // consuming its payload, and job starts are re-entered above):
        // park warm and wait for the next job
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use boltzmann::Preset;

    #[test]
    fn context_from_broadcast_builds_physics() {
        let mut spec = RunSpec::standard_cdm(vec![0.01]);
        spec.preset = Preset::Draft;
        let ctx = WorkerContext::from_broadcast(&spec.encode()).unwrap();
        assert_eq!(ctx.spec.ks.len(), 1);
        assert!(ctx.bg.tau0() > 10_000.0);
        let out = ctx.run_mode(0).unwrap();
        assert!(out.delta_c.is_finite());
        assert_eq!(out.k, 0.01);
    }

    #[test]
    fn context_rejects_malformed_broadcast() {
        match WorkerContext::from_broadcast(&[1.0, 2.0]) {
            Err(FarmError::SpecDecode(_)) => {}
            Err(other) => panic!("expected SpecDecode, got {other}"),
            Ok(_) => panic!("malformed broadcast must not decode"),
        }
    }

    #[test]
    fn stats_wire_roundtrip() {
        let s = WorkerStats {
            modes: 3,
            busy_seconds: 1.5,
            total_seconds: 2.0,
            bytes_sent: 4096,
            steps_accepted: 900,
            steps_rejected: 12,
            rhs_evals: 7300,
            bytes_received: 512,
            ctx_rebuilds: 1,
            prefetch_builds: 1,
        };
        assert_eq!(WorkerStats::from_wire(&s.to_wire()), Some(s));
        assert_eq!(WorkerStats::from_wire(&[1.0, 2.0]), None);
    }

    #[test]
    fn stats_legacy_nine_real_payload_decodes() {
        // pre-prefetch workers ship 9 reals; the prefetch counter
        // zero-fills
        let got = WorkerStats::from_wire(&[3.0, 1.5, 2.0, 4096.0, 900.0, 12.0, 7300.0, 512.0, 1.0])
            .unwrap();
        assert_eq!(got.ctx_rebuilds, 1);
        assert_eq!(got.prefetch_builds, 0);
    }

    #[test]
    fn stats_legacy_four_real_payload_decodes() {
        let got = WorkerStats::from_wire(&[3.0, 1.5, 2.0, 4096.0]).unwrap();
        assert_eq!(got.modes, 3);
        assert_eq!(got.bytes_sent, 4096);
        assert_eq!(got.steps_accepted, 0);
        assert_eq!(got.bytes_received, 0);
    }

    #[test]
    fn stats_rejects_garbage_payloads() {
        // NaN, infinities, and negatives must not decode
        assert_eq!(
            WorkerStats::from_wire(&[f64::NAN, 1.0, 2.0, 3.0]),
            None,
            "NaN modes"
        );
        assert_eq!(
            WorkerStats::from_wire(&[1.0, f64::INFINITY, 2.0, 3.0]),
            None,
            "infinite busy"
        );
        assert_eq!(
            WorkerStats::from_wire(&[1.0, 1.0, -2.0, 3.0]),
            None,
            "negative total"
        );
        assert_eq!(
            WorkerStats::from_wire(&[1.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, f64::NEG_INFINITY]),
            None,
            "non-finite bytes_received"
        );
        // wrong geometry
        assert_eq!(WorkerStats::from_wire(&[1.0; 5]), None);
        assert_eq!(WorkerStats::from_wire(&[1.0; 11]), None);
        assert_eq!(WorkerStats::from_wire(&[]), None);
    }
}
