//! The worker subroutine (`kidsub` in Appendix A).

use background::Background;
use boltzmann::{evolve_mode, ModeOutput};
use msgpass::wrappers::*;
use msgpass::{CommError, Transport};
use recomb::ThermoHistory;

use crate::protocol::{RunSpec, TAG_ASSIGN, TAG_DATA, TAG_HEADER, TAG_INIT, TAG_REQUEST};

/// Per-worker state built from the tag-1 broadcast: the background
/// expansion and thermal history every mode integration shares.
pub struct WorkerContext {
    /// Decoded run description.
    pub spec: RunSpec,
    /// Background tables (built on this "node").
    pub bg: Background,
    /// Thermal history tables.
    pub thermo: ThermoHistory,
}

impl WorkerContext {
    /// Rebuild the physics tables from a broadcast payload — the work a
    /// PLINGER worker did once per run on its own node.
    pub fn from_broadcast(wire: &[f64]) -> Self {
        let spec = RunSpec::decode(wire);
        let bg = Background::new(spec.cosmo.clone());
        let thermo = ThermoHistory::new(&bg);
        Self { spec, bg, thermo }
    }

    /// Integrate one wavenumber by index.
    pub fn run_mode(&self, ik: usize) -> Result<ModeOutput, boltzmann::EvolveError> {
        let k = self.spec.ks[ik];
        evolve_mode(&self.bg, &self.thermo, k, &self.spec.mode_config())
    }
}

/// Statistics a worker reports after its stop message.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Modes completed.
    pub modes: usize,
    /// Seconds spent inside mode integrations (busy time).
    pub busy_seconds: f64,
    /// Total seconds between receiving the broadcast and stopping.
    pub total_seconds: f64,
    /// Bytes sent back to the master (header + data payloads).
    pub bytes_sent: usize,
}

/// Run the worker loop until the master sends tag 6.
///
/// Mirrors Appendix A line by line: receive the initial data, ask for a
/// wavenumber, and keep integrating until told to stop.
pub fn worker_loop<T: Transport>(t: &mut T) -> Result<WorkerStats, CommError> {
    let (_mytid, mastid) = initpass(t);
    let mut buf = Vec::new();

    // receive initial data from master
    mycheckone(t, TAG_INIT, mastid)?;
    myrecvreal(t, &mut buf, TAG_INIT, mastid)?;
    let t_start = std::time::Instant::now();
    let ctx = WorkerContext::from_broadcast(&buf);
    let mut stats = WorkerStats::default();

    // ask for a wavenumber from master
    mysendreal(t, &[0.0], TAG_REQUEST, mastid)?;

    loop {
        // receive from master: next ik or message to stop
        let tag = mychecktid(t, mastid)?;
        myrecvreal(t, &mut buf, tag, mastid)?;
        if tag != TAG_ASSIGN {
            break;
        }
        let ik = buf[0] as usize;
        let t_mode = std::time::Instant::now();
        let out = ctx
            .run_mode(ik)
            .map_err(|e| CommError::Protocol(format!("integration failed: {e}")))?;
        stats.busy_seconds += t_mode.elapsed().as_secs_f64();
        stats.modes += 1;

        // send results to master: header (tag 4) then data (tag 5)
        let (header, payload) = out.to_wire(ik);
        stats.bytes_sent += (header.len() + payload.len()) * 8;
        mysendreal(t, &header, TAG_HEADER, mastid)?;
        mysendreal(t, &payload, TAG_DATA, mastid)?;
    }
    stats.total_seconds = t_start.elapsed().as_secs_f64();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boltzmann::Preset;

    #[test]
    fn context_from_broadcast_builds_physics() {
        let mut spec = RunSpec::standard_cdm(vec![0.01]);
        spec.preset = Preset::Draft;
        let ctx = WorkerContext::from_broadcast(&spec.encode());
        assert_eq!(ctx.spec.ks.len(), 1);
        assert!(ctx.bg.tau0() > 10_000.0);
        let out = ctx.run_mode(0).unwrap();
        assert!(out.delta_c.is_finite());
        assert_eq!(out.k, 0.01);
    }
}
