//! The worker subroutine (`kidsub` in Appendix A).

use background::Background;
use boltzmann::{evolve_mode, ModeOutput};
use msgpass::wrappers::*;
use msgpass::Transport;
use recomb::ThermoHistory;

use crate::error::FarmError;
use crate::protocol::{
    RunSpec, TAG_ASSIGN, TAG_DATA, TAG_FAIL, TAG_HEADER, TAG_INIT, TAG_REQUEST, TAG_STATS, TAG_STOP,
};

/// Per-worker state built from the tag-1 broadcast: the background
/// expansion and thermal history every mode integration shares.
pub struct WorkerContext {
    /// Decoded run description.
    pub spec: RunSpec,
    /// Background tables (built on this "node").
    pub bg: Background,
    /// Thermal history tables.
    pub thermo: ThermoHistory,
}

impl WorkerContext {
    /// Rebuild the physics tables from a broadcast payload — the work a
    /// PLINGER worker did once per run on its own node.  A malformed
    /// payload is reported, not panicked on.
    pub fn from_broadcast(wire: &[f64]) -> Result<Self, FarmError> {
        let spec = RunSpec::decode(wire)?;
        let bg = Background::new(spec.cosmo.clone());
        let thermo = ThermoHistory::new(&bg);
        Ok(Self { spec, bg, thermo })
    }

    /// Integrate one wavenumber by index.
    pub fn run_mode(&self, ik: usize) -> Result<ModeOutput, boltzmann::EvolveError> {
        let k = self.spec.ks[ik];
        evolve_mode(&self.bg, &self.thermo, k, &self.spec.mode_config())
    }
}

/// Statistics a worker reports after its stop message (shipped to the
/// master as the tag-7 payload, 4 reals).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Modes completed.
    pub modes: usize,
    /// Seconds spent inside mode integrations (busy time).
    pub busy_seconds: f64,
    /// Total seconds between receiving the broadcast and stopping.
    pub total_seconds: f64,
    /// Bytes sent back to the master (header + data payloads).
    pub bytes_sent: usize,
}

impl WorkerStats {
    /// Encode as the tag-7 payload.
    pub fn to_wire(&self) -> [f64; 4] {
        [
            self.modes as f64,
            self.busy_seconds,
            self.total_seconds,
            self.bytes_sent as f64,
        ]
    }

    /// Decode a tag-7 payload; `None` when the geometry is wrong.
    pub fn from_wire(v: &[f64]) -> Option<Self> {
        if v.len() != 4 {
            return None;
        }
        Some(Self {
            modes: v[0] as usize,
            busy_seconds: v[1],
            total_seconds: v[2],
            bytes_sent: v[3] as usize,
        })
    }
}

/// Run the worker loop until the master sends tag 6.
///
/// Mirrors Appendix A line by line — receive the initial data, ask for a
/// wavenumber, keep integrating until told to stop — with three
/// session-layer refinements over the paper's listing:
///
/// * the first wait accepts *any* tag from the master, so a stop sent
///   before (or instead of) the init broadcast still unblocks the
///   worker — the master's drain path relies on this;
/// * a failed mode integration is reported with tag 8 (ik, k) instead of
///   killing the worker, after which the worker parks until stopped;
/// * after the stop, the worker ships its statistics as tag 7 so the
///   master's report is transport-independent.
pub fn worker_loop<T: Transport>(t: &mut T) -> Result<WorkerStats, FarmError> {
    worker_loop_limited(t, None)
}

/// [`worker_loop`] with an optional mode budget: after completing
/// `max_modes` assignments the worker returns silently on its next
/// assignment, exactly as if its thread or node had died mid-run.  This
/// is the fault-injection hook behind `FaultPlan::DropWorker`; real
/// deployments pass `None` via [`worker_loop`].
pub fn worker_loop_limited<T: Transport>(
    t: &mut T,
    max_modes: Option<usize>,
) -> Result<WorkerStats, FarmError> {
    let (_mytid, mastid) = initpass(t);
    let mut buf = Vec::new();
    let mut stats = WorkerStats::default();

    // First wait: any tag from the master.  Normally this is the tag-1
    // broadcast; a drain-and-stop can arrive first instead.
    let first = mychecktid(t, mastid)?;
    if first == TAG_STOP {
        myrecvreal(t, &mut buf, TAG_STOP, mastid)?;
        mysendreal(t, &stats.to_wire(), TAG_STATS, mastid)?;
        return Ok(stats);
    }
    if first != TAG_INIT {
        return Err(FarmError::Protocol {
            rank: t.rank(),
            detail: format!("worker expected init or stop, got tag {first}"),
        });
    }
    myrecvreal(t, &mut buf, TAG_INIT, mastid)?;
    let t_start = std::time::Instant::now();
    let ctx = WorkerContext::from_broadcast(&buf)?;

    // ask for a wavenumber from master
    mysendreal(t, &[0.0], TAG_REQUEST, mastid)?;

    loop {
        // receive from master: next ik or message to stop
        let tag = mychecktid(t, mastid)?;
        myrecvreal(t, &mut buf, tag, mastid)?;
        if tag != TAG_ASSIGN {
            break;
        }
        let ik = buf.first().copied().unwrap_or(-1.0) as usize;
        if ik >= ctx.spec.ks.len() {
            return Err(FarmError::Protocol {
                rank: t.rank(),
                detail: format!("assignment ik={ik} outside the k-grid"),
            });
        }
        if max_modes.is_some_and(|m| stats.modes >= m) {
            // fault injection: vanish without a goodbye
            return Ok(stats);
        }
        let t_mode = std::time::Instant::now();
        match ctx.run_mode(ik) {
            Ok(out) => {
                stats.busy_seconds += t_mode.elapsed().as_secs_f64();
                stats.modes += 1;
                // send results to master: header (tag 4) then data (tag 5)
                let (header, payload) = out.to_wire(ik);
                stats.bytes_sent += (header.len() + payload.len()) * 8;
                mysendreal(t, &header, TAG_HEADER, mastid)?;
                mysendreal(t, &payload, TAG_DATA, mastid)?;
            }
            Err(_) => {
                stats.busy_seconds += t_mode.elapsed().as_secs_f64();
                // report the failure and park until the master stops us
                mysendreal(t, &[ik as f64, ctx.spec.ks[ik]], TAG_FAIL, mastid)?;
                mycheckone(t, TAG_STOP, mastid)?;
                myrecvreal(t, &mut buf, TAG_STOP, mastid)?;
                break;
            }
        }
    }
    stats.total_seconds = t_start.elapsed().as_secs_f64();
    mysendreal(t, &stats.to_wire(), TAG_STATS, mastid)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use boltzmann::Preset;

    #[test]
    fn context_from_broadcast_builds_physics() {
        let mut spec = RunSpec::standard_cdm(vec![0.01]);
        spec.preset = Preset::Draft;
        let ctx = WorkerContext::from_broadcast(&spec.encode()).unwrap();
        assert_eq!(ctx.spec.ks.len(), 1);
        assert!(ctx.bg.tau0() > 10_000.0);
        let out = ctx.run_mode(0).unwrap();
        assert!(out.delta_c.is_finite());
        assert_eq!(out.k, 0.01);
    }

    #[test]
    fn context_rejects_malformed_broadcast() {
        match WorkerContext::from_broadcast(&[1.0, 2.0]) {
            Err(FarmError::SpecDecode(_)) => {}
            Err(other) => panic!("expected SpecDecode, got {other}"),
            Ok(_) => panic!("malformed broadcast must not decode"),
        }
    }

    #[test]
    fn stats_wire_roundtrip() {
        let s = WorkerStats {
            modes: 3,
            busy_seconds: 1.5,
            total_seconds: 2.0,
            bytes_sent: 4096,
        };
        assert_eq!(WorkerStats::from_wire(&s.to_wire()), Some(s));
        assert_eq!(WorkerStats::from_wire(&[1.0, 2.0]), None);
    }
}
