//! High-level farm runners and the timing report behind Figure 1.

use crate::master::master_loop;
use crate::protocol::RunSpec;
use crate::schedule::SchedulePolicy;
use crate::worker::{worker_loop, WorkerStats};
use background::Background;
use boltzmann::{evolve_mode, ModeOutput};
use msgpass::channel::ChannelWorld;
use recomb::ThermoHistory;

/// Timing and throughput report of a farm run — the quantities Figure 1
/// and §5.1 of the paper plot.
#[derive(Debug)]
pub struct FarmReport {
    /// Finished modes in grid order.
    pub outputs: Vec<ModeOutput>,
    /// Master wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-worker statistics.
    pub worker_stats: Vec<WorkerStats>,
    /// Bytes moved worker → master.
    pub bytes_received: usize,
    /// Completion order `(ik, worker)`.
    pub completion_log: Vec<(usize, usize)>,
}

impl FarmReport {
    /// Total CPU time summed over workers (the filled circles of
    /// Figure 1), in seconds.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.worker_stats.iter().map(|s| s.busy_seconds).sum()
    }

    /// Parallel efficiency: `total CPU / (wall × workers)` — the paper
    /// reports ≈ 95% on 64 SP2 nodes.
    pub fn parallel_efficiency(&self) -> f64 {
        let n = self.worker_stats.len() as f64;
        if n == 0.0 || self.wall_seconds == 0.0 {
            return 0.0;
        }
        self.total_cpu_seconds() / (self.wall_seconds * n)
    }

    /// Total counted floating-point operations across all modes.
    pub fn total_flops(&self) -> u64 {
        self.outputs.iter().map(|o| o.stats.total_flops()).sum()
    }

    /// Aggregate flop rate in Mflop/s over the wall time (§5.1).
    pub fn mflops(&self) -> f64 {
        self.total_flops() as f64 / self.wall_seconds / 1.0e6
    }
}

/// Run the farm in-process: `n_workers` threads over the channel
/// transport, master on the calling thread.
pub fn run_parallel_channels(
    spec: &RunSpec,
    policy: SchedulePolicy,
    n_workers: usize,
) -> FarmReport {
    assert!(n_workers >= 1, "need at least one worker");
    let mut eps = ChannelWorld::new(n_workers + 1);
    let mut report = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| scope.spawn(move || worker_loop(&mut ep).expect("worker failed")))
            .collect();
        let mut master_ep = eps.pop().expect("master endpoint");
        let ledger = master_loop(&mut master_ep, spec, policy).expect("master failed");
        let worker_stats: Vec<WorkerStats> =
            handles.into_iter().map(|h| h.join().expect("join")).collect();
        report = Some(FarmReport {
            outputs: ledger
                .outputs
                .into_iter()
                .map(|o| o.expect("all modes complete"))
                .collect(),
            wall_seconds: ledger.wall_seconds,
            worker_stats,
            bytes_received: ledger.bytes_received,
            completion_log: ledger.completion_log,
        });
    });
    report.expect("scope completed")
}

/// The serial reference: LINGER's main loop over `k`, no message
/// passing.  Used for correctness comparison (the farm must be
/// bit-identical mode for mode) and as the single-node baseline of the
/// scaling figure.
pub fn run_serial(spec: &RunSpec) -> (Vec<ModeOutput>, f64) {
    let t0 = std::time::Instant::now();
    let bg = Background::new(spec.cosmo.clone());
    let thermo = ThermoHistory::new(&bg);
    let cfg = spec.mode_config();
    let outputs: Vec<ModeOutput> = spec
        .ks
        .iter()
        .map(|&k| evolve_mode(&bg, &thermo, k, &cfg).expect("serial mode failed"))
        .collect();
    (outputs, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use boltzmann::Preset;

    fn tiny_spec() -> RunSpec {
        let mut spec = RunSpec::standard_cdm(vec![0.001, 0.004, 0.02, 0.008]);
        spec.preset = Preset::Draft;
        spec
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let spec = tiny_spec();
        let (serial, _) = run_serial(&spec);
        let par = run_parallel_channels(&spec, SchedulePolicy::LargestFirst, 2);
        assert_eq!(serial.len(), par.outputs.len());
        for (s, p) in serial.iter().zip(&par.outputs) {
            assert_eq!(s.k, p.k);
            // bitwise identity of the physics payload: same code path,
            // same operations, independent of transport and scheduling
            assert_eq!(s.delta_c.to_bits(), p.delta_c.to_bits(), "δ_c differs");
            assert_eq!(s.delta_b.to_bits(), p.delta_b.to_bits());
            assert_eq!(s.phi.to_bits(), p.phi.to_bits());
            assert_eq!(s.delta_t.len(), p.delta_t.len());
            for (a, b) in s.delta_t.iter().zip(&p.delta_t) {
                assert_eq!(a.to_bits(), b.to_bits(), "Θ_l differs");
            }
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let spec = tiny_spec();
        let rep = run_parallel_channels(&spec, SchedulePolicy::LargestFirst, 3);
        assert_eq!(rep.outputs.len(), 4);
        assert!(rep.wall_seconds > 0.0);
        assert!(rep.total_cpu_seconds() > 0.0);
        let eff = rep.parallel_efficiency();
        assert!(eff > 0.0 && eff <= 1.001, "efficiency = {eff}");
        assert!(rep.total_flops() > 1_000_000);
        let modes: usize = rep.worker_stats.iter().map(|s| s.modes).sum();
        assert_eq!(modes, 4);
    }

    #[test]
    fn single_worker_farm_works() {
        let spec = tiny_spec();
        let rep = run_parallel_channels(&spec, SchedulePolicy::Fifo, 1);
        assert_eq!(rep.outputs.len(), 4);
        // with one worker, completion order equals dispatch order
        let iks: Vec<usize> = rep.completion_log.iter().map(|&(ik, _)| ik).collect();
        assert_eq!(iks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scheduling_policies_cover_all_modes() {
        let spec = tiny_spec();
        for policy in [
            SchedulePolicy::LargestFirst,
            SchedulePolicy::SmallestFirst,
            SchedulePolicy::Fifo,
            SchedulePolicy::Random(7),
        ] {
            let rep = run_parallel_channels(&spec, policy, 2);
            assert_eq!(rep.outputs.len(), 4, "{policy:?}");
            for (i, o) in rep.outputs.iter().enumerate() {
                assert_eq!(o.k, spec.ks[i], "{policy:?} slot {i}");
            }
        }
    }
}
