//! Transport-generic farm sessions and the timing report behind
//! Figure 1.
//!
//! [`Farm`] owns one complete master/worker session over any
//! [`World`]: it assembles the endpoints, spawns the worker threads,
//! runs the master loop (broadcast → dispatch → collect → stop), joins
//! the workers, and folds everything into a [`FarmReport`].  The same
//! `Farm::<W>::run` drives the channel, shared-memory, and in-process
//! TCP transports — the paper's "same Fortran over PVM, MPI, MPL, PVMe"
//! claim, as one generic type.  The multi-process TCP deployment, whose
//! workers are OS subprocesses rather than threads, is the separate
//! [`run_tcp_processes`]/[`run_tcp_worker`] pair built on the same
//! master loop.

use std::marker::PhantomData;
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use background::Background;
use boltzmann::{evolve_mode_scratch, ModeOutput};
use msgpass::fault::{FaultAction, FaultRule, FaultSpec, FaultWhen, FaultyTransport};
use msgpass::instrument::Instrumented;
use msgpass::tcp::{connect_worker, PendingMaster};
use msgpass::{Rank, Tag, World};
use ode::Integrator;
use recomb::ThermoHistory;

use crate::error::FarmError;
use crate::master::{master_session, MasterConfig};
use crate::protocol::RunSpec;
use crate::recovery::{RecoveryLog, RecoveryPolicy, WorkerEvent};
use crate::report::FarmTelemetry;
use crate::schedule::SchedulePolicy;
use crate::worker::{worker_pool_session, worker_session, WorkerFault, WorkerStats};

/// Timing and throughput report of a farm run — the quantities Figure 1
/// and §5.1 of the paper plot.
#[derive(Debug)]
pub struct FarmReport {
    /// Finished modes in grid order.  Under [`RecoveryPolicy::Requeue`]
    /// a quarantined mode leaves no entry here — its identity lives in
    /// `recovery.failed_modes`, and `outputs[j]` is the `j`-th
    /// *non-quarantined* mode of the grid.
    pub outputs: Vec<ModeOutput>,
    /// Master wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-worker statistics.
    pub worker_stats: Vec<WorkerStats>,
    /// Bytes moved worker → master.
    pub bytes_received: usize,
    /// Completion order `(ik, worker)`.
    pub completion_log: Vec<(usize, usize)>,
    /// Measured telemetry: per-endpoint message counters, the span
    /// timeline, master idle time.  Empty when telemetry is disabled.
    pub telemetry: FarmTelemetry,
    /// Every recovery action the master took: requeues, heartbeat
    /// misses, respawns, quarantined modes.  Clean on an undisturbed
    /// run.
    pub recovery: RecoveryLog,
}

impl FarmReport {
    /// Total CPU time summed over workers (the filled circles of
    /// Figure 1), in seconds.
    pub fn total_cpu_seconds(&self) -> f64 {
        self.worker_stats.iter().map(|s| s.busy_seconds).sum()
    }

    /// Parallel efficiency: `total CPU / (wall × workers)` — the paper
    /// reports ≈ 95% on 64 SP2 nodes.
    pub fn parallel_efficiency(&self) -> f64 {
        let n = self.worker_stats.len() as f64;
        if n == 0.0 || self.wall_seconds == 0.0 {
            return 0.0;
        }
        self.total_cpu_seconds() / (self.wall_seconds * n)
    }

    /// Total counted floating-point operations across all modes.
    pub fn total_flops(&self) -> u64 {
        self.outputs.iter().map(|o| o.stats.total_flops()).sum()
    }

    /// Aggregate flop rate in Mflop/s over the wall time (§5.1).
    /// A degenerate run with no measurable wall time reports 0 rather
    /// than dividing by zero.
    pub fn mflops(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.total_flops() as f64 / self.wall_seconds / 1.0e6
    }

    /// Total worker idle time in seconds: `Σ max(total − busy, 0)` over
    /// workers — the quantity the paper's largest-k-first scheduling
    /// "minimized".  A report with no workers (or no measured time)
    /// reads 0.
    pub fn idle_seconds(&self) -> f64 {
        self.worker_stats
            .iter()
            .map(|w| (w.total_seconds - w.busy_seconds).max(0.0))
            .sum()
    }

    /// Load imbalance as `max(busy) / mean(busy)` over workers: 1.0 is
    /// a perfectly balanced farm, larger values mean some worker
    /// carried disproportionate load.  Degenerate cases — no workers,
    /// or no measured busy time at all — read 0.
    pub fn load_imbalance(&self) -> f64 {
        let n = self.worker_stats.len();
        if n == 0 {
            return 0.0;
        }
        let total: f64 = self.worker_stats.iter().map(|w| w.busy_seconds).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let max = self
            .worker_stats
            .iter()
            .map(|w| w.busy_seconds)
            .fold(0.0, f64::max);
        max / (total / n as f64)
    }
}

/// Fault injection for session-layer tests: what to break, where.
///
/// Worker-level plans (`DropWorker`, `StallWorker`, `FailMode`) are
/// carried into the worker loop as a [`WorkerFault`]; message-level
/// plans (`CorruptPayload`, `DropMessage`) become a deterministic
/// [`FaultSpec`] applied at the transport seam of every endpoint — a
/// rule only fires on the endpoint that actually sends the targeted
/// tag.  Thread farms support all variants; `run_tcp_processes`
/// supports the worker-level ones (the fault rides a hidden CLI
/// argument into the subprocess).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPlan {
    /// Worker `rank` silently vanishes (thread returns without any
    /// goodbye message) when handed its `after_modes + 1`-th assignment.
    DropWorker {
        /// Rank to kill (1-based; rank 0 is the master).
        rank: Rank,
        /// Assignments the worker completes before dying.
        after_modes: usize,
    },
    /// Worker `rank` goes silent for `stall` when handed its
    /// `after_modes + 1`-th assignment, then vanishes — a hang the
    /// master's heartbeat timeout must catch.
    StallWorker {
        /// Rank to hang (1-based).
        rank: Rank,
        /// Assignments the worker completes before hanging.
        after_modes: usize,
        /// How long the worker stays silent before vanishing.
        stall: Duration,
    },
    /// Every worker reports mode `ik` as failed (tag 8) instead of
    /// integrating it — a poison mode that exhausts its retry budget.
    FailMode {
        /// The poisoned mode index.
        ik: usize,
    },
    /// The first message with this tag sent by any single endpoint has
    /// its payload corrupted (truncated + NaN-poisoned) in transit.
    CorruptPayload {
        /// Wire tag to corrupt (e.g. 5 for the result payload).
        tag: Tag,
    },
    /// The `nth` message (0-based, counted per endpoint) with this tag
    /// is silently dropped in transit.
    DropMessage {
        /// Wire tag to drop (e.g. 3 for an assignment).
        tag: Tag,
        /// Which matching message to drop, 0-based.
        nth: u64,
    },
}

impl FaultPlan {
    /// The worker-level fault rank `rank` should run under this plan.
    pub(crate) fn worker_fault(&self, rank: Rank) -> Option<WorkerFault> {
        match *self {
            FaultPlan::DropWorker {
                rank: r,
                after_modes,
            } if r == rank => Some(WorkerFault::Vanish { after_modes }),
            FaultPlan::StallWorker {
                rank: r,
                after_modes,
                stall,
            } if r == rank => Some(WorkerFault::Stall { after_modes, stall }),
            FaultPlan::FailMode { ik } => Some(WorkerFault::FailMode { ik }),
            _ => None,
        }
    }

    /// The transport-level fault script this plan injects (passthrough
    /// for worker-level plans).
    fn fault_spec(&self) -> FaultSpec {
        match *self {
            FaultPlan::CorruptPayload { tag } => FaultSpec {
                seed: 0,
                rules: vec![FaultRule {
                    tag: Some(tag),
                    action: FaultAction::Corrupt,
                    when: FaultWhen::Nth(0),
                }],
            },
            FaultPlan::DropMessage { tag, nth } => FaultSpec {
                seed: 0,
                rules: vec![FaultRule {
                    tag: Some(tag),
                    action: FaultAction::Drop,
                    when: FaultWhen::Nth(nth),
                }],
            },
            _ => FaultSpec::passthrough(),
        }
    }
}

/// A transport-generic farm session.
///
/// ```no_run
/// use msgpass::channel::ChannelWorld;
/// use plinger::{Farm, RunSpec, SchedulePolicy};
///
/// let spec = RunSpec::standard_cdm(vec![0.001, 0.01, 0.1]);
/// let report = Farm::<ChannelWorld>::new(4)
///     .run(&spec, SchedulePolicy::LargestFirst)
///     .expect("farm run");
/// println!("{:.1} Mflop/s", report.mflops());
/// ```
pub struct Farm<W: World> {
    n_workers: usize,
    config: MasterConfig,
    fault: Option<FaultPlan>,
    _world: PhantomData<W>,
}

impl<W: World> Farm<W> {
    /// A farm with `n_workers` workers over transport `W` and default
    /// timing.
    pub fn new(n_workers: usize) -> Self {
        Self {
            n_workers,
            config: MasterConfig::default(),
            fault: None,
            _world: PhantomData,
        }
    }

    /// Replace the whole master configuration at once (CLI plumbing;
    /// the individual builders below tweak single knobs).
    pub fn master_config(mut self, config: MasterConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the master's probe interval.
    pub fn poll(mut self, poll: Duration) -> Self {
        self.config.poll = poll;
        self
    }

    /// Override the drain deadline used during shutdown.
    pub fn drain_timeout(mut self, d: Duration) -> Self {
        self.config.drain_timeout = d;
        self
    }

    /// Set the recovery policy ([`RecoveryPolicy::FailFast`] is the
    /// default; [`RecoveryPolicy::requeue`] makes the farm self-heal).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.config.recovery = policy;
        self
    }

    /// Override the heartbeat silence window after which a rank holding
    /// an assignment is declared dead.
    pub fn heartbeat_timeout(mut self, d: Duration) -> Self {
        self.config.heartbeat_timeout = d;
        self
    }

    /// Modes per assignment message (default 1, the paper's protocol).
    /// A chunk is a run of the dispatch order, so results are bitwise
    /// independent of the chunk size; bigger chunks only amortize the
    /// request/assign round trip.  `0` is treated as `1`.
    pub fn chunk(mut self, n: usize) -> Self {
        self.config.chunk = n.max(1);
        self
    }

    /// Inject a fault (tests only): see [`FaultPlan`].
    pub fn fault_plan(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Run one complete session: assemble a `(n_workers + 1)`-rank
    /// world, spawn the workers, drive the master loop, join everyone,
    /// and account the run.
    pub fn run(&self, spec: &RunSpec, policy: SchedulePolicy) -> Result<FarmReport, FarmError> {
        if self.n_workers < 1 {
            return Err(FarmError::Setup(msgpass::CommError::Unsupported(
                "a farm needs at least one worker",
            )));
        }
        let eps = W::endpoints(self.n_workers + 1).map_err(FarmError::Setup)?;
        if eps.len() != self.n_workers + 1 {
            return Err(FarmError::Setup(msgpass::CommError::Protocol(format!(
                "transport {} built {} endpoints for {} ranks",
                W::NAME,
                eps.len(),
                self.n_workers + 1
            ))));
        }

        // one epoch anchors every span recorder, and every endpoint is
        // wrapped so the run's message table is a measurement, not a
        // reconstruction; the Arc handles survive the move into threads.
        // The fault wrapper sits outside the instrumentation so a
        // dropped message is never counted as sent (closed-world
        // telemetry survives fault runs); with no message-level fault
        // the wrapper is a passthrough.
        let epoch = Instant::now();
        let fault_spec = self
            .fault
            .map(|f| f.fault_spec())
            .unwrap_or_else(FaultSpec::passthrough);
        let mut comm_handles = Vec::with_capacity(eps.len());
        let mut eps: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let (wrapped, stats) = Instrumented::new(ep);
                comm_handles.push(stats);
                let (faulty, _log) = FaultyTransport::new(wrapped, fault_spec.clone());
                faulty
            })
            .collect();

        let alive: Vec<Arc<AtomicBool>> = (0..self.n_workers)
            .map(|_| Arc::new(AtomicBool::new(true)))
            .collect();
        let fault = self.fault;

        let mut session: Option<Result<FarmReport, FarmError>> = None;
        std::thread::scope(|scope| {
            let handles: Vec<_> = eps
                .drain(1..)
                .enumerate()
                .map(|(i, mut ep)| {
                    let flag = Arc::clone(&alive[i]);
                    let worker_fault = fault.and_then(|f| f.worker_fault(i + 1));
                    scope.spawn(move || {
                        let out = worker_session(&mut ep, worker_fault, epoch);
                        flag.store(false, Ordering::SeqCst);
                        out
                    })
                })
                .collect();

            let mut watch = || -> Vec<WorkerEvent> {
                alive
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.load(Ordering::SeqCst))
                    .map(|(i, _)| WorkerEvent::Dead(i + 1))
                    .collect()
            };

            let master = eps.pop().map_or_else(
                || {
                    Err(FarmError::Setup(msgpass::CommError::Protocol(
                        "world produced no master endpoint".into(),
                    )))
                },
                Ok,
            );
            let outcome = master.and_then(|mut master_ep| {
                master_session(
                    &mut master_ep,
                    spec,
                    policy,
                    &self.config,
                    &mut watch,
                    epoch,
                )
            });

            // join every worker regardless of how the master fared; a
            // faulted worker returning Ok early is part of the plan, and
            // under the Requeue policy even a panicked worker is a
            // casualty the session already recovered from
            let mut join_error = None;
            let mut worker_spans = Vec::new();
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(Ok(out)) => worker_spans.extend(out.spans),
                    Ok(Err(_)) => {}
                    Err(panic) => {
                        if join_error.is_none() && !self.config.recovery.recovers() {
                            join_error = Some(FarmError::WorkerJoin {
                                rank: i + 1,
                                detail: panic_text(&panic),
                            });
                        }
                    }
                }
            }

            session = Some(match (outcome, join_error) {
                (Err(e), _) => Err(e),
                (Ok(_), Some(e)) => Err(e),
                (Ok(ledger), None) => {
                    let comm = comm_handles
                        .iter()
                        .enumerate()
                        .map(|(rank, h)| h.snapshot(rank))
                        .collect();
                    finish_report(ledger, comm, worker_spans)
                }
            });
        });
        session.unwrap_or_else(|| {
            Err(FarmError::Protocol {
                rank: 0,
                detail: "farm scope ended without a result".into(),
            })
        })
    }
}

fn panic_text(panic: &Box<dyn std::any::Any + Send>) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".into())
}

/// Fold a completed ledger into a report, verifying every mode slot is
/// filled (the master loop guarantees this on success) — except slots
/// the session explicitly quarantined, which are accounted in the
/// recovery log instead.  `comm` and `worker_spans` carry the measured
/// telemetry: per-endpoint counters in rank order and the workers'
/// local span timelines.
pub(crate) fn finish_report(
    ledger: crate::master::MasterLedger,
    comm: Vec<msgpass::instrument::CommSnapshot>,
    worker_spans: Vec<telemetry::SpanEvent>,
) -> Result<FarmReport, FarmError> {
    let quarantined: std::collections::HashSet<usize> =
        ledger.recovery.failed_modes.iter().map(|f| f.ik).collect();
    let mut outputs = Vec::with_capacity(ledger.outputs.len());
    for (ik, slot) in ledger.outputs.into_iter().enumerate() {
        match slot {
            Some(out) => outputs.push(out),
            None if quarantined.contains(&ik) => {}
            None => {
                return Err(FarmError::Protocol {
                    rank: 0,
                    detail: format!("mode ik={ik} missing from a completed session"),
                })
            }
        }
    }
    let mut spans = ledger.spans;
    spans.extend(worker_spans);
    Ok(FarmReport {
        outputs,
        wall_seconds: ledger.wall_seconds,
        worker_stats: ledger.worker_stats,
        bytes_received: ledger.bytes_received,
        completion_log: ledger.completion_log,
        telemetry: FarmTelemetry {
            comm,
            spans,
            master_idle_seconds: ledger.idle_seconds,
        },
        recovery: ledger.recovery,
    })
}

/// The serial reference: LINGER's main loop over `k`, no message
/// passing.  Used for correctness comparison (the farm must be
/// bit-identical mode for mode) and as the single-node baseline of the
/// scaling figure.
pub fn run_serial(spec: &RunSpec) -> Result<(Vec<ModeOutput>, f64), FarmError> {
    let t0 = std::time::Instant::now();
    let bg = Background::new(spec.cosmo.clone());
    let thermo = ThermoHistory::new(&bg);
    let cfg = spec.mode_config();
    let mut outputs = Vec::with_capacity(spec.ks.len());
    // one integrator across the whole loop: its stage buffers keep
    // their capacity from mode to mode (bit-identical to a fresh one)
    let mut integ = Integrator::new();
    for (ik, &k) in spec.ks.iter().enumerate() {
        let out = evolve_mode_scratch(&bg, &thermo, k, &cfg, None, &mut integ).map_err(|e| {
            FarmError::Evolve {
                rank: 0,
                ik,
                k,
                source: Some(e),
            }
        })?;
        outputs.push(out);
    }
    Ok((outputs, t0.elapsed().as_secs_f64()))
}

/// Knobs of the multi-process TCP deployment.
#[derive(Debug, Clone)]
pub struct TcpFarmOptions {
    /// Timing and recovery configuration for the master loop.
    pub master: MasterConfig,
    /// How many times a dead worker process may be relaunched and
    /// re-handshaked mid-run (total across all ranks).  Respawn also
    /// requires `master.recovery` to be
    /// `RecoveryPolicy::Requeue { respawn: true, .. }`.
    pub respawn_limit: usize,
    /// Worker-level fault to inject into the initial processes (tests):
    /// `DropWorker`, `StallWorker`, and `FailMode` ride a hidden CLI
    /// argument; message-level plans are not supported across process
    /// boundaries and are ignored.
    pub fault: Option<FaultPlan>,
}

impl Default for TcpFarmOptions {
    fn default() -> Self {
        Self {
            master: MasterConfig::default(),
            respawn_limit: 2,
            fault: None,
        }
    }
}

/// Render the worker-level fault of `plan` for `rank` as the hidden CLI
/// argument `--tcp-worker` understands (see [`parse_worker_fault`]).
pub(crate) fn worker_fault_arg(plan: Option<FaultPlan>, rank: Rank) -> Option<String> {
    match plan?.worker_fault(rank)? {
        WorkerFault::Vanish { after_modes } => Some(format!("vanish:{after_modes}")),
        WorkerFault::Stall { after_modes, stall } => {
            Some(format!("stall:{after_modes}:{}", stall.as_millis()))
        }
        WorkerFault::FailMode { ik } => Some(format!("failmode:{ik}")),
    }
}

/// Parse the hidden fault argument a `--tcp-worker` subprocess may
/// receive: `vanish:N`, `stall:N:MS`, or `failmode:IK`.
pub fn parse_worker_fault(s: &str) -> Option<WorkerFault> {
    let mut parts = s.split(':');
    match parts.next()? {
        "vanish" => Some(WorkerFault::Vanish {
            after_modes: parts.next()?.parse().ok()?,
        }),
        "stall" => Some(WorkerFault::Stall {
            after_modes: parts.next()?.parse().ok()?,
            stall: Duration::from_millis(parts.next()?.parse().ok()?),
        }),
        "failmode" => Some(WorkerFault::FailMode {
            ik: parts.next()?.parse().ok()?,
        }),
        _ => None,
    }
}

pub(crate) fn spawn_tcp_worker(
    exe: &Path,
    addr: SocketAddr,
    rank: Rank,
    size: usize,
    fault: Option<String>,
) -> Result<Child, FarmError> {
    let mut cmd = Command::new(exe);
    cmd.arg("--tcp-worker")
        .arg(addr.to_string())
        .arg(rank.to_string())
        .arg(size.to_string());
    if let Some(f) = fault {
        cmd.arg(f);
    }
    cmd.stdin(Stdio::null()).spawn().map_err(|e| {
        FarmError::Setup(msgpass::CommError::Protocol(format!(
            "spawning worker {rank} failed: {e}"
        )))
    })
}

/// Run the farm with OS-subprocess workers over localhost TCP: the
/// master binds an ephemeral port, spawns `n_workers` copies of `exe`
/// with the hidden `--tcp-worker ADDR RANK SIZE [FAULT]` arguments, and
/// drives the same master loop the thread farms use.  Worker liveness
/// is tracked through `Child::try_wait`.  Under
/// [`RecoveryPolicy::FailFast`] a dead subprocess surfaces as
/// [`FarmError::WorkerLost`]; under [`RecoveryPolicy::Requeue`] a
/// process that exited abnormally is relaunched (up to
/// `opts.respawn_limit` times) and re-handshaked into the running star
/// through the kept listening socket, or — when respawn is off or
/// exhausted — its work is redistributed to the survivors.
pub fn run_tcp_processes(
    spec: &RunSpec,
    policy: SchedulePolicy,
    n_workers: usize,
    exe: &Path,
    opts: &TcpFarmOptions,
) -> Result<FarmReport, FarmError> {
    if n_workers < 1 {
        return Err(FarmError::Setup(msgpass::CommError::Unsupported(
            "a farm needs at least one worker",
        )));
    }
    let pending = PendingMaster::bind(n_workers)
        .map_err(|e| FarmError::Setup(msgpass::CommError::Protocol(format!("bind failed: {e}"))))?;
    let addr = pending.addr();
    let size = n_workers + 1;
    let mut children: Vec<Child> = Vec::with_capacity(n_workers);
    for rank in 1..=n_workers {
        match spawn_tcp_worker(exe, addr, rank, size, worker_fault_arg(opts.fault, rank)) {
            Ok(c) => children.push(c),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }
    let (master_ep, port) = match pending.accept_all_keep() {
        Ok(pair) => pair,
        Err(e) => {
            for mut c in children {
                let _ = c.kill();
                let _ = c.wait();
            }
            return Err(FarmError::Setup(e));
        }
    };
    // Only the master side is instrumented here: subprocess workers
    // keep their in-process telemetry to themselves (their wire-shipped
    // tag-7 statistics still arrive), so `comm` holds one snapshot.
    let epoch = Instant::now();
    let (mut master_ep, comm_handle) = Instrumented::new(master_ep);

    let cfg = opts.master;
    let respawn_allowed = matches!(cfg.recovery, RecoveryPolicy::Requeue { respawn: true, .. });
    let mut respawns_left = if respawn_allowed {
        opts.respawn_limit
    } else {
        0
    };
    // ranks whose corpse we already reported (or replaced) — try_wait
    // keeps answering for a reaped child, so gate on this to attempt
    // each respawn exactly once
    let mut handled: Vec<bool> = vec![false; n_workers];
    let mut watch_adapter = || -> Vec<WorkerEvent> {
        watch_tcp_children(
            &mut children,
            &mut handled,
            &mut respawns_left,
            exe,
            addr,
            size,
            &port,
        )
    };
    let outcome = master_session(
        &mut master_ep,
        spec,
        policy,
        &cfg,
        &mut watch_adapter,
        epoch,
    );

    let mut join_error = None;
    for (i, mut c) in children.into_iter().enumerate() {
        match c.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                if join_error.is_none() && outcome.is_ok() && !cfg.recovery.recovers() {
                    join_error = Some(FarmError::WorkerJoin {
                        rank: i + 1,
                        detail: format!("worker process exited with {status}"),
                    });
                }
            }
            Err(e) => {
                if join_error.is_none() && outcome.is_ok() && !cfg.recovery.recovers() {
                    join_error = Some(FarmError::WorkerJoin {
                        rank: i + 1,
                        detail: format!("wait failed: {e}"),
                    });
                }
            }
        }
    }

    match (outcome, join_error) {
        (Err(e), _) => Err(e),
        (Ok(_), Some(e)) => Err(e),
        (Ok(ledger), None) => finish_report(ledger, vec![comm_handle.snapshot(0)], Vec::new()),
    }
}

/// One poll of the subprocess liveness watch: reap exited children,
/// relaunch abnormal exits while the respawn budget lasts (re-admitting
/// the replacement under the same rank through the kept listening
/// `port`), and report the casualties.  `handled[i]` records that rank
/// `i + 1`'s corpse was already reported or replaced — `try_wait` keeps
/// answering for a reaped child, so the gate makes each respawn attempt
/// happen exactly once.  Shared by [`run_tcp_processes`] (one job) and
/// the TCP farm pool (many jobs on the same children).
#[allow(clippy::too_many_arguments)]
pub(crate) fn watch_tcp_children(
    children: &mut [Child],
    handled: &mut [bool],
    respawns_left: &mut usize,
    exe: &Path,
    addr: SocketAddr,
    size: usize,
    port: &msgpass::tcp::RespawnPort,
) -> Vec<WorkerEvent> {
    let mut events = Vec::new();
    for i in 0..children.len() {
        let rank = i + 1;
        let status = match children[i].try_wait() {
            Ok(None) => continue,
            Ok(Some(st)) => Some(st),
            Err(_) => None,
        };
        if handled[i] {
            events.push(WorkerEvent::Dead(rank));
            continue;
        }
        handled[i] = true;
        // a clean exit is a worker that took its stop (or a scripted
        // vanish, which exits with a marker code); only abnormal
        // exits are worth a replacement process
        let abnormal = status.map(|st| !st.success()).unwrap_or(true);
        if abnormal && *respawns_left > 0 {
            let replacement = spawn_tcp_worker(exe, addr, rank, size, None)
                .ok()
                .and_then(|c| port.admit(rank, Duration::from_secs(10)).ok().map(|_| c));
            if let Some(c) = replacement {
                *respawns_left -= 1;
                children[i] = c;
                handled[i] = false;
                events.push(WorkerEvent::Respawned(rank));
                continue;
            }
        }
        events.push(WorkerEvent::Dead(rank));
    }
    events
}

/// Entry point for a `--tcp-worker` subprocess: connect to the master
/// and serve jobs until stopped, under an optional scripted fault.
///
/// Runs the *persistent* worker session, which is wire-compatible with
/// a one-shot master (tag 1 opens the job, tag 6 releases it and ends
/// the session) and additionally serves back-to-back tag-10 jobs from
/// a TCP farm pool with its physics caches warm between them.
pub fn run_tcp_worker(
    addr: SocketAddr,
    rank: Rank,
    size: usize,
    fault: Option<WorkerFault>,
) -> Result<(), FarmError> {
    let mut ep = connect_worker(addr, rank, size).map_err(FarmError::Setup)?;
    worker_pool_session(&mut ep, fault, Instant::now())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use boltzmann::Preset;
    use msgpass::channel::ChannelWorld;
    use msgpass::shmem::ShmemWorld;

    fn tiny_spec() -> RunSpec {
        let mut spec = RunSpec::standard_cdm(vec![0.001, 0.004, 0.02, 0.008]);
        spec.preset = Preset::Draft;
        spec
    }

    #[test]
    fn parallel_matches_serial_bitwise() {
        let spec = tiny_spec();
        let (serial, _) = run_serial(&spec).unwrap();
        let par = Farm::<ChannelWorld>::new(2)
            .run(&spec, SchedulePolicy::LargestFirst)
            .unwrap();
        assert_eq!(serial.len(), par.outputs.len());
        for (s, p) in serial.iter().zip(&par.outputs) {
            assert_eq!(s.k, p.k);
            // bitwise identity of the physics payload: same code path,
            // same operations, independent of transport and scheduling
            assert_eq!(s.delta_c.to_bits(), p.delta_c.to_bits(), "δ_c differs");
            assert_eq!(s.delta_b.to_bits(), p.delta_b.to_bits());
            assert_eq!(s.phi.to_bits(), p.phi.to_bits());
            assert_eq!(s.delta_t.len(), p.delta_t.len());
            for (a, b) in s.delta_t.iter().zip(&p.delta_t) {
                assert_eq!(a.to_bits(), b.to_bits(), "Θ_l differs");
            }
        }
    }

    #[test]
    fn report_accounting_is_consistent() {
        let spec = tiny_spec();
        let rep = Farm::<ChannelWorld>::new(3)
            .run(&spec, SchedulePolicy::LargestFirst)
            .unwrap();
        assert_eq!(rep.outputs.len(), 4);
        assert!(rep.wall_seconds > 0.0);
        assert!(rep.total_cpu_seconds() > 0.0);
        let eff = rep.parallel_efficiency();
        assert!(eff > 0.0 && eff <= 1.001, "efficiency = {eff}");
        assert!(rep.total_flops() > 1_000_000);
        assert!(rep.mflops() > 0.0);
        let modes: usize = rep.worker_stats.iter().map(|s| s.modes).sum();
        assert_eq!(modes, 4);
    }

    #[test]
    fn single_worker_farm_works() {
        let spec = tiny_spec();
        let rep = Farm::<ChannelWorld>::new(1)
            .run(&spec, SchedulePolicy::Fifo)
            .unwrap();
        assert_eq!(rep.outputs.len(), 4);
        // with one worker, completion order equals dispatch order
        let iks: Vec<usize> = rep.completion_log.iter().map(|&(ik, _)| ik).collect();
        assert_eq!(iks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn scheduling_policies_cover_all_modes() {
        let spec = tiny_spec();
        for policy in [
            SchedulePolicy::LargestFirst,
            SchedulePolicy::SmallestFirst,
            SchedulePolicy::Fifo,
            SchedulePolicy::Random(7),
        ] {
            let rep = Farm::<ChannelWorld>::new(2).run(&spec, policy).unwrap();
            assert_eq!(rep.outputs.len(), 4, "{policy:?}");
            for (i, o) in rep.outputs.iter().enumerate() {
                assert_eq!(o.k, spec.ks[i], "{policy:?} slot {i}");
            }
        }
    }

    #[test]
    fn shmem_farm_matches_channel_farm() {
        let spec = tiny_spec();
        let a = Farm::<ChannelWorld>::new(2)
            .run(&spec, SchedulePolicy::LargestFirst)
            .unwrap();
        let b = Farm::<ShmemWorld>::new(2)
            .run(&spec, SchedulePolicy::LargestFirst)
            .unwrap();
        for (x, y) in a.outputs.iter().zip(&b.outputs) {
            assert_eq!(x.delta_c.to_bits(), y.delta_c.to_bits());
            assert_eq!(x.phi.to_bits(), y.phi.to_bits());
        }
    }

    #[test]
    fn zero_workers_is_a_setup_error() {
        let spec = tiny_spec();
        let err = Farm::<ChannelWorld>::new(0)
            .run(&spec, SchedulePolicy::Fifo)
            .unwrap_err();
        assert!(matches!(err, FarmError::Setup(_)));
    }

    #[test]
    fn mflops_guards_zero_wall() {
        let rep = FarmReport {
            outputs: Vec::new(),
            wall_seconds: 0.0,
            worker_stats: Vec::new(),
            bytes_received: 0,
            completion_log: Vec::new(),
            telemetry: FarmTelemetry::default(),
            recovery: RecoveryLog::default(),
        };
        assert_eq!(rep.mflops(), 0.0);
        assert_eq!(rep.parallel_efficiency(), 0.0);
        // zero-worker edge cases of the idle/imbalance helpers
        assert_eq!(rep.idle_seconds(), 0.0);
        assert_eq!(rep.load_imbalance(), 0.0);
    }

    #[test]
    fn idle_and_imbalance_helpers() {
        let worker = |busy: f64, total: f64| WorkerStats {
            modes: 1,
            busy_seconds: busy,
            total_seconds: total,
            ..WorkerStats::default()
        };
        let mut rep = FarmReport {
            outputs: Vec::new(),
            wall_seconds: 4.0,
            worker_stats: vec![worker(3.0, 4.0), worker(1.0, 4.0)],
            bytes_received: 0,
            completion_log: Vec::new(),
            telemetry: FarmTelemetry::default(),
            recovery: RecoveryLog::default(),
        };
        // idle = (4-3) + (4-1); imbalance = 3 / mean(3,1) = 1.5
        assert!((rep.idle_seconds() - 4.0).abs() < 1e-12);
        assert!((rep.load_imbalance() - 1.5).abs() < 1e-12);

        // a clock glitch reporting busy > total must not go negative
        rep.worker_stats = vec![worker(5.0, 4.0)];
        assert_eq!(rep.idle_seconds(), 0.0);
        assert_eq!(rep.load_imbalance(), 1.0);

        // zero measured wall/busy time: helpers read 0, not NaN
        rep.worker_stats = vec![worker(0.0, 0.0), worker(0.0, 0.0)];
        rep.wall_seconds = 0.0;
        assert_eq!(rep.idle_seconds(), 0.0);
        assert_eq!(rep.load_imbalance(), 0.0);
    }

    #[test]
    fn farm_report_carries_measured_telemetry() {
        let spec = tiny_spec();
        let rep = Farm::<ChannelWorld>::new(2)
            .run(&spec, SchedulePolicy::LargestFirst)
            .unwrap();
        let merged = rep.telemetry.merged_comm();
        // closed world: per-tag sent == per-tag recv over all endpoints
        for t in 0..msgpass::instrument::TRACKED_TAGS {
            assert_eq!(
                merged.sent_count[t], merged.recv_count[t],
                "tag {t} sent/recv mismatch"
            );
        }
        // the measured tag-4+5 bytes are exactly what workers accounted
        let wire_bytes: u64 = merged.sent_bytes[4] + merged.sent_bytes[5];
        let stats_bytes: u64 = rep.worker_stats.iter().map(|w| w.bytes_sent as u64).sum();
        assert_eq!(wire_bytes, stats_bytes);
        // spans: every mode appears as a worker-track span, master has
        // assign + collect spans
        let mode_spans = rep
            .telemetry
            .spans
            .iter()
            .filter(|s| s.name == "mode")
            .count();
        assert_eq!(mode_spans, spec.ks.len());
        assert!(rep.telemetry.spans.iter().any(|s| s.name == "collect"));
        assert!(rep.telemetry.spans.iter().any(|s| s.name == "assign"));
        // steps made it over the wire
        assert!(
            rep.worker_stats
                .iter()
                .map(|w| w.steps_accepted)
                .sum::<usize>()
                > 0
        );
        assert_eq!(
            rep.worker_stats
                .iter()
                .map(|w| w.steps_accepted + w.steps_rejected)
                .sum::<usize>(),
            rep.outputs
                .iter()
                .map(|o| o.stats.accepted + o.stats.rejected)
                .sum::<usize>()
        );
    }

    #[test]
    fn serial_reports_evolve_error_with_mode() {
        let mut spec = tiny_spec();
        spec.ks = vec![0.001, f64::NAN];
        let err = run_serial(&spec).unwrap_err();
        match err {
            FarmError::Evolve {
                rank, ik, source, ..
            } => {
                assert_eq!(rank, 0);
                assert_eq!(ik, 1);
                assert!(source.is_some());
            }
            other => panic!("expected Evolve, got {other}"),
        }
    }
}
