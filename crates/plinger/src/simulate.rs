//! Discrete-event simulator of the master/worker farm.
//!
//! The paper's Figure 1 was measured on dedicated SP2 partitions of up
//! to 256 nodes.  On a machine with fewer cores the farm's *dynamics*
//! (who idles when, what largest-k-first buys, where the ideal-scaling
//! curve bends) are reproduced exactly by replaying the measured
//! per-mode CPU times through this simulator: workers request work when
//! free, the master assigns in dispatch order, and the makespan is the
//! paper's "wallclock time".  The real farm validates the simulator at
//! the worker counts the hardware can actually exercise.

use crate::schedule::SchedulePolicy;

/// Inputs of a simulated run.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Per-mode CPU durations, seconds, indexed like the k-grid.
    pub durations: Vec<f64>,
    /// Dispatch policy.
    pub policy: SchedulePolicy,
    /// Wavenumbers (used only by the policy ordering).
    pub ks: Vec<f64>,
    /// Number of workers.
    pub n_workers: usize,
    /// Fixed per-assignment message overhead, seconds (the paper:
    /// "the overhead from message passing is insignificant").
    pub overhead: f64,
    /// Per-worker startup cost (background table construction).
    pub startup: f64,
    /// Relative speed of each worker (empty = homogeneous at 1.0).
    /// Models the paper's heterogeneous C90/T3D environment, where T3D
    /// nodes ran LINGER at 15 Mflop against the C90's 570.
    pub speeds: Vec<f64>,
}

impl SimParams {
    /// Homogeneous parameters (all workers at unit speed).
    pub fn homogeneous(
        durations: Vec<f64>,
        policy: SchedulePolicy,
        ks: Vec<f64>,
        n_workers: usize,
    ) -> Self {
        Self {
            durations,
            policy,
            ks,
            n_workers,
            overhead: 0.0,
            startup: 0.0,
            speeds: Vec::new(),
        }
    }
}

/// Outputs of a simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Makespan (wallclock), seconds.
    pub wall_seconds: f64,
    /// Busy seconds per worker.
    pub busy: Vec<f64>,
    /// Idle tail per worker: time between its last completion and the
    /// makespan (the effect the paper minimizes with largest-k-first).
    pub idle_tail: Vec<f64>,
    /// Completion order of mode indices.
    pub completion_order: Vec<usize>,
}

impl SimResult {
    /// Parallel efficiency `Σ busy / (wall × n)`.
    pub fn efficiency(&self) -> f64 {
        let n = self.busy.len() as f64;
        self.busy.iter().sum::<f64>() / (self.wall_seconds * n)
    }
}

/// Run the list-scheduling simulation.
pub fn simulate_farm(params: &SimParams) -> SimResult {
    assert_eq!(params.durations.len(), params.ks.len());
    assert!(params.n_workers >= 1);
    if !params.speeds.is_empty() {
        assert_eq!(
            params.speeds.len(),
            params.n_workers,
            "one speed per worker"
        );
        assert!(
            params.speeds.iter().all(|&s| s > 0.0),
            "speeds must be positive"
        );
    }
    let order = params.policy.order(&params.ks);
    let n = params.n_workers;
    let speed = |w: usize| -> f64 { params.speeds.get(w).copied().unwrap_or(1.0) };
    // worker state: time at which it becomes free
    let mut free_at = vec![params.startup; n];
    let mut busy = vec![0.0; n];
    let mut last_done = vec![params.startup; n];
    let mut completion: Vec<(f64, usize)> = Vec::with_capacity(order.len());

    for &ik in &order {
        // next request comes from the worker that frees earliest
        let w = (0..n)
            .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
            .unwrap_or(0);
        let elapsed = params.durations[ik] / speed(w);
        let start = free_at[w] + params.overhead;
        let end = start + elapsed;
        free_at[w] = end;
        busy[w] += elapsed;
        last_done[w] = end;
        completion.push((end, ik));
    }

    let wall = free_at.iter().cloned().fold(0.0, f64::max);
    completion.sort_by(|a, b| a.0.total_cmp(&b.0));
    SimResult {
        wall_seconds: wall,
        idle_tail: last_done.iter().map(|&t| wall - t).collect(),
        busy,
        completion_order: completion.into_iter().map(|(_, ik)| ik).collect(),
    }
}

/// Synthetic per-mode cost model calibrated to LINGER: cost grows with
/// the hierarchy size `lmax(k) ∝ k·τ₀`, so roughly `cost ∝ (a + k τ₀)²`
/// (state size × step count both grow).  Used by scheduling studies
/// when measured durations are not available.
pub fn synthetic_costs(ks: &[f64], tau0: f64) -> Vec<f64> {
    ks.iter()
        .map(|&k| {
            let l = (k * tau0).max(10.0);
            1.0e-6 * l * l + 2.0e-3 * l + 0.05
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n_workers: usize, policy: SchedulePolicy) -> SimParams {
        let ks: Vec<f64> = (1..=40).map(|i| i as f64 * 0.005).collect();
        let durations = synthetic_costs(&ks, 12_000.0);
        SimParams {
            durations,
            policy,
            ks,
            n_workers,
            overhead: 0.0,
            startup: 0.0,
            speeds: Vec::new(),
        }
    }

    #[test]
    fn one_worker_wall_is_total_cpu() {
        let p = params(1, SchedulePolicy::Fifo);
        let total: f64 = p.durations.iter().sum();
        let r = simulate_farm(&p);
        assert!((r.wall_seconds - total).abs() < 1e-9);
        assert!((r.efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wall_decreases_with_workers() {
        let mut last = f64::INFINITY;
        for n in [1, 2, 4, 8, 16] {
            let r = simulate_farm(&params(n, SchedulePolicy::LargestFirst));
            assert!(r.wall_seconds <= last + 1e-12, "n = {n}");
            last = r.wall_seconds;
        }
    }

    #[test]
    fn total_busy_is_invariant() {
        let p1 = params(1, SchedulePolicy::LargestFirst);
        let total: f64 = p1.durations.iter().sum();
        for n in [2, 5, 9] {
            let r = simulate_farm(&params(n, SchedulePolicy::LargestFirst));
            let busy: f64 = r.busy.iter().sum();
            assert!(
                (busy - total).abs() < 1e-9,
                "CPU time must not change with N"
            );
        }
    }

    #[test]
    fn largest_first_beats_smallest_first() {
        // the paper's idle-time argument: dispatching the longest job
        // last leaves a long tail
        let rl = simulate_farm(&params(8, SchedulePolicy::LargestFirst));
        let rs = simulate_farm(&params(8, SchedulePolicy::SmallestFirst));
        assert!(
            rl.wall_seconds < rs.wall_seconds,
            "largest-first {} vs smallest-first {}",
            rl.wall_seconds,
            rs.wall_seconds
        );
        assert!(rl.efficiency() > rs.efficiency());
    }

    #[test]
    fn efficiency_bounded_and_high_for_many_jobs() {
        let r = simulate_farm(&params(4, SchedulePolicy::LargestFirst));
        let e = r.efficiency();
        assert!(e > 0.9 && e <= 1.0, "efficiency = {e}");
    }

    #[test]
    fn idle_tail_zero_for_single_worker() {
        let r = simulate_farm(&params(1, SchedulePolicy::Fifo));
        assert!(r.idle_tail[0].abs() < 1e-12);
    }

    #[test]
    fn overhead_and_startup_add_up() {
        let mut p = params(2, SchedulePolicy::Fifo);
        let base = simulate_farm(&p).wall_seconds;
        p.overhead = 0.01;
        p.startup = 1.0;
        let r = simulate_farm(&p);
        assert!(r.wall_seconds > base + 1.0, "startup must delay the farm");
        let expected_overhead = 0.01 * 20.0; // 40 jobs over 2 workers
        assert!(r.wall_seconds > base + 1.0 + expected_overhead * 0.5);
    }

    #[test]
    fn heterogeneous_fast_worker_does_more() {
        // the paper's C90/T3D environment: one fast node among slow ones
        let mut p = params(4, SchedulePolicy::LargestFirst);
        p.speeds = vec![38.0, 1.0, 1.0, 1.0]; // C90 at 570 vs T3D at 15 Mflop
        let r = simulate_farm(&p);
        // the fast worker finishes far more work per busy-second; its
        // busy time stays comparable, so check share of completed cost:
        // reconstruct per-worker completed durations via busy·speed
        let done_fast = r.busy[0] * 38.0;
        let done_slow = r.busy[1] * 1.0;
        assert!(
            done_fast > 5.0 * done_slow,
            "fast worker did {done_fast}, slow did {done_slow}"
        );
        // heterogeneous wall is far below the all-slow wall
        let mut slow = params(4, SchedulePolicy::LargestFirst);
        slow.speeds = vec![1.0; 4];
        let r_slow = simulate_farm(&slow);
        assert!(r.wall_seconds < 0.5 * r_slow.wall_seconds);
    }

    #[test]
    fn homogeneous_speeds_match_default() {
        let mut p = params(3, SchedulePolicy::Fifo);
        let base = simulate_farm(&p);
        p.speeds = vec![1.0; 3];
        let r = simulate_farm(&p);
        assert_eq!(base.wall_seconds, r.wall_seconds);
        assert_eq!(base.completion_order, r.completion_order);
    }

    #[test]
    #[should_panic(expected = "one speed per worker")]
    fn speed_length_mismatch_panics() {
        let mut p = params(3, SchedulePolicy::Fifo);
        p.speeds = vec![1.0; 2];
        let _ = simulate_farm(&p);
    }

    #[test]
    fn homogeneous_constructor() {
        let p = SimParams::homogeneous(vec![1.0, 2.0], SchedulePolicy::Fifo, vec![0.1, 0.2], 2);
        let r = simulate_farm(&p);
        assert!((r.wall_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn completion_covers_all_modes() {
        let r = simulate_farm(&params(3, SchedulePolicy::Random(5)));
        let mut seen = r.completion_order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>());
    }
}
