//! Property tests for the message-passing substrate.

use bytes::BytesMut;
use msgpass::codec::{decode, encode};
use msgpass::serial::LoopbackWorld;
use msgpass::Transport;
use proptest::prelude::*;

proptest! {
    #[test]
    fn codec_roundtrip_any_payload(
        source in 0usize..1024,
        tag in 0u32..1_000_000,
        data in proptest::collection::vec(proptest::num::f64::ANY, 0..256),
    ) {
        let frame = encode(source, tag, &data);
        let mut buf = BytesMut::from(&frame[..]);
        let msg = decode(&mut buf).unwrap().unwrap();
        prop_assert_eq!(msg.source, source);
        prop_assert_eq!(msg.tag, tag);
        prop_assert_eq!(msg.data.len(), data.len());
        for (a, b) in msg.data.iter().zip(&data) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "payload must be bit-exact");
        }
        prop_assert!(buf.is_empty());
    }

    #[test]
    fn codec_streaming_across_arbitrary_chunking(
        payloads in proptest::collection::vec(
            proptest::collection::vec(-1.0e10f64..1.0e10, 0..20), 1..8),
        chunk in 1usize..64,
    ) {
        // concatenate frames, feed in fixed-size chunks, expect all back
        let mut wire = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            wire.extend_from_slice(&encode(i, i as u32, p));
        }
        let mut buf = BytesMut::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.extend_from_slice(piece);
            while let Some(msg) = decode(&mut buf).unwrap() {
                got.push(msg);
            }
        }
        prop_assert_eq!(got.len(), payloads.len());
        for (i, (m, p)) in got.iter().zip(&payloads).enumerate() {
            prop_assert_eq!(m.source, i);
            prop_assert_eq!(&m.data, p);
        }
    }

    #[test]
    fn loopback_selective_receive_preserves_fifo_per_tag(
        tags in proptest::collection::vec(0u32..4, 1..40),
    ) {
        let mut w = LoopbackWorld::new();
        for (i, &t) in tags.iter().enumerate() {
            w.send(0, t, &[i as f64]).unwrap();
        }
        // drain tag by tag; within each tag order must be FIFO
        let mut buf = Vec::new();
        for t in 0..4u32 {
            let expect: Vec<usize> = tags.iter().enumerate()
                .filter(|(_, &x)| x == t).map(|(i, _)| i).collect();
            for &e in &expect {
                w.recv(0, t, &mut buf).unwrap();
                prop_assert_eq!(buf[0] as usize, e);
            }
        }
        prop_assert_eq!(w.pending(), 0);
    }
}
