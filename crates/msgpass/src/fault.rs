//! Deterministic fault injection at the [`Transport`] seam.
//!
//! [`FaultyTransport`] wraps any endpoint and applies a scripted set of
//! [`FaultRule`]s to outgoing messages: drop the message on the floor,
//! corrupt its payload, or delay it.  Every decision is driven by a
//! counter per rule plus a seeded splitmix64 stream, never by wall-clock
//! time, so the same [`FaultSpec`] produces the same fault schedule on
//! every run — recovery paths can be tested bit-for-bit.
//!
//! The wrapper sits *outside* any instrumentation wrapper: a dropped
//! message is then never counted as sent, so the telemetry's
//! closed-world invariant (per-tag `sent == recv`) survives fault runs.
//!
//! Injected events are recorded into a shared log ([`FaultLog`]) so
//! tests can assert the schedule itself, not just its consequences.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::{CommError, Envelope, Rank, Tag, Transport};

/// What a matched rule does to the outgoing message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Swallow the message; the send reports success.
    Drop,
    /// Deliver a corrupted payload: the last element is removed and the
    /// first (if any) is replaced with NaN — reliably tripping the
    /// geometry and finiteness checks of every wire decoder in the farm.
    Corrupt,
    /// Deliver the message after sleeping this long.
    Delay(Duration),
}

/// When a rule fires, counted over the messages that match its tag
/// filter on this endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultWhen {
    /// Fire on the `n`-th matching message only (0-based).
    Nth(u64),
    /// Fire on every matching message.
    Always,
    /// Fire with probability `p` per matching message, decided by the
    /// seeded splitmix64 stream (deterministic for a given seed).
    Prob(f64),
}

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Only messages with this tag match; `None` matches every tag.
    pub tag: Option<Tag>,
    /// What to do to a matched message.
    pub action: FaultAction,
    /// Which matching messages to act on.
    pub when: FaultWhen,
}

/// A seeded fault script: rules evaluated in order, first match wins.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Seed of the splitmix64 stream behind [`FaultWhen::Prob`].
    pub seed: u64,
    /// The rules, evaluated in order per outgoing message.
    pub rules: Vec<FaultRule>,
}

impl FaultSpec {
    /// A spec with no rules: a pure passthrough wrapper.
    pub fn passthrough() -> Self {
        Self::default()
    }
}

/// One injected fault, as recorded in the shared log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Index of the rule that fired.
    pub rule: usize,
    /// Tag of the affected message.
    pub tag: Tag,
    /// Destination rank of the affected message.
    pub dest: Rank,
    /// `"drop"`, `"corrupt"`, or `"delay"`.
    pub action: &'static str,
}

/// Shared, thread-safe log of injected faults.
pub type FaultLog = Arc<Mutex<Vec<FaultEvent>>>;

/// splitmix64: tiny, seedable, dependency-free PRNG (Vigna 2015).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A [`Transport`] wrapper injecting scripted faults into `send`.
///
/// Receive-side behaviour is untouched: probes and recvs pass straight
/// through, so a `FaultyTransport` wrapping a healthy peer is
/// indistinguishable from the peer itself unless a rule fires.
#[derive(Debug)]
pub struct FaultyTransport<T: Transport> {
    inner: T,
    spec: FaultSpec,
    rng: u64,
    /// Matching-message counter per rule.
    seen: Vec<u64>,
    log: FaultLog,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wrap `inner` under `spec`, returning the wrapper and a handle to
    /// its fault log.
    pub fn new(inner: T, spec: FaultSpec) -> (Self, FaultLog) {
        let log: FaultLog = Arc::new(Mutex::new(Vec::new()));
        let seen = vec![0; spec.rules.len()];
        let rng = spec.seed;
        (
            Self {
                inner,
                spec,
                rng,
                seen,
                log: Arc::clone(&log),
            },
            log,
        )
    }

    /// Unwrap, dropping the fault machinery.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Decide what (if anything) to do to a message with `tag`: returns
    /// the index and action of the first rule that fires.
    fn decide(&mut self, tag: Tag) -> Option<(usize, FaultAction)> {
        for (i, rule) in self.spec.rules.iter().enumerate() {
            if rule.tag.is_some_and(|t| t != tag) {
                continue;
            }
            let n = self.seen[i];
            self.seen[i] += 1;
            let fire = match rule.when {
                FaultWhen::Nth(want) => n == want,
                FaultWhen::Always => true,
                FaultWhen::Prob(p) => {
                    let draw = splitmix64(&mut self.rng) as f64 / u64::MAX as f64;
                    draw < p
                }
            };
            if fire {
                return Some((i, rule.action));
            }
        }
        None
    }

    fn record(&self, rule: usize, tag: Tag, dest: Rank, action: &'static str) {
        if let Ok(mut log) = self.log.lock() {
            log.push(FaultEvent {
                rule,
                tag,
                dest,
                action,
            });
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        match self.decide(tag) {
            None => self.inner.send(dest, tag, data),
            Some((i, FaultAction::Drop)) => {
                self.record(i, tag, dest, "drop");
                Ok(())
            }
            Some((i, FaultAction::Corrupt)) => {
                self.record(i, tag, dest, "corrupt");
                let mut bad = data.to_vec();
                bad.pop();
                if let Some(first) = bad.first_mut() {
                    *first = f64::NAN;
                }
                self.inner.send(dest, tag, &bad)
            }
            Some((i, FaultAction::Delay(d))) => {
                self.record(i, tag, dest, "delay");
                std::thread::sleep(d);
                self.inner.send(dest, tag, data)
            }
        }
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        self.inner.probe(source, tag)
    }

    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, CommError> {
        self.inner.probe_timeout(source, tag, timeout)
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        self.inner.recv(source, tag, buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ChannelEndpoint, ChannelWorld};
    use crate::World;

    fn pair() -> (ChannelEndpoint, ChannelEndpoint) {
        let mut eps = ChannelWorld::endpoints(2).unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        (a, b)
    }

    #[test]
    fn nth_drop_swallows_exactly_one_message() {
        let (a, mut b) = pair();
        let spec = FaultSpec {
            seed: 1,
            rules: vec![FaultRule {
                tag: Some(5),
                action: FaultAction::Drop,
                when: FaultWhen::Nth(1),
            }],
        };
        let (mut a, log) = FaultyTransport::new(a, spec);
        for i in 0..3 {
            a.send(1, 5, &[i as f64]).unwrap();
        }
        a.send(1, 4, &[9.0]).unwrap(); // other tag: untouched
        let mut buf = Vec::new();
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf, vec![0.0]);
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf, vec![2.0], "message #1 must have been dropped");
        b.recv(0, 4, &mut buf).unwrap();
        assert_eq!(buf, vec![9.0]);
        let log = log.lock().unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].tag, 5);
        assert_eq!(log[0].action, "drop");
    }

    #[test]
    fn corrupt_truncates_and_poisons_payload() {
        let (a, mut b) = pair();
        let spec = FaultSpec {
            seed: 1,
            rules: vec![FaultRule {
                tag: None,
                action: FaultAction::Corrupt,
                when: FaultWhen::Nth(0),
            }],
        };
        let (mut a, _log) = FaultyTransport::new(a, spec);
        a.send(1, 5, &[1.0, 2.0, 3.0]).unwrap();
        let mut buf = Vec::new();
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf.len(), 2, "one element removed");
        assert!(buf[0].is_nan(), "first element poisoned");
        assert_eq!(buf[1], 2.0);
    }

    #[test]
    fn same_seed_means_identical_schedule() {
        // the determinism guard of the probabilistic path: two wrappers
        // with the same seed must drop exactly the same message indices
        let schedule = |seed: u64| -> Vec<usize> {
            let (a, mut b) = pair();
            let spec = FaultSpec {
                seed,
                rules: vec![FaultRule {
                    tag: Some(3),
                    action: FaultAction::Drop,
                    when: FaultWhen::Prob(0.4),
                }],
            };
            let (mut a, _log) = FaultyTransport::new(a, spec);
            for i in 0..64 {
                a.send(1, 3, &[i as f64]).unwrap();
            }
            drop(a); // hang up so the drain below terminates
            let mut got = Vec::new();
            let mut buf = Vec::new();
            while b
                .probe_timeout(None, None, Duration::from_millis(10))
                .unwrap()
                .is_some()
            {
                b.recv(0, 3, &mut buf).unwrap();
                got.push(buf[0] as usize);
            }
            got
        };
        let s1 = schedule(42);
        let s2 = schedule(42);
        assert_eq!(s1, s2, "same seed must reproduce the drop schedule");
        assert!(s1.len() < 64, "some messages must actually drop");
        let s3 = schedule(43);
        assert_ne!(s1, s3, "a different seed should differ");
    }

    #[test]
    fn passthrough_spec_is_transparent() {
        let (a, mut b) = pair();
        let (mut a, log) = FaultyTransport::new(a, FaultSpec::passthrough());
        a.send(1, 7, &[1.0, 2.0]).unwrap();
        let mut buf = Vec::new();
        let env = b.recv(0, 7, &mut buf).unwrap();
        assert_eq!(env.len, 2);
        assert_eq!(buf, vec![1.0, 2.0]);
        assert!(log.lock().unwrap().is_empty());
        assert_eq!(a.rank(), 0);
        assert_eq!(a.size(), 2);
    }

    #[test]
    fn first_matching_rule_wins() {
        let (a, mut b) = pair();
        let spec = FaultSpec {
            seed: 0,
            rules: vec![
                FaultRule {
                    tag: Some(5),
                    action: FaultAction::Drop,
                    when: FaultWhen::Nth(0),
                },
                FaultRule {
                    tag: None,
                    action: FaultAction::Corrupt,
                    when: FaultWhen::Always,
                },
            ],
        };
        let (mut a, log) = FaultyTransport::new(a, spec);
        a.send(1, 5, &[1.0, 2.0]).unwrap(); // rule 0 drops it
        a.send(1, 5, &[3.0, 4.0]).unwrap(); // rule 0 spent; rule 1 corrupts
        let mut buf = Vec::new();
        b.recv(0, 5, &mut buf).unwrap();
        assert_eq!(buf.len(), 1);
        assert!(buf[0].is_nan());
        let log = log.lock().unwrap();
        assert_eq!(log[0].action, "drop");
        assert_eq!(log[1].action, "corrupt");
        assert_eq!(log[1].rule, 1);
    }
}
