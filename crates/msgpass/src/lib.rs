//! Message-passing substrate: the paper's wrapper-routine layer.
//!
//! PLINGER's portability rests on a thin set of wrapper routines —
//! `initpass`, `endpass`, `mybcastreal`, `mysendreal`, `mycheckany`,
//! `mycheckone`, `mychecktid`, `myrecvreal` — re-implemented over each
//! message-passing library (PVM, MPI, MPL, PVMe).  This crate reproduces
//! exactly that architecture in Rust: the [`Transport`] trait captures
//! the primitives (tagged send, blocking probe by source and/or tag,
//! receive), the [`wrappers`] module spells out the paper's Fortran
//! routine names one-for-one, and four interchangeable transports play
//! the roles of the four 1995 libraries:
//!
//! * [`channel::ChannelWorld`] — in-process crossbeam channels (the
//!   "PVM on a shared-memory node" analogue),
//! * [`tcp::TcpWorld`] — localhost TCP sockets between OS processes
//!   (the "MPI across nodes" analogue),
//! * [`shmem::ShmemWorld`] — mutex/condvar shared-memory mailboxes
//!   (the "MPL on the SP2 switch" analogue),
//! * [`serial::LoopbackWorld`] — a deterministic single-rank loopback
//!   for protocol unit tests.
//!
//! The [`World`] trait is the single entry point for building all the
//! endpoints of a run at once: `W::endpoints(n)` returns one
//! [`Transport`] per rank, with rank 0 conventionally the master.  Farm
//! code written against `World` + `Transport` runs unchanged over every
//! transport — the paper's claim that "the choice of which library to
//! use … is simply a matter of which is most convenient to the user."

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod channel;
pub mod codec;
pub mod fault;
pub mod instrument;
pub mod serial;
pub mod shmem;
pub mod tcp;
pub mod wrappers;

use std::fmt;
use std::time::Duration;

/// Message tag (the paper's `msgtype`).
pub type Tag = u32;

/// Process rank (the paper's `tid`); the master is rank 0.
pub type Rank = usize;

/// Metadata of a pending message, as returned by probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Envelope {
    /// Sending rank.
    pub source: Rank,
    /// Message tag.
    pub tag: Tag,
    /// Payload length in `f64` words.
    pub len: usize,
}

/// Communication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// Peer rank does not exist.
    NoSuchRank(Rank),
    /// The other side hung up.
    Disconnected,
    /// The transport does not support this communication pattern.
    Unsupported(&'static str),
    /// Malformed frame on the wire.
    Protocol(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::NoSuchRank(r) => write!(f, "no such rank: {r}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            CommError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

/// A tagged, typed message-passing endpoint.
///
/// Semantics follow the 1995 libraries the paper targeted:
/// * messages between a pair of ranks are delivered in FIFO order (the
///   MPL constraint the paper notes "does not create difficulties");
/// * `probe` blocks until a matching message is pending and returns its
///   envelope without consuming it;
/// * `recv` blocks until a message with the exact `(source, tag)` is
///   pending and consumes it.
pub trait Transport: Send {
    /// This endpoint's rank (`mytid`).
    fn rank(&self) -> Rank;

    /// Number of ranks in the world (`nproc`).
    fn size(&self) -> usize;

    /// Send `data` to `dest` with tag `tag`.
    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError>;

    /// Block until a message matching the filters is pending; `None`
    /// matches anything (the paper's `MPI_ANY_SOURCE`/`MPI_ANY_TAG`).
    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError>;

    /// Bounded probe: like [`Transport::probe`], but give up after
    /// `timeout` and return `Ok(None)` when no matching message arrived.
    ///
    /// This is the primitive behind liveness-aware event loops: a master
    /// that polls with a short timeout can interleave peer-health checks
    /// with message handling and so never deadlocks on a worker that
    /// died without saying goodbye (thread endpoints keep their channels
    /// open through clones held by every peer, so a vanished worker is
    /// otherwise indistinguishable from a slow one).
    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, CommError>;

    /// Receive the first pending message from `source` with tag `tag`
    /// into `buf` (resized to fit).
    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError>;

    /// Broadcast from this rank to every other rank (the paper's
    /// `mybcastreal` loops point-to-point sends, and so does this
    /// default).
    ///
    /// # Partial-failure semantics
    ///
    /// The loop stops at the **first** failing send: ranks earlier in
    /// rank order have already received the message, ranks after the
    /// failing one have not, and nothing is rolled back.  A broadcast
    /// error therefore leaves the world in a mixed state in which some
    /// peers hold the payload and others never will.  Callers that use
    /// the broadcast to open a session (as the farm's tag-1 spec
    /// broadcast does) must treat any `Err` as fatal for the whole
    /// session and tear everything down — the farm maps it to
    /// `FarmError::Setup` — rather than proceed with the subset that
    /// was reached.
    fn broadcast(&mut self, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        let me = self.rank();
        for dest in 0..self.size() {
            if dest != me {
                self.send(dest, tag, data)?;
            }
        }
        Ok(())
    }

    /// Bytes that `len` `f64` words occupy on the wire (payload only).
    fn payload_bytes(len: usize) -> usize
    where
        Self: Sized,
    {
        len * 8
    }
}

/// A factory for the complete set of endpoints of one run.
///
/// `endpoints(n)` builds an `n`-rank world and returns its endpoints in
/// rank order (index `i` is rank `i`; rank 0 is the master by the
/// farm's convention).  Each endpoint is `Send + 'static` so it can be
/// moved to a worker thread.  This is the single seam through which the
/// farm selects a transport: `Farm::<ChannelWorld>`,
/// `Farm::<ShmemWorld>`, `Farm::<TcpWorld>` are the same code over
/// different message-passing substrates, exactly as PLINGER was the
/// same Fortran over PVM, MPI, MPL, and PVMe.
pub trait World {
    /// The endpoint type of this transport.
    type Endpoint: Transport + Send + 'static;

    /// Human-readable transport name (for logs and error messages).
    const NAME: &'static str;

    /// Build an `n`-rank world; index `i` of the result is rank `i`.
    fn endpoints(n_ranks: usize) -> Result<Vec<Self::Endpoint>, CommError>;
}

/// An owned message as stored in reorder queues.
#[derive(Debug, Clone)]
pub struct Message {
    /// Sending rank.
    pub source: Rank,
    /// Tag.
    pub tag: Tag,
    /// Payload.
    pub data: Vec<f64>,
}

impl Message {
    /// Envelope view of this message.
    pub fn envelope(&self) -> Envelope {
        Envelope {
            source: self.source,
            tag: self.tag,
            len: self.data.len(),
        }
    }

    /// True when the message matches the probe filters.
    pub fn matches(&self, source: Option<Rank>, tag: Option<Tag>) -> bool {
        source.map(|s| s == self.source).unwrap_or(true)
            && tag.map(|t| t == self.tag).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_matching() {
        let m = Message {
            source: 3,
            tag: 5,
            data: vec![1.0],
        };
        assert!(m.matches(None, None));
        assert!(m.matches(Some(3), None));
        assert!(m.matches(None, Some(5)));
        assert!(m.matches(Some(3), Some(5)));
        assert!(!m.matches(Some(2), Some(5)));
        assert!(!m.matches(Some(3), Some(4)));
    }

    #[test]
    fn comm_error_display() {
        assert_eq!(CommError::NoSuchRank(7).to_string(), "no such rank: 7");
        assert!(CommError::Disconnected.to_string().contains("disconnected"));
    }

    #[test]
    fn worlds_build_uniformly() {
        fn shape<W: World>(n: usize) {
            let eps = W::endpoints(n).unwrap();
            assert_eq!(eps.len(), n, "{}", W::NAME);
            for (i, ep) in eps.iter().enumerate() {
                assert_eq!(ep.rank(), i, "{}", W::NAME);
                assert_eq!(ep.size(), n, "{}", W::NAME);
            }
        }
        shape::<channel::ChannelWorld>(3);
        shape::<shmem::ShmemWorld>(3);
        shape::<tcp::TcpWorld>(3);
        shape::<serial::LoopbackWorld>(1);
    }
}
