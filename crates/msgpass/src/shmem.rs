//! Shared-memory transport: mutex-guarded mailboxes with condition
//! variables (parking_lot).
//!
//! The fourth transport, completing the paper's four-library portability
//! story (PVM, MPI, MPL, PVMe → channel, TCP, loopback, shmem).  Unlike
//! the channel transport, all pending messages live in one shared
//! mailbox per rank, so a probe can inspect the entire pending set
//! without draining anything — closest in spirit to MPL's behaviour on
//! the SP2's shared switch adapters.

use crate::{CommError, Envelope, Message, Rank, Tag, Transport, World};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Mailbox {
    queue: Mutex<VecDeque<Message>>,
    bell: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            bell: Condvar::new(),
        }
    }
}

/// Factory for a fixed-size shared-memory world.
pub struct ShmemWorld;

impl ShmemWorld {
    /// Create `n` endpoints; index `i` is rank `i`.
    /// `ShmemWorld` is a stateless factory, so this deliberately returns
    /// the endpoint set rather than `Self`; prefer [`World::endpoints`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize) -> Vec<ShmemEndpoint> {
        let boxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::new())).collect();
        (0..n)
            .map(|rank| ShmemEndpoint {
                rank,
                boxes: boxes.clone(),
            })
            .collect()
    }
}

impl World for ShmemWorld {
    type Endpoint = ShmemEndpoint;

    const NAME: &'static str = "shmem";

    fn endpoints(n_ranks: usize) -> Result<Vec<ShmemEndpoint>, CommError> {
        if n_ranks == 0 {
            return Err(CommError::Unsupported("world needs at least one rank"));
        }
        Ok(ShmemWorld::new(n_ranks))
    }
}

/// One rank of a shared-memory world.
pub struct ShmemEndpoint {
    rank: Rank,
    boxes: Vec<Arc<Mailbox>>,
}

impl ShmemEndpoint {
    fn own_box(&self) -> Result<&Arc<Mailbox>, CommError> {
        self.boxes
            .get(self.rank)
            .ok_or(CommError::NoSuchRank(self.rank))
    }
}

impl Transport for ShmemEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.boxes.len()
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        let mb = self.boxes.get(dest).ok_or(CommError::NoSuchRank(dest))?;
        let mut q = mb.queue.lock();
        q.push_back(Message {
            source: self.rank,
            tag,
            data: data.to_vec(),
        });
        mb.bell.notify_all();
        Ok(())
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        let mb = self.own_box()?;
        let mut q = mb.queue.lock();
        loop {
            if let Some(m) = q.iter().find(|m| m.matches(source, tag)) {
                return Ok(m.envelope());
            }
            mb.bell.wait(&mut q);
        }
    }

    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, CommError> {
        let deadline = Instant::now() + timeout;
        let mb = self.own_box()?;
        let mut q = mb.queue.lock();
        loop {
            if let Some(m) = q.iter().find(|m| m.matches(source, tag)) {
                return Ok(Some(m.envelope()));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            if mb.bell.wait_for(&mut q, deadline - now).timed_out() {
                // one final scan: a send may have slipped in right at the
                // deadline
                return Ok(q
                    .iter()
                    .find(|m| m.matches(source, tag))
                    .map(|m| m.envelope()));
            }
        }
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        let mb = self.own_box()?;
        let mut q = mb.queue.lock();
        loop {
            if let Some(i) = q.iter().position(|m| m.matches(Some(source), Some(tag))) {
                let msg = q
                    .remove(i)
                    .ok_or_else(|| CommError::Protocol("mailbox index vanished".into()))?;
                let env = msg.envelope();
                buf.clear();
                buf.extend_from_slice(&msg.data);
                return Ok(env);
            }
            mb.bell.wait(&mut q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let mut eps = ShmemWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = thread::spawn(move || {
            let mut buf = Vec::new();
            b.recv(0, 1, &mut buf).unwrap();
            b.send(0, 2, &[buf[0] + 1.0]).unwrap();
        });
        a.send(1, 1, &[41.0]).unwrap();
        let mut buf = Vec::new();
        a.recv(1, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![42.0]);
        h.join().unwrap();
    }

    #[test]
    fn probe_does_not_consume() {
        let mut eps = ShmemWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 9, &[1.0, 2.0, 3.0]).unwrap();
        let env = a.probe(None, None).unwrap();
        assert_eq!(
            env,
            Envelope {
                source: 1,
                tag: 9,
                len: 3
            }
        );
        let env2 = a.probe(Some(1), Some(9)).unwrap();
        assert_eq!(env, env2);
        let mut buf = Vec::new();
        a.recv(1, 9, &mut buf).unwrap();
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn selective_receive_out_of_order() {
        let mut eps = ShmemWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 1, &[1.0]).unwrap();
        b.send(0, 2, &[2.0]).unwrap();
        let mut buf = Vec::new();
        a.recv(1, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![2.0]);
        a.recv(1, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0]);
    }

    #[test]
    fn blocking_probe_wakes_on_send() {
        let mut eps = ShmemWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let h = thread::spawn(move || {
            // a blocks in probe until b sends
            let env = a.probe(None, None).unwrap();
            env.tag
        });
        thread::sleep(std::time::Duration::from_millis(30));
        b.send(0, 7, &[0.0]).unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn bounded_probe_times_out_and_wakes() {
        let mut eps = ShmemWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        let t0 = Instant::now();
        let none = a
            .probe_timeout(None, None, Duration::from_millis(20))
            .unwrap();
        assert!(none.is_none());
        assert!(t0.elapsed() >= Duration::from_millis(15));
        let h = thread::spawn(move || {
            a.probe_timeout(None, None, Duration::from_secs(5))
                .unwrap()
                .map(|e| e.tag)
        });
        thread::sleep(Duration::from_millis(20));
        b.send(0, 4, &[0.0]).unwrap();
        assert_eq!(h.join().unwrap(), Some(4));
    }

    #[test]
    fn broadcast_from_master() {
        let mut eps = ShmemWorld::new(3);
        let handles: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| {
                thread::spawn(move || {
                    let mut buf = Vec::new();
                    ep.recv(0, 1, &mut buf).unwrap();
                    buf[0]
                })
            })
            .collect();
        let mut master = eps.pop().unwrap();
        master.broadcast(1, &[3.5]).unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.5);
        }
    }
}
