//! In-process transport over crossbeam channels.
//!
//! One [`ChannelWorld`] builds `n` [`ChannelEndpoint`]s that can be moved
//! to worker threads.  Each endpoint owns an unbounded receiving channel
//! and a sender to every peer; probes that don't match the head of the
//! channel park messages in a local reorder queue, preserving per-pair
//! FIFO order exactly as the 1995 libraries did.

use crate::{CommError, Envelope, Message, Rank, Tag, Transport, World};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Factory for a fixed-size in-process world.
pub struct ChannelWorld;

impl ChannelWorld {
    /// Create `n` endpoints; index `i` in the returned vector is rank `i`.
    /// `ChannelWorld` is a stateless factory, so this deliberately returns
    /// the endpoint set rather than `Self`; prefer [`World::endpoints`].
    #[allow(clippy::new_ret_no_self)]
    pub fn new(n: usize) -> Vec<ChannelEndpoint> {
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded::<Message>();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| ChannelEndpoint {
                rank,
                peers: senders.clone(),
                rx,
                parked: VecDeque::new(),
            })
            .collect()
    }
}

impl World for ChannelWorld {
    type Endpoint = ChannelEndpoint;

    const NAME: &'static str = "channel";

    fn endpoints(n_ranks: usize) -> Result<Vec<ChannelEndpoint>, CommError> {
        if n_ranks == 0 {
            return Err(CommError::Unsupported("world needs at least one rank"));
        }
        Ok(ChannelWorld::new(n_ranks))
    }
}

/// One rank of an in-process world.
pub struct ChannelEndpoint {
    rank: Rank,
    peers: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    /// Messages pulled off the channel while searching for a match.
    parked: VecDeque<Message>,
}

impl ChannelEndpoint {
    fn find_parked(&self, source: Option<Rank>, tag: Option<Tag>) -> Option<usize> {
        self.parked.iter().position(|m| m.matches(source, tag))
    }

    fn pull_until_match(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<usize, CommError> {
        if let Some(i) = self.find_parked(source, tag) {
            return Ok(i);
        }
        loop {
            let msg = self.rx.recv().map_err(|_| CommError::Disconnected)?;
            let matched = msg.matches(source, tag);
            self.parked.push_back(msg);
            if matched {
                return Ok(self.parked.len() - 1);
            }
        }
    }

    /// Like [`Self::pull_until_match`] but bounded by a deadline;
    /// `Ok(None)` when it passes without a match.
    fn pull_until_deadline(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        deadline: Instant,
    ) -> Result<Option<usize>, CommError> {
        if let Some(i) = self.find_parked(source, tag) {
            return Ok(Some(i));
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(msg) => {
                    let matched = msg.matches(source, tag);
                    self.parked.push_back(msg);
                    if matched {
                        return Ok(Some(self.parked.len() - 1));
                    }
                }
                Err(_) => return Ok(None),
            }
        }
    }

    fn take_parked(&mut self, i: usize) -> Result<Message, CommError> {
        self.parked
            .remove(i)
            .ok_or_else(|| CommError::Protocol("reorder queue index vanished".into()))
    }
}

impl Transport for ChannelEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.peers.len()
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        let tx = self.peers.get(dest).ok_or(CommError::NoSuchRank(dest))?;
        tx.send(Message {
            source: self.rank,
            tag,
            data: data.to_vec(),
        })
        .map_err(|_| CommError::Disconnected)
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        let i = self.pull_until_match(source, tag)?;
        Ok(self.parked[i].envelope())
    }

    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, CommError> {
        let deadline = Instant::now() + timeout;
        Ok(self
            .pull_until_deadline(source, tag, deadline)?
            .map(|i| self.parked[i].envelope()))
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        let i = self.pull_until_match(Some(source), Some(tag))?;
        let msg = self.take_parked(i)?;
        let env = msg.envelope();
        buf.clear();
        buf.extend_from_slice(&msg.data);
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn world_has_correct_shape() {
        let eps = ChannelWorld::new(4);
        assert_eq!(eps.len(), 4);
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(ep.rank(), i);
            assert_eq!(ep.size(), 4);
        }
    }

    #[test]
    fn ping_pong_between_threads() {
        let mut eps = ChannelWorld::new(2);
        let mut worker = eps.pop().unwrap();
        let mut master = eps.pop().unwrap();
        let h = thread::spawn(move || {
            let mut buf = Vec::new();
            worker.recv(0, 7, &mut buf).unwrap();
            let doubled: Vec<f64> = buf.iter().map(|x| 2.0 * x).collect();
            worker.send(0, 8, &doubled).unwrap();
        });
        master.send(1, 7, &[1.0, 2.0, 3.0]).unwrap();
        let mut buf = Vec::new();
        let env = master.recv(1, 8, &mut buf).unwrap();
        assert_eq!(env.source, 1);
        assert_eq!(buf, vec![2.0, 4.0, 6.0]);
        h.join().unwrap();
    }

    #[test]
    fn probe_any_returns_metadata_without_consuming() {
        let mut eps = ChannelWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 3, &[9.0, 9.0]).unwrap();
        let env = a.probe(None, None).unwrap();
        assert_eq!(
            env,
            Envelope {
                source: 1,
                tag: 3,
                len: 2
            }
        );
        // probing again still sees it
        let env2 = a.probe(Some(1), Some(3)).unwrap();
        assert_eq!(env, env2);
        // and recv gets the data
        let mut buf = Vec::new();
        a.recv(1, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![9.0, 9.0]);
    }

    #[test]
    fn probe_timeout_expires_then_matches() {
        let mut eps = ChannelWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        // nothing pending: a short bounded probe returns None
        let none = a
            .probe_timeout(None, None, Duration::from_millis(10))
            .unwrap();
        assert!(none.is_none());
        b.send(0, 3, &[1.0]).unwrap();
        let env = a
            .probe_timeout(None, None, Duration::from_millis(200))
            .unwrap()
            .expect("message is pending");
        assert_eq!(env.tag, 3);
        // mismatched filter still times out without consuming
        let miss = a
            .probe_timeout(Some(1), Some(9), Duration::from_millis(10))
            .unwrap();
        assert!(miss.is_none());
        let mut buf = Vec::new();
        a.recv(1, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0]);
    }

    #[test]
    fn out_of_order_tags_are_reordered() {
        let mut eps = ChannelWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        b.send(0, 1, &[1.0]).unwrap();
        b.send(0, 2, &[2.0]).unwrap();
        b.send(0, 1, &[3.0]).unwrap();
        let mut buf = Vec::new();
        // pull tag 2 first even though a tag-1 message is ahead of it
        a.recv(1, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![2.0]);
        // tag-1 messages still arrive in FIFO order
        a.recv(1, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0]);
        a.recv(1, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![3.0]);
    }

    #[test]
    fn fifo_order_per_pair() {
        let mut eps = ChannelWorld::new(2);
        let mut b = eps.pop().unwrap();
        let mut a = eps.pop().unwrap();
        for i in 0..100 {
            b.send(0, 1, &[i as f64]).unwrap();
        }
        let mut buf = Vec::new();
        for i in 0..100 {
            a.recv(1, 1, &mut buf).unwrap();
            assert_eq!(buf[0], i as f64);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut eps = ChannelWorld::new(4);
        let handles: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| {
                thread::spawn(move || {
                    let mut buf = Vec::new();
                    ep.recv(0, 1, &mut buf).unwrap();
                    buf[0]
                })
            })
            .collect();
        let mut master = eps.pop().unwrap();
        master.broadcast(1, &[5.5]).unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), 5.5);
        }
    }

    #[test]
    fn send_to_missing_rank_errors() {
        let mut eps = ChannelWorld::new(1);
        let mut only = eps.pop().unwrap();
        assert_eq!(
            only.send(3, 0, &[1.0]).unwrap_err(),
            CommError::NoSuchRank(3)
        );
    }

    #[test]
    fn empty_world_is_rejected() {
        assert!(<ChannelWorld as World>::endpoints(0).is_err());
    }

    #[test]
    fn disconnected_world_errors() {
        let mut eps = ChannelWorld::new(2);
        let mut a = eps.remove(0);
        drop(eps); // rank 1 gone
                   // sending still works (channel buffered) but receiving can't block
                   // forever: dropping all senders to rank 0 except its own clone...
                   // rank 0 holds a sender to itself, so the channel never closes;
                   // emulate worker completion by a message instead.
        a.send(0, 6, &[0.0]).unwrap();
        let mut buf = Vec::new();
        let env = a.recv(0, 6, &mut buf).unwrap();
        assert_eq!(env.source, 0);
    }
}
