//! TCP transport: master/worker star over localhost sockets.
//!
//! This is the "distributed-memory" transport of the reproduction — the
//! role MPI/PVM played across SP2 or T3D nodes.  PLINGER's protocol only
//! ever communicates master ↔ worker, so the topology is a star rooted
//! at rank 0; worker-to-worker sends return
//! [`CommError::Unsupported`], which the farm never triggers.
//!
//! Each endpoint spawns one reader thread per socket that decodes frames
//! ([`crate::codec`]) into an internal channel; probe/receive semantics
//! (blocking, per-pair FIFO, reorder queue) are identical to the
//! in-process transport, as the paper demands of its wrapper layer.
//!
//! Two assembly paths exist: [`TcpWorld`] builds all endpoints of a
//! star inside one process (for tests and thread-based farms over real
//! sockets), while [`PendingMaster`] + [`connect_worker`] split the
//! handshake across processes (the `plinger --transport tcp` deployment,
//! where each worker is an OS subprocess).

use crate::codec::{decode, encode};
use crate::{CommError, Envelope, Message, Rank, Tag, Transport, World};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared writer table: one slot per rank, swappable at respawn time.
type WriterTable = Arc<Mutex<Vec<Option<TcpStream>>>>;

/// Control tag used for the rank-introduction handshake.
const HELLO_TAG: Tag = u32::MAX;

/// A pending master endpoint: workers connect to [`Self::addr`].
pub struct PendingMaster {
    listener: TcpListener,
    addr: SocketAddr,
    n_workers: usize,
}

impl PendingMaster {
    /// Bind an ephemeral localhost port for `n_workers` workers.
    pub fn bind(n_workers: usize) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            n_workers,
        })
    }

    /// The address workers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accept all workers and build the master endpoint (rank 0).
    pub fn accept_all(self) -> Result<TcpEndpoint, CommError> {
        self.accept_all_keep().map(|(ep, _port)| ep)
    }

    /// Accept all workers like [`Self::accept_all`], but keep the
    /// listening socket open and return a [`RespawnPort`] through which
    /// a replacement worker can be re-handshaked into the star mid-run.
    pub fn accept_all_keep(self) -> Result<(TcpEndpoint, RespawnPort), CommError> {
        let (tx, rx) = unbounded::<Message>();
        let mut writers: Vec<Option<TcpStream>> = (0..=self.n_workers).map(|_| None).collect();
        let mut readers = Vec::new();
        for _ in 0..self.n_workers {
            let (stream, _) = self
                .listener
                .accept()
                .map_err(|e| CommError::Protocol(format!("accept failed: {e}")))?;
            stream.set_nodelay(true).ok();
            // handshake: first frame announces the worker's rank.  Any
            // bytes that arrive behind the hello (eager first messages)
            // are carried over into the reader thread's buffer.
            let mut hello_stream = stream
                .try_clone()
                .map_err(|e| CommError::Protocol(format!("clone failed: {e}")))?;
            let (hello, carry) = read_one_frame(&mut hello_stream)?;
            if hello.tag != HELLO_TAG {
                return Err(CommError::Protocol("expected hello frame".into()));
            }
            let rank = hello.source;
            if rank == 0 || rank > self.n_workers {
                return Err(CommError::Protocol(format!("bad hello rank {rank}")));
            }
            writers[rank] = Some(
                stream
                    .try_clone()
                    .map_err(|e| CommError::Protocol(format!("clone failed: {e}")))?,
            );
            readers.push(spawn_reader(stream, carry, tx.clone()));
        }
        let writers: WriterTable = Arc::new(Mutex::new(writers));
        let port = RespawnPort {
            listener: self.listener,
            addr: self.addr,
            n_workers: self.n_workers,
            tx,
            writers: Arc::clone(&writers),
        };
        let ep = TcpEndpoint {
            rank: 0,
            size: self.n_workers + 1,
            writers,
            rx,
            parked: VecDeque::new(),
            _readers: readers,
        };
        Ok((ep, port))
    }
}

/// The master's still-open listening socket, used to re-admit a
/// replacement worker after its predecessor died.
///
/// Obtained from [`PendingMaster::accept_all_keep`].  [`Self::admit`]
/// swaps the new connection into the master endpoint's writer table and
/// attaches a fresh reader thread, so the endpoint keeps working without
/// being rebuilt; stale frames from the dead predecessor may still be
/// queued and must be tolerated by the caller's protocol.
pub struct RespawnPort {
    listener: TcpListener,
    addr: SocketAddr,
    n_workers: usize,
    tx: Sender<Message>,
    writers: WriterTable,
}

impl RespawnPort {
    /// The address replacement workers should connect to (same as the
    /// original [`PendingMaster::addr`]).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wait up to `timeout` for a replacement worker to connect and
    /// introduce itself as `expected_rank`, then splice it into the
    /// master endpoint's writer table and spawn its reader thread.
    pub fn admit(&self, expected_rank: Rank, timeout: Duration) -> Result<(), CommError> {
        if expected_rank == 0 || expected_rank > self.n_workers {
            return Err(CommError::NoSuchRank(expected_rank));
        }
        self.listener
            .set_nonblocking(true)
            .map_err(|e| CommError::Protocol(format!("set_nonblocking failed: {e}")))?;
        let deadline = Instant::now() + timeout;
        let accepted = loop {
            match self.listener.accept() {
                Ok((stream, _)) => break stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        self.listener.set_nonblocking(false).ok();
                        return Err(CommError::Protocol(format!(
                            "no reconnection from rank {expected_rank} within {timeout:?}"
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    self.listener.set_nonblocking(false).ok();
                    return Err(CommError::Protocol(format!("accept failed: {e}")));
                }
            }
        };
        self.listener.set_nonblocking(false).ok();
        accepted
            .set_nonblocking(false)
            .map_err(|e| CommError::Protocol(format!("set_blocking failed: {e}")))?;
        accepted.set_nodelay(true).ok();
        let mut hello_stream = accepted
            .try_clone()
            .map_err(|e| CommError::Protocol(format!("clone failed: {e}")))?;
        // bound the hello read so a connect-and-hang client can't wedge us
        hello_stream
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))
            .ok();
        let (hello, carry) = read_one_frame(&mut hello_stream)?;
        if hello.tag != HELLO_TAG {
            return Err(CommError::Protocol("expected hello frame".into()));
        }
        if hello.source != expected_rank {
            return Err(CommError::Protocol(format!(
                "expected hello from rank {expected_rank}, got {}",
                hello.source
            )));
        }
        let writer = accepted
            .try_clone()
            .map_err(|e| CommError::Protocol(format!("clone failed: {e}")))?;
        {
            let mut writers = self
                .writers
                .lock()
                .map_err(|_| CommError::Protocol("writer table poisoned".into()))?;
            writers[expected_rank] = Some(writer);
        }
        // detached on purpose: the reader dies with its socket
        let _reader = spawn_reader(accepted, carry, self.tx.clone());
        Ok(())
    }
}

/// Connect a worker endpoint with the given rank (1-based) to the master.
pub fn connect_worker(addr: SocketAddr, rank: Rank, size: usize) -> Result<TcpEndpoint, CommError> {
    if rank < 1 || rank >= size {
        return Err(CommError::NoSuchRank(rank));
    }
    let stream = TcpStream::connect(addr)
        .map_err(|e| CommError::Protocol(format!("connect failed: {e}")))?;
    stream.set_nodelay(true).ok();
    let mut hello_stream = stream
        .try_clone()
        .map_err(|e| CommError::Protocol(format!("clone failed: {e}")))?;
    hello_stream
        .write_all(&encode(rank, HELLO_TAG, &[]))
        .map_err(|e| CommError::Protocol(format!("hello failed: {e}")))?;
    let (tx, rx) = unbounded::<Message>();
    let mut writers: Vec<Option<TcpStream>> = (0..size).map(|_| None).collect();
    writers[0] = Some(
        stream
            .try_clone()
            .map_err(|e| CommError::Protocol(format!("clone failed: {e}")))?,
    );
    let reader = spawn_reader(stream, BytesMut::new(), tx);
    Ok(TcpEndpoint {
        rank,
        size,
        writers: Arc::new(Mutex::new(writers)),
        rx,
        parked: VecDeque::new(),
        _readers: vec![reader],
    })
}

/// In-process factory for a localhost TCP star: all endpoints are built
/// inside the calling process, connected through real sockets.
///
/// The connect side runs before the accept side; the listener backlog
/// holds the pending connections, so no helper threads are needed.
pub struct TcpWorld;

impl World for TcpWorld {
    type Endpoint = TcpEndpoint;

    const NAME: &'static str = "tcp";

    fn endpoints(n_ranks: usize) -> Result<Vec<TcpEndpoint>, CommError> {
        if n_ranks == 0 {
            return Err(CommError::Unsupported("world needs at least one rank"));
        }
        let n_workers = n_ranks - 1;
        let pending = PendingMaster::bind(n_workers)
            .map_err(|e| CommError::Protocol(format!("bind failed: {e}")))?;
        let addr = pending.addr();
        let mut workers = Vec::with_capacity(n_workers);
        for rank in 1..n_ranks {
            workers.push(connect_worker(addr, rank, n_ranks)?);
        }
        let master = pending.accept_all()?;
        let mut eps = Vec::with_capacity(n_ranks);
        eps.push(master);
        eps.extend(workers);
        Ok(eps)
    }
}

/// Read exactly one frame; returns it together with any surplus bytes
/// already pulled off the socket (they belong to subsequent frames).
fn read_one_frame(stream: &mut TcpStream) -> Result<(Message, BytesMut), CommError> {
    let mut buf = BytesMut::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(msg) = decode(&mut buf)? {
            return Ok((msg, buf));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| CommError::Protocol(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(CommError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn spawn_reader(mut stream: TcpStream, carry: BytesMut, tx: Sender<Message>) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut buf = carry;
        let mut chunk = [0u8; 1 << 16];
        loop {
            loop {
                match decode(&mut buf) {
                    Ok(Some(msg)) => {
                        if tx.send(msg).is_err() {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => return,
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) | Err(_) => return,
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
            }
        }
    })
}

/// One rank of a TCP star world.
pub struct TcpEndpoint {
    rank: Rank,
    size: usize,
    writers: WriterTable,
    rx: Receiver<Message>,
    parked: VecDeque<Message>,
    _readers: Vec<JoinHandle<()>>,
}

impl TcpEndpoint {
    fn pull_until_match(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<usize, CommError> {
        if let Some(i) = self.parked.iter().position(|m| m.matches(source, tag)) {
            return Ok(i);
        }
        loop {
            let msg = self.rx.recv().map_err(|_| CommError::Disconnected)?;
            let matched = msg.matches(source, tag);
            self.parked.push_back(msg);
            if matched {
                return Ok(self.parked.len() - 1);
            }
        }
    }

    fn pull_until_deadline(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        deadline: Instant,
    ) -> Result<Option<usize>, CommError> {
        if let Some(i) = self.parked.iter().position(|m| m.matches(source, tag)) {
            return Ok(Some(i));
        }
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(msg) => {
                    let matched = msg.matches(source, tag);
                    self.parked.push_back(msg);
                    if matched {
                        return Ok(Some(self.parked.len() - 1));
                    }
                }
                Err(_) => return Ok(None),
            }
        }
    }
}

impl Transport for TcpEndpoint {
    fn rank(&self) -> Rank {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        if dest >= self.size {
            return Err(CommError::NoSuchRank(dest));
        }
        let frame = encode(self.rank, tag, data);
        let mut writers = self
            .writers
            .lock()
            .map_err(|_| CommError::Protocol("writer table poisoned".into()))?;
        match writers.get_mut(dest).and_then(|w| w.as_mut()) {
            Some(stream) => stream
                .write_all(&frame)
                .map_err(|_| CommError::Disconnected),
            None => Err(CommError::Unsupported(
                "TCP star topology only links master and workers",
            )),
        }
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        let i = self.pull_until_match(source, tag)?;
        Ok(self.parked[i].envelope())
    }

    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, CommError> {
        let deadline = Instant::now() + timeout;
        Ok(self
            .pull_until_deadline(source, tag, deadline)?
            .map(|i| self.parked[i].envelope()))
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        let i = self.pull_until_match(Some(source), Some(tag))?;
        let msg = self
            .parked
            .remove(i)
            .ok_or_else(|| CommError::Protocol("reorder queue index vanished".into()))?;
        let env = msg.envelope();
        buf.clear();
        buf.extend_from_slice(&msg.data);
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn star_ping_pong() {
        let pending = PendingMaster::bind(2).unwrap();
        let addr = pending.addr();
        let workers: Vec<_> = (1..=2)
            .map(|rank| {
                thread::spawn(move || {
                    let mut ep = connect_worker(addr, rank, 3).unwrap();
                    let mut buf = Vec::new();
                    ep.recv(0, 1, &mut buf).unwrap();
                    ep.send(0, 2, &[buf[0] * rank as f64]).unwrap();
                })
            })
            .collect();
        let mut master = pending.accept_all().unwrap();
        master.broadcast(1, &[10.0]).unwrap();
        let mut got = Vec::new();
        let mut buf = Vec::new();
        for _ in 0..2 {
            let env = master.probe(None, Some(2)).unwrap();
            master.recv(env.source, 2, &mut buf).unwrap();
            got.push(buf[0]);
        }
        got.sort_by(f64::total_cmp);
        assert_eq!(got, vec![10.0, 20.0]);
        for w in workers {
            w.join().unwrap();
        }
    }

    #[test]
    fn in_process_world_over_sockets() {
        let mut eps = TcpWorld::endpoints(3).unwrap();
        assert_eq!(eps.len(), 3);
        let handles: Vec<_> = eps
            .drain(1..)
            .map(|mut ep| {
                thread::spawn(move || {
                    let mut buf = Vec::new();
                    ep.recv(0, 1, &mut buf).unwrap();
                    ep.send(0, 2, &[buf[0] + ep.rank() as f64]).unwrap();
                })
            })
            .collect();
        let mut master = eps.remove(0);
        master.broadcast(1, &[100.0]).unwrap();
        let mut got = Vec::new();
        let mut buf = Vec::new();
        for _ in 0..2 {
            let env = master.probe(None, Some(2)).unwrap();
            master.recv(env.source, 2, &mut buf).unwrap();
            got.push(buf[0]);
        }
        got.sort_by(f64::total_cmp);
        assert_eq!(got, vec![101.0, 102.0]);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn probe_timeout_detects_silence() {
        let mut eps = TcpWorld::endpoints(2).unwrap();
        let mut master = eps.remove(0);
        let none = master
            .probe_timeout(None, None, Duration::from_millis(20))
            .unwrap();
        assert!(none.is_none());
        let mut worker = eps.remove(0);
        worker.send(0, 3, &[1.5]).unwrap();
        let env = master
            .probe_timeout(None, None, Duration::from_secs(2))
            .unwrap()
            .expect("frame should arrive");
        assert_eq!(env.tag, 3);
    }

    #[test]
    fn large_message_integrity() {
        let pending = PendingMaster::bind(1).unwrap();
        let addr = pending.addr();
        let n = 100_000; // 800 kB, larger than the paper's 80 kB maximum
        let worker = thread::spawn(move || {
            let mut ep = connect_worker(addr, 1, 2).unwrap();
            let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            ep.send(0, 5, &data).unwrap();
        });
        let mut master = pending.accept_all().unwrap();
        let mut buf = Vec::new();
        let env = master.recv(1, 5, &mut buf).unwrap();
        assert_eq!(env.len, n);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, (i as f64).sin());
        }
        worker.join().unwrap();
    }

    #[test]
    fn worker_to_worker_unsupported() {
        let pending = PendingMaster::bind(2).unwrap();
        let addr = pending.addr();
        let w = thread::spawn(move || {
            let mut ep = connect_worker(addr, 1, 3).unwrap();
            let err = ep.send(2, 1, &[1.0]).unwrap_err();
            assert!(matches!(err, CommError::Unsupported(_)));
            // unblock master accept-side bookkeeping by finishing cleanly
        });
        let w2 = thread::spawn(move || {
            let _ep = connect_worker(addr, 2, 3).unwrap();
        });
        let _master = pending.accept_all().unwrap();
        w.join().unwrap();
        w2.join().unwrap();
    }

    #[test]
    fn bad_worker_rank_is_error_not_panic() {
        let pending = PendingMaster::bind(1).unwrap();
        let addr = pending.addr();
        assert!(matches!(
            connect_worker(addr, 0, 2),
            Err(CommError::NoSuchRank(0))
        ));
        assert!(matches!(
            connect_worker(addr, 2, 2),
            Err(CommError::NoSuchRank(2))
        ));
    }

    #[test]
    fn respawn_port_readmits_a_replacement_worker() {
        let pending = PendingMaster::bind(1).unwrap();
        let addr = pending.addr();
        let first = thread::spawn(move || {
            let mut ep = connect_worker(addr, 1, 2).unwrap();
            ep.send(0, 3, &[1.0]).unwrap();
            // drop: the worker "dies" after one message
        });
        let (mut master, port) = pending.accept_all_keep().unwrap();
        let mut buf = Vec::new();
        master.recv(1, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0]);
        first.join().unwrap();

        // a replacement connects under the same rank
        let second = thread::spawn(move || {
            let mut ep = connect_worker(addr, 1, 2).unwrap();
            let mut buf = Vec::new();
            ep.recv(0, 1, &mut buf).unwrap();
            ep.send(0, 3, &[buf[0] + 1.0]).unwrap();
        });
        port.admit(1, Duration::from_secs(5)).unwrap();
        master.send(1, 1, &[41.0]).unwrap();
        master.recv(1, 3, &mut buf).unwrap();
        assert_eq!(buf, vec![42.0]);
        second.join().unwrap();
    }

    #[test]
    fn respawn_admit_times_out_cleanly() {
        let pending = PendingMaster::bind(1).unwrap();
        let addr = pending.addr();
        let w = thread::spawn(move || {
            let _ep = connect_worker(addr, 1, 2).unwrap();
        });
        let (_master, port) = pending.accept_all_keep().unwrap();
        w.join().unwrap();
        let err = port.admit(1, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, CommError::Protocol(_)));
        assert_eq!(port.addr(), addr);
    }

    #[test]
    fn fifo_order_over_tcp() {
        let pending = PendingMaster::bind(1).unwrap();
        let addr = pending.addr();
        let worker = thread::spawn(move || {
            let mut ep = connect_worker(addr, 1, 2).unwrap();
            for i in 0..200 {
                ep.send(0, 1, &[i as f64]).unwrap();
            }
        });
        let mut master = pending.accept_all().unwrap();
        let mut buf = Vec::new();
        for i in 0..200 {
            master.recv(1, 1, &mut buf).unwrap();
            assert_eq!(buf[0], i as f64);
        }
        worker.join().unwrap();
    }
}
