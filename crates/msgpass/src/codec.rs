//! Wire framing for the TCP transport.
//!
//! Frame layout (little endian):
//!
//! ```text
//! [ source: u32 ][ tag: u32 ][ len: u64 ][ len × f64 payload ]
//! ```

use crate::{CommError, Message, Rank, Tag};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame header size in bytes.
pub const HEADER_BYTES: usize = 4 + 4 + 8;

/// Encode a message into a wire frame.
pub fn encode(source: Rank, tag: Tag, data: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + data.len() * 8);
    buf.put_u32_le(source as u32);
    buf.put_u32_le(tag);
    buf.put_u64_le(data.len() as u64);
    for &x in data {
        buf.put_f64_le(x);
    }
    buf.freeze()
}

/// Decode one frame from `buf`.  Returns `None` when more bytes are
/// needed; on success the consumed bytes are split off `buf`.
pub fn decode(buf: &mut BytesMut) -> Result<Option<Message>, CommError> {
    if buf.len() < HEADER_BYTES {
        return Ok(None);
    }
    let mut peek = &buf[..HEADER_BYTES];
    let source = peek.get_u32_le() as Rank;
    let tag = peek.get_u32_le();
    let len = peek.get_u64_le();
    if len > (1 << 32) {
        return Err(CommError::Protocol(format!("absurd frame length {len}")));
    }
    let need = HEADER_BYTES + (len as usize) * 8;
    if buf.len() < need {
        return Ok(None);
    }
    buf.advance(HEADER_BYTES);
    let mut data = Vec::with_capacity(len as usize);
    for _ in 0..len {
        data.push(buf.get_f64_le());
    }
    Ok(Some(Message { source, tag, data }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let data = vec![1.5, -2.25, 1e300, 0.0, f64::MIN_POSITIVE];
        let frame = encode(3, 42, &data);
        let mut buf = BytesMut::from(&frame[..]);
        let msg = decode(&mut buf).unwrap().unwrap();
        assert_eq!(msg.source, 3);
        assert_eq!(msg.tag, 42);
        assert_eq!(msg.data, data);
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_need_more_bytes() {
        let frame = encode(1, 2, &[3.0, 4.0]);
        for cut in 0..frame.len() {
            let mut buf = BytesMut::from(&frame[..cut]);
            assert!(decode(&mut buf).unwrap().is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn back_to_back_frames() {
        let f1 = encode(0, 1, &[1.0]);
        let f2 = encode(0, 2, &[2.0, 3.0]);
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&f1);
        buf.extend_from_slice(&f2);
        let m1 = decode(&mut buf).unwrap().unwrap();
        let m2 = decode(&mut buf).unwrap().unwrap();
        assert_eq!(m1.tag, 1);
        assert_eq!(m2.tag, 2);
        assert_eq!(m2.data, vec![2.0, 3.0]);
        assert!(buf.is_empty());
    }

    #[test]
    fn empty_payload_is_legal() {
        let frame = encode(5, 9, &[]);
        let mut buf = BytesMut::from(&frame[..]);
        let msg = decode(&mut buf).unwrap().unwrap();
        assert!(msg.data.is_empty());
    }

    #[test]
    fn nan_survives_roundtrip_bitwise() {
        let data = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let frame = encode(0, 0, &data);
        let mut buf = BytesMut::from(&frame[..]);
        let msg = decode(&mut buf).unwrap().unwrap();
        assert!(msg.data[0].is_nan());
        assert_eq!(msg.data[1], f64::INFINITY);
        assert_eq!(msg.data[2], f64::NEG_INFINITY);
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u64_le(u64::MAX);
        assert!(matches!(decode(&mut buf), Err(CommError::Protocol(_))));
    }
}
