//! Transparent telemetry instrumentation for any [`Transport`].
//!
//! [`Instrumented`] wraps an endpoint and records, per message tag:
//! messages and bytes sent, messages and bytes received, and send/recv
//! call latencies (log2-bucketed nanosecond histograms).  The counters
//! live in a shared [`EndpointStats`] so the farm can keep an `Arc`
//! handle while the wrapped endpoint moves to its worker thread, then
//! harvest a [`CommSnapshot`] after the join.
//!
//! Because the wrapper works at the [`Transport`] seam it measures all
//! four substrates identically — the per-tag message table of the
//! paper's §4 becomes one merged snapshot regardless of whether the run
//! farmed over channels, shared memory, or TCP.  Bytes are counted as
//! `8 ×` the `f64` payload length (the same convention as
//! [`Transport::payload_bytes`] and the worker's own `bytes_sent`
//! ledger), so transport-level framing overhead is excluded and the
//! numbers are comparable across substrates.
//!
//! Recording honours the global `telemetry::enabled()` switch: when
//! telemetry is off every counter update compiles down to one relaxed
//! atomic load and a skipped branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use telemetry::{Histogram, HistogramSnapshot};

use crate::{CommError, Envelope, Rank, Tag, Transport};

/// Number of distinct tags tracked individually; tags `>= TRACKED_TAGS`
/// fold into the last slot.  The farm protocol uses tags 1–11, so 16
/// leaves ample headroom.
pub const TRACKED_TAGS: usize = 16;

/// Shared per-endpoint communication counters, indexed by tag.
#[derive(Debug, Default)]
pub struct EndpointStats {
    sent_count: [AtomicU64; TRACKED_TAGS],
    sent_bytes: [AtomicU64; TRACKED_TAGS],
    recv_count: [AtomicU64; TRACKED_TAGS],
    recv_bytes: [AtomicU64; TRACKED_TAGS],
    send_ns: Histogram,
    recv_ns: Histogram,
}

/// Fold an arbitrary tag into a tracked slot.
#[inline]
fn slot(tag: Tag) -> usize {
    (tag as usize).min(TRACKED_TAGS - 1)
}

impl EndpointStats {
    /// Fresh zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sent message of `words` `f64`s under `tag`, taking
    /// `elapsed` inside the transport's send call.
    #[inline]
    pub fn on_send(&self, tag: Tag, words: usize, elapsed: Duration) {
        if !telemetry::enabled() {
            return;
        }
        let s = slot(tag);
        self.sent_count[s].fetch_add(1, Ordering::Relaxed);
        self.sent_bytes[s].fetch_add((words * 8) as u64, Ordering::Relaxed);
        self.send_ns.record(elapsed.as_nanos() as u64);
    }

    /// Record one received message of `words` `f64`s under `tag`,
    /// taking `elapsed` inside the transport's recv call (which
    /// includes the time blocked waiting for the message).
    #[inline]
    pub fn on_recv(&self, tag: Tag, words: usize, elapsed: Duration) {
        if !telemetry::enabled() {
            return;
        }
        let s = slot(tag);
        self.recv_count[s].fetch_add(1, Ordering::Relaxed);
        self.recv_bytes[s].fetch_add((words * 8) as u64, Ordering::Relaxed);
        self.recv_ns.record(elapsed.as_nanos() as u64);
    }

    /// Immutable copy of everything recorded so far, labelled with the
    /// owning endpoint's rank.
    pub fn snapshot(&self, rank: Rank) -> CommSnapshot {
        let load = |a: &[AtomicU64; TRACKED_TAGS]| {
            let mut out = [0u64; TRACKED_TAGS];
            for (o, v) in out.iter_mut().zip(a.iter()) {
                *o = v.load(Ordering::Relaxed);
            }
            out
        };
        CommSnapshot {
            rank,
            sent_count: load(&self.sent_count),
            sent_bytes: load(&self.sent_bytes),
            recv_count: load(&self.recv_count),
            recv_bytes: load(&self.recv_bytes),
            send_ns: self.send_ns.snapshot(),
            recv_ns: self.recv_ns.snapshot(),
        }
    }
}

/// Plain-data view of one endpoint's communication, mergeable across
/// ranks into the run-wide message table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Rank of the endpoint that recorded these numbers.
    pub rank: Rank,
    /// Messages sent, by tag slot.
    pub sent_count: [u64; TRACKED_TAGS],
    /// Payload bytes sent, by tag slot.
    pub sent_bytes: [u64; TRACKED_TAGS],
    /// Messages received, by tag slot.
    pub recv_count: [u64; TRACKED_TAGS],
    /// Payload bytes received, by tag slot.
    pub recv_bytes: [u64; TRACKED_TAGS],
    /// Send-call latency distribution (nanoseconds).
    pub send_ns: HistogramSnapshot,
    /// Recv-call latency distribution (nanoseconds; includes blocking).
    pub recv_ns: HistogramSnapshot,
}

impl Default for CommSnapshot {
    fn default() -> Self {
        Self {
            rank: 0,
            sent_count: [0; TRACKED_TAGS],
            sent_bytes: [0; TRACKED_TAGS],
            recv_count: [0; TRACKED_TAGS],
            recv_bytes: [0; TRACKED_TAGS],
            send_ns: HistogramSnapshot::default(),
            recv_ns: HistogramSnapshot::default(),
        }
    }
}

impl CommSnapshot {
    /// Total messages sent across all tags.
    pub fn total_sent(&self) -> u64 {
        self.sent_count.iter().sum()
    }

    /// Total payload bytes sent across all tags.
    pub fn total_sent_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Total messages received across all tags.
    pub fn total_recv(&self) -> u64 {
        self.recv_count.iter().sum()
    }

    /// Total payload bytes received across all tags.
    pub fn total_recv_bytes(&self) -> u64 {
        self.recv_bytes.iter().sum()
    }

    /// Fold another endpoint's snapshot into this one (tag-wise sums;
    /// the rank label keeps this side's value).
    pub fn merge(&mut self, other: &CommSnapshot) {
        for i in 0..TRACKED_TAGS {
            self.sent_count[i] += other.sent_count[i];
            self.sent_bytes[i] += other.sent_bytes[i];
            self.recv_count[i] += other.recv_count[i];
            self.recv_bytes[i] += other.recv_bytes[i];
        }
        self.send_ns.merge(&other.send_ns);
        self.recv_ns.merge(&other.recv_ns);
    }

    /// Render this snapshot as a generic [`telemetry::TelemetrySnapshot`]:
    /// counters `msgs_sent`, `msgs_recv`, `bytes_sent`, `bytes_recv`
    /// (plus per-tag `…_tagN` breakdowns for tags that moved) and the
    /// `send_ns`/`recv_ns` latency histograms.  These names are part of
    /// the observability contract (`docs/OBSERVABILITY.md`); the farm
    /// report and the service's `/metrics` endpoint both build on them.
    pub fn to_telemetry(&self) -> telemetry::TelemetrySnapshot {
        let mut s = telemetry::TelemetrySnapshot::default();
        s.add("msgs_sent", self.total_sent());
        s.add("msgs_recv", self.total_recv());
        s.add("bytes_sent", self.total_sent_bytes());
        s.add("bytes_recv", self.total_recv_bytes());
        for tag in 0..TRACKED_TAGS {
            if self.sent_count[tag] > 0 {
                s.add(&format!("msgs_sent_tag{tag}"), self.sent_count[tag]);
                s.add(&format!("bytes_sent_tag{tag}"), self.sent_bytes[tag]);
            }
            if self.recv_count[tag] > 0 {
                s.add(&format!("msgs_recv_tag{tag}"), self.recv_count[tag]);
                s.add(&format!("bytes_recv_tag{tag}"), self.recv_bytes[tag]);
            }
        }
        s.histograms.insert("send_ns".into(), self.send_ns.clone());
        s.histograms.insert("recv_ns".into(), self.recv_ns.clone());
        s
    }

    /// Traffic accumulated since `base`, an earlier snapshot of the
    /// *same* endpoint: tag-wise saturating differences of every
    /// counter.  A pooled farm takes a snapshot between jobs and
    /// reports each job's table as `now.delta(&before)`, so per-job
    /// reports don't accumulate earlier jobs' traffic.  Latency
    /// histograms subtract bucket-wise; their `min`/`max` stay
    /// cumulative (see [`HistogramSnapshot::delta`]).
    pub fn delta(&self, base: &CommSnapshot) -> CommSnapshot {
        let sub = |a: &[u64; TRACKED_TAGS], b: &[u64; TRACKED_TAGS]| {
            let mut out = [0u64; TRACKED_TAGS];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = a[i].saturating_sub(b[i]);
            }
            out
        };
        CommSnapshot {
            rank: self.rank,
            sent_count: sub(&self.sent_count, &base.sent_count),
            sent_bytes: sub(&self.sent_bytes, &base.sent_bytes),
            recv_count: sub(&self.recv_count, &base.recv_count),
            recv_bytes: sub(&self.recv_bytes, &base.recv_bytes),
            send_ns: self.send_ns.delta(&base.send_ns),
            recv_ns: self.recv_ns.delta(&base.recv_ns),
        }
    }
}

/// A [`Transport`] wrapper that forwards every call to the inner
/// endpoint and records per-tag counts, bytes, and latencies into a
/// shared [`EndpointStats`].
#[derive(Debug)]
pub struct Instrumented<T: Transport> {
    inner: T,
    stats: Arc<EndpointStats>,
}

impl<T: Transport> Instrumented<T> {
    /// Wrap `inner`, returning the wrapper and a shared handle to its
    /// counters (keep the handle; the wrapper usually moves to a
    /// thread).
    pub fn new(inner: T) -> (Self, Arc<EndpointStats>) {
        let stats = Arc::new(EndpointStats::new());
        (
            Self {
                inner,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// The shared counter handle.
    pub fn stats(&self) -> Arc<EndpointStats> {
        Arc::clone(&self.stats)
    }

    /// Unwrap, dropping the instrumentation.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for Instrumented<T> {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        let t0 = Instant::now();
        let r = self.inner.send(dest, tag, data);
        if r.is_ok() {
            self.stats.on_send(tag, data.len(), t0.elapsed());
        }
        r
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        self.inner.probe(source, tag)
    }

    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Option<Envelope>, CommError> {
        self.inner.probe_timeout(source, tag, timeout)
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        let t0 = Instant::now();
        let r = self.inner.recv(source, tag, buf);
        if let Ok(env) = &r {
            self.stats.on_recv(env.tag, env.len, t0.elapsed());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelWorld;
    use crate::World;

    #[test]
    fn wrapper_counts_per_tag_traffic() {
        let mut eps = ChannelWorld::endpoints(2).unwrap();
        let w1 = eps.pop().unwrap();
        let w0 = eps.pop().unwrap();
        let (mut a, sa) = Instrumented::new(w0);
        let (mut b, sb) = Instrumented::new(w1);

        a.send(1, 3, &[1.0, 2.0, 3.0]).unwrap();
        a.send(1, 3, &[4.0]).unwrap();
        a.send(1, 5, &[]).unwrap();
        let mut buf = Vec::new();
        b.recv(0, 3, &mut buf).unwrap();
        b.recv(0, 3, &mut buf).unwrap();
        b.recv(0, 5, &mut buf).unwrap();

        let snap_a = sa.snapshot(0);
        let snap_b = sb.snapshot(1);
        assert_eq!(snap_a.sent_count[3], 2);
        assert_eq!(snap_a.sent_bytes[3], 32);
        assert_eq!(snap_a.sent_count[5], 1);
        assert_eq!(snap_a.sent_bytes[5], 0);
        assert_eq!(snap_a.total_sent(), 3);
        assert_eq!(snap_a.total_recv(), 0);
        assert_eq!(snap_b.recv_count[3], 2);
        assert_eq!(snap_b.recv_bytes[3], 32);
        assert_eq!(snap_b.recv_count[5], 1);
        assert_eq!(snap_b.total_recv_bytes(), 32);
        assert_eq!(snap_a.send_ns.count, 3);
        assert_eq!(snap_b.recv_ns.count, 3);
        // closed world: everything sent was received
        assert_eq!(snap_a.total_sent_bytes(), snap_b.total_recv_bytes());
    }

    #[test]
    fn oversized_tags_fold_into_last_slot() {
        let mut eps = ChannelWorld::endpoints(2).unwrap();
        let w1 = eps.pop().unwrap();
        let w0 = eps.pop().unwrap();
        let (mut a, sa) = Instrumented::new(w0);
        let mut b = w1;
        a.send(1, 999, &[1.0]).unwrap();
        a.send(1, u32::MAX, &[1.0]).unwrap();
        let mut buf = Vec::new();
        b.recv(0, 999, &mut buf).unwrap();
        let snap = sa.snapshot(0);
        assert_eq!(snap.sent_count[TRACKED_TAGS - 1], 2);
        assert_eq!(snap.total_sent(), 2);
    }

    #[test]
    fn snapshot_merge_sums_tagwise() {
        let mut a = CommSnapshot::default();
        a.sent_count[4] = 2;
        a.sent_bytes[4] = 100;
        let mut b = CommSnapshot {
            rank: 1,
            ..CommSnapshot::default()
        };
        b.sent_count[4] = 3;
        b.sent_bytes[4] = 50;
        b.recv_count[1] = 1;
        a.merge(&b);
        assert_eq!(a.sent_count[4], 5);
        assert_eq!(a.sent_bytes[4], 150);
        assert_eq!(a.recv_count[1], 1);
        assert_eq!(a.rank, 0);
    }

    #[test]
    fn failed_send_is_not_counted() {
        let mut eps = ChannelWorld::endpoints(2).unwrap();
        let _w1 = eps.pop().unwrap();
        let w0 = eps.pop().unwrap();
        let (mut a, sa) = Instrumented::new(w0);
        assert!(a.send(7, 1, &[1.0]).is_err());
        assert_eq!(sa.snapshot(0).total_sent(), 0);
    }
}
