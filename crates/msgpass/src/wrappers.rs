//! The paper's wrapper routines, name for name.
//!
//! Appendix A lists the message-passing elements PLINGER needs and the
//! wrapper routines implemented over PVM, MPL, MPI, and PVMe:
//!
//! ```text
//! initpass     - initialize message passing
//! endpass      - exit from message passing
//! mybcastreal  - send a message to all other processes
//! mysendreal   - send a message to a given process
//! mycheckany   - check for message of any type from any process
//! mycheckone   - check for message of a given type from a given process
//! mychecktid   - check for message of any type from a given process
//! myrecvreal   - receive a message
//! ```
//!
//! These functions reproduce the same call shapes over any
//! [`Transport`]; the farm in the `plinger` crate is written exclusively
//! against them, exactly as PLINGER's Fortran was.

use crate::{CommError, Rank, Tag, Transport};

/// `initpass` — returns `(mytid, mastid)`.
pub fn initpass<T: Transport>(t: &T) -> (Rank, Rank) {
    (t.rank(), 0)
}

/// `endpass` — exit from message passing (drop-based in Rust; kept for
/// call-shape fidelity).
pub fn endpass<T: Transport>(_t: T) {}

/// `mybcastreal` — the master sends `buffer` to all other processes with
/// tag `msgtype` (a loop of point-to-point sends, as in the MPI version).
pub fn mybcastreal<T: Transport>(t: &mut T, buffer: &[f64], msgtype: Tag) -> Result<(), CommError> {
    t.broadcast(msgtype, buffer)
}

/// `mysendreal` — send `buffer` with tag `msgtype` to `target`.
pub fn mysendreal<T: Transport>(
    t: &mut T,
    buffer: &[f64],
    msgtype: Tag,
    target: Rank,
) -> Result<(), CommError> {
    t.send(target, msgtype, buffer)
}

/// `mycheckany` — wait for a message of any type from any process;
/// returns `(msgtype, target)`.
pub fn mycheckany<T: Transport>(t: &mut T) -> Result<(Tag, Rank), CommError> {
    let env = t.probe(None, None)?;
    Ok((env.tag, env.source))
}

/// `mycheckone` — wait for a message of type `msgtype` from `target`.
pub fn mycheckone<T: Transport>(t: &mut T, msgtype: Tag, target: Rank) -> Result<(), CommError> {
    t.probe(Some(target), Some(msgtype)).map(|_| ())
}

/// `mychecktid` — wait for a message of any type from `target`; returns
/// its tag.
pub fn mychecktid<T: Transport>(t: &mut T, target: Rank) -> Result<Tag, CommError> {
    let env = t.probe(Some(target), None)?;
    Ok(env.tag)
}

/// `myrecvreal` — receive a message of type `msgtype` from `target` into
/// `buffer`; returns the received length.
pub fn myrecvreal<T: Transport>(
    t: &mut T,
    buffer: &mut Vec<f64>,
    msgtype: Tag,
    target: Rank,
) -> Result<usize, CommError> {
    let env = t.recv(target, msgtype, buffer)?;
    Ok(env.len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelWorld;
    use std::thread;

    #[test]
    fn wrapper_names_cover_appendix_a() {
        // master/worker exchange written purely in wrapper calls
        let mut eps = ChannelWorld::new(2);
        let mut worker = eps.pop().unwrap();
        let mut master = eps.pop().unwrap();

        let h = thread::spawn(move || {
            let (mytid, mastid) = initpass(&worker);
            assert_eq!(mytid, 1);
            let mut buf = Vec::new();
            // receive broadcast
            mycheckone(&mut worker, 1, mastid).unwrap();
            myrecvreal(&mut worker, &mut buf, 1, mastid).unwrap();
            assert_eq!(buf, vec![3.0, 4.0]);
            // ask for work
            mysendreal(&mut worker, &[0.0], 2, mastid).unwrap();
            // get assignment or stop
            let tag = mychecktid(&mut worker, mastid).unwrap();
            myrecvreal(&mut worker, &mut buf, tag, mastid).unwrap();
            assert_eq!(tag, 6); // stop
            endpass(worker);
        });

        let (mytid, _mastid) = initpass(&master);
        assert_eq!(mytid, 0);
        mybcastreal(&mut master, &[3.0, 4.0], 1).unwrap();
        let (tag, who) = mycheckany(&mut master).unwrap();
        assert_eq!(tag, 2);
        assert_eq!(who, 1);
        let mut buf = Vec::new();
        myrecvreal(&mut master, &mut buf, 2, who).unwrap();
        mysendreal(&mut master, &[0.0], 6, who).unwrap();
        h.join().unwrap();
        endpass(master);
    }
}
