//! Deterministic single-rank loopback transport.
//!
//! A world of size one where sends to rank 0 enqueue locally.  Used by
//! the protocol unit tests: a master routine and a worker routine can be
//! interleaved deterministically on one thread, and every probe/receive
//! is reproducible run-to-run.

use crate::{CommError, Envelope, Message, Rank, Tag, Transport};
use std::collections::VecDeque;

/// Single-rank loopback world.
#[derive(Default)]
pub struct LoopbackWorld {
    queue: VecDeque<Message>,
}

impl LoopbackWorld {
    /// Create an empty loopback endpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl Transport for LoopbackWorld {
    fn rank(&self) -> Rank {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        if dest != 0 {
            return Err(CommError::NoSuchRank(dest));
        }
        self.queue.push_back(Message {
            source: 0,
            tag,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        self.queue
            .iter()
            .find(|m| m.matches(source, tag))
            .map(|m| m.envelope())
            .ok_or(CommError::Disconnected) // loopback cannot block
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        let idx = self
            .queue
            .iter()
            .position(|m| m.matches(Some(source), Some(tag)))
            .ok_or(CommError::Disconnected)?;
        let msg = self.queue.remove(idx).expect("index just found");
        let env = msg.envelope();
        buf.clear();
        buf.extend_from_slice(&msg.data);
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let mut w = LoopbackWorld::new();
        w.send(0, 4, &[1.0, 2.0]).unwrap();
        assert_eq!(w.pending(), 1);
        let env = w.probe(None, None).unwrap();
        assert_eq!(env.tag, 4);
        let mut buf = Vec::new();
        w.recv(0, 4, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn probe_on_empty_is_error_not_hang() {
        let mut w = LoopbackWorld::new();
        assert!(w.probe(None, None).is_err());
    }

    #[test]
    fn selective_recv_by_tag() {
        let mut w = LoopbackWorld::new();
        w.send(0, 1, &[1.0]).unwrap();
        w.send(0, 2, &[2.0]).unwrap();
        let mut buf = Vec::new();
        w.recv(0, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![2.0]);
        w.recv(0, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0]);
    }

    #[test]
    fn send_to_other_rank_fails() {
        let mut w = LoopbackWorld::new();
        assert_eq!(w.send(1, 0, &[]).unwrap_err(), CommError::NoSuchRank(1));
    }
}
