//! Deterministic single-rank loopback transport.
//!
//! A world of size one where sends to rank 0 enqueue locally.  Used by
//! the protocol unit tests: a master routine and a worker routine can be
//! interleaved deterministically on one thread, and every probe/receive
//! is reproducible run-to-run.

use crate::{CommError, Envelope, Message, Rank, Tag, Transport, World};
use std::collections::VecDeque;
use std::time::Duration;

/// Single-rank loopback world.
#[derive(Default)]
pub struct LoopbackWorld {
    queue: VecDeque<Message>,
}

impl LoopbackWorld {
    /// Create an empty loopback endpoint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of messages currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl World for LoopbackWorld {
    type Endpoint = LoopbackWorld;

    const NAME: &'static str = "serial";

    fn endpoints(n_ranks: usize) -> Result<Vec<LoopbackWorld>, CommError> {
        if n_ranks != 1 {
            return Err(CommError::Unsupported(
                "loopback worlds have exactly one rank",
            ));
        }
        Ok(vec![LoopbackWorld::new()])
    }
}

impl Transport for LoopbackWorld {
    fn rank(&self) -> Rank {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn send(&mut self, dest: Rank, tag: Tag, data: &[f64]) -> Result<(), CommError> {
        if dest != 0 {
            return Err(CommError::NoSuchRank(dest));
        }
        self.queue.push_back(Message {
            source: 0,
            tag,
            data: data.to_vec(),
        });
        Ok(())
    }

    fn probe(&mut self, source: Option<Rank>, tag: Option<Tag>) -> Result<Envelope, CommError> {
        self.queue
            .iter()
            .find(|m| m.matches(source, tag))
            .map(|m| m.envelope())
            .ok_or(CommError::Disconnected) // loopback cannot block
    }

    fn probe_timeout(
        &mut self,
        source: Option<Rank>,
        tag: Option<Tag>,
        _timeout: Duration,
    ) -> Result<Option<Envelope>, CommError> {
        // single-threaded: nothing can arrive while we wait, so the
        // bounded probe degenerates to a non-blocking queue scan
        Ok(self
            .queue
            .iter()
            .find(|m| m.matches(source, tag))
            .map(|m| m.envelope()))
    }

    fn recv(&mut self, source: Rank, tag: Tag, buf: &mut Vec<f64>) -> Result<Envelope, CommError> {
        let idx = self
            .queue
            .iter()
            .position(|m| m.matches(Some(source), Some(tag)))
            .ok_or(CommError::Disconnected)?;
        let msg = self
            .queue
            .remove(idx)
            .ok_or_else(|| CommError::Protocol("loopback queue index vanished".into()))?;
        let env = msg.envelope();
        buf.clear();
        buf.extend_from_slice(&msg.data);
        Ok(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_roundtrip() {
        let mut w = LoopbackWorld::new();
        w.send(0, 4, &[1.0, 2.0]).unwrap();
        assert_eq!(w.pending(), 1);
        let env = w.probe(None, None).unwrap();
        assert_eq!(env.tag, 4);
        let mut buf = Vec::new();
        w.recv(0, 4, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn probe_on_empty_is_error_not_hang() {
        let mut w = LoopbackWorld::new();
        assert!(w.probe(None, None).is_err());
    }

    #[test]
    fn bounded_probe_on_empty_is_none() {
        let mut w = LoopbackWorld::new();
        let got = w
            .probe_timeout(None, None, Duration::from_millis(1))
            .unwrap();
        assert!(got.is_none());
        w.send(0, 2, &[1.0]).unwrap();
        let env = w
            .probe_timeout(None, Some(2), Duration::from_millis(1))
            .unwrap();
        assert_eq!(env.map(|e| e.tag), Some(2));
    }

    #[test]
    fn selective_recv_by_tag() {
        let mut w = LoopbackWorld::new();
        w.send(0, 1, &[1.0]).unwrap();
        w.send(0, 2, &[2.0]).unwrap();
        let mut buf = Vec::new();
        w.recv(0, 2, &mut buf).unwrap();
        assert_eq!(buf, vec![2.0]);
        w.recv(0, 1, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0]);
    }

    #[test]
    fn send_to_other_rank_fails() {
        let mut w = LoopbackWorld::new();
        assert_eq!(w.send(1, 0, &[]).unwrap_err(), CommError::NoSuchRank(1));
    }

    #[test]
    fn multi_rank_loopback_is_rejected() {
        assert!(<LoopbackWorld as World>::endpoints(2).is_err());
        assert!(<LoopbackWorld as World>::endpoints(0).is_err());
    }
}
