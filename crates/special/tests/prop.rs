//! Property tests for the special functions.

use proptest::prelude::*;
use special::bessel::{sph_bessel_jl, sph_bessel_jl_array};
use special::legendre::{assoc_legendre_norm, legendre_pl, legendre_pl_array};

proptest! {
    #[test]
    fn legendre_bounded_on_interval(l in 0usize..200, x in -1.0f64..1.0) {
        let p = legendre_pl(l, x);
        prop_assert!(p.abs() <= 1.0 + 1e-12, "P_{l}({x}) = {p}");
    }

    #[test]
    fn legendre_parity(l in 0usize..100, x in 0.0f64..1.0) {
        let sign = if l % 2 == 0 { 1.0 } else { -1.0 };
        let a = legendre_pl(l, x);
        let b = legendre_pl(l, -x);
        prop_assert!((a - sign * b).abs() < 1e-11);
    }

    #[test]
    fn legendre_array_consistent(lmax in 2usize..150, x in -1.0f64..1.0) {
        let mut arr = vec![0.0; lmax + 1];
        legendre_pl_array(x, &mut arr);
        for l in (0..=lmax).step_by(7) {
            prop_assert!((arr[l] - legendre_pl(l, x)).abs() < 1e-11);
        }
    }

    #[test]
    fn bessel_recurrence_holds(l in 2usize..60, x in 0.5f64..80.0) {
        let lhs = (2.0 * l as f64 + 1.0) / x * sph_bessel_jl(l, x);
        let rhs = sph_bessel_jl(l - 1, x) + sph_bessel_jl(l + 1, x);
        // relative to the largest of the three values
        let scale = sph_bessel_jl(l - 1, x).abs()
            .max(sph_bessel_jl(l + 1, x).abs())
            .max(1e-20);
        prop_assert!((lhs - rhs).abs() / scale < 1e-7,
            "recurrence at l={l}, x={x}: {lhs} vs {rhs}");
    }

    #[test]
    fn bessel_array_matches_scalar(lmax in 3usize..120, x in 0.1f64..100.0) {
        let mut arr = vec![0.0; lmax + 1];
        sph_bessel_jl_array(x, &mut arr);
        for l in [0, lmax / 2, lmax] {
            let s = sph_bessel_jl(l, x);
            prop_assert!((arr[l] - s).abs() <= 1e-9 * s.abs().max(1e-12),
                "l={l}, x={x}: {} vs {s}", arr[l]);
        }
    }

    #[test]
    fn bessel_bounded_by_one(l in 0usize..100, x in 0.0f64..200.0) {
        let j = sph_bessel_jl(l, x);
        prop_assert!(j.abs() <= 1.0 + 1e-12);
        prop_assert!(j.is_finite());
    }

    #[test]
    fn ylm_symmetric_under_parity(l in 0usize..40, m in 0usize..40, x in 0.0f64..1.0) {
        prop_assume!(m <= l);
        let sign = if (l + m) % 2 == 0 { 1.0 } else { -1.0 };
        let a = assoc_legendre_norm(l, m, x);
        let b = assoc_legendre_norm(l, m, -x);
        prop_assert!((a - sign * b).abs() < 1e-10 * a.abs().max(1.0));
    }
}
