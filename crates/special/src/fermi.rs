//! Fermi–Dirac momentum integrals for the massive-neutrino background.
//!
//! In LINGER units the comoving neutrino momentum is measured in units of
//! the present neutrino temperature, `x = q / (k_B T_ν0)`, and the mass
//! enters through `r = a m c² / (k_B T_ν0)`.  The background density and
//! pressure then reduce to the dimensionless kernels
//!
//! ```text
//! I_n    = ∫ x² /(e^x+1) dx                      (number)
//! I_ρ(r) = ∫ x² √(x²+r²) /(e^x+1) dx             (energy)
//! I_p(r) = (1/3) ∫ x⁴ /√(x²+r²) /(e^x+1) dx      (pressure)
//! ```
//!
//! evaluated with Gauss–Laguerre quadrature after factoring `e^{-x}`.

use numutil::quad::gauss_laguerre;

/// Number of quadrature points used by the fixed rules below; 32 points
/// give ≈ 12 significant digits on these smooth kernels.
const NQ: usize = 32;

fn with_rule<F: Fn(f64) -> f64>(f: F) -> f64 {
    use std::sync::OnceLock;
    static RULE: OnceLock<(Vec<f64>, Vec<f64>)> = OnceLock::new();
    let (xs, ws) = RULE.get_or_init(|| gauss_laguerre(NQ));
    xs.iter()
        .zip(ws)
        .map(|(&x, &w)| {
            // weight already contains e^{-x}; multiply back the FD kernel
            w * f(x) * (x.exp() / (x.exp() + 1.0))
        })
        .sum()
}

/// `∫ x²/(e^x+1) dx = (3/2) ζ(3) ≈ 1.803085…`
pub fn fermi_dirac_number() -> f64 {
    with_rule(|x| x * x)
}

/// Energy kernel `I_ρ(r)`; `I_ρ(0) = 7π⁴/120` (relativistic limit) and
/// `I_ρ(r) → r · (3/2)ζ(3)` as `r → ∞` (non-relativistic limit).
pub fn fermi_dirac_energy(r: f64) -> f64 {
    assert!(r >= 0.0);
    with_rule(|x| x * x * (x * x + r * r).sqrt())
}

/// Pressure kernel `I_p(r)`; `I_p(0) = I_ρ(0)/3` and `I_p → 0` for large `r`.
pub fn fermi_dirac_pressure(r: f64) -> f64 {
    assert!(r >= 0.0);
    with_rule(|x| x * x * x * x / (3.0 * (x * x + r * r).sqrt()))
}

/// The logarithmic derivative `d ln f₀ / d ln q = -x e^x/(e^x+1)` needed by
/// the massive-neutrino Boltzmann hierarchy source terms.
#[inline]
pub fn dlnf0_dlnq(x: f64) -> f64 {
    // numerically safe for large x: e^x/(e^x+1) = 1/(1+e^{-x})
    -x / (1.0 + (-x).exp())
}

/// Precomputed momentum grid for the neutrino phase-space hierarchy:
/// Gauss–Laguerre nodes `q_i` with combined weights
/// `w_i e^{q_i} f₀(q_i) q_i²` ready for density-like integrals,
/// so that `∫ q² f₀(q) g(q) dq ≈ Σ w̃_i g(q_i)`.
#[derive(Debug, Clone)]
pub struct NeutrinoMomentumGrid {
    /// Momentum nodes in units of `k_B T_ν0`.
    pub q: Vec<f64>,
    /// Combined weights `w̃_i` (see struct docs).
    pub w: Vec<f64>,
    /// `d ln f₀ / d ln q` at each node.
    pub dlnf: Vec<f64>,
}

impl NeutrinoMomentumGrid {
    /// Build an `n`-point grid.  LINGER production runs used a comparable
    /// fixed sampling of the Fermi–Dirac distribution.
    pub fn new(n: usize) -> Self {
        let (xs, ws) = gauss_laguerre(n);
        let q = xs.clone();
        let w: Vec<f64> = xs
            .iter()
            .zip(&ws)
            .map(|(&x, &wt)| wt * (x.exp() / (x.exp() + 1.0)) * x * x)
            .collect();
        let dlnf = xs.iter().map(|&x| dlnf0_dlnq(x)).collect();
        Self { q, w, dlnf }
    }

    /// Number of momentum bins.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// True if the grid is empty (never the case for `new(n>0)`).
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZETA3: f64 = 1.202_056_903_159_594;

    #[test]
    fn number_integral() {
        let expect = 1.5 * ZETA3;
        assert!((fermi_dirac_number() - expect).abs() < 1e-9);
    }

    #[test]
    fn energy_relativistic_limit() {
        // I_ρ(0) = 7π⁴/120
        let expect = 7.0 * std::f64::consts::PI.powi(4) / 120.0;
        assert!((fermi_dirac_energy(0.0) - expect).abs() < 1e-8);
    }

    #[test]
    fn pressure_is_third_of_energy_when_massless() {
        let e = fermi_dirac_energy(0.0);
        let p = fermi_dirac_pressure(0.0);
        assert!((p - e / 3.0).abs() < 1e-9);
    }

    #[test]
    fn energy_nonrelativistic_limit() {
        // I_ρ(r) → r ∫ x²/(e^x+1) = r (3/2)ζ(3) for r ≫ x_typ
        let r = 5000.0;
        let expect = r * 1.5 * ZETA3;
        let got = fermi_dirac_energy(r);
        assert!(
            (got - expect).abs() / expect < 1e-4,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn pressure_vanishes_nonrelativistic() {
        let e = fermi_dirac_energy(1000.0);
        let p = fermi_dirac_pressure(1000.0);
        assert!(p / e < 1e-3, "w = {}", p / e);
    }

    #[test]
    fn energy_monotone_in_mass() {
        let mut last = fermi_dirac_energy(0.0);
        for r in [0.1, 1.0, 3.0, 10.0, 100.0] {
            let e = fermi_dirac_energy(r);
            assert!(e > last);
            last = e;
        }
    }

    #[test]
    fn dlnf0_limits() {
        assert!((dlnf0_dlnq(0.0)).abs() < 1e-14);
        // large x: → -x
        assert!((dlnf0_dlnq(50.0) + 50.0).abs() < 1e-10);
        // moderate: -x/(1+e^{-x})
        let x = 2.0f64;
        assert!((dlnf0_dlnq(x) + x / (1.0 + (-x).exp())).abs() < 1e-14);
    }

    #[test]
    fn momentum_grid_recovers_number_density() {
        let g = NeutrinoMomentumGrid::new(24);
        let n: f64 = g.w.iter().sum();
        assert!((n - 1.5 * ZETA3).abs() < 1e-8);
    }

    #[test]
    fn momentum_grid_recovers_energy() {
        let g = NeutrinoMomentumGrid::new(24);
        for r in [0.0, 2.0, 20.0] {
            let e: f64 =
                g.q.iter()
                    .zip(&g.w)
                    .map(|(&q, &w)| w * (q * q + r * r).sqrt())
                    .sum();
            let expect = fermi_dirac_energy(r);
            assert!((e - expect).abs() / expect < 1e-6, "r={r}");
        }
    }
}
