//! Special functions for the LINGER/PLINGER reproduction.
//!
//! Spherical Bessel functions feed the sky-map synthesis and analytic
//! cross-checks; Legendre and associated-Legendre recurrences drive the
//! spherical-harmonic transforms; the Fermi–Dirac kernels supply the
//! massive-neutrino background integrals.

pub mod bessel;
pub mod fermi;
pub mod legendre;

pub use bessel::{jl_window_start, sph_bessel_jl, sph_bessel_jl_array, JlTable, JL_TABLE_DX};
pub use fermi::{fermi_dirac_energy, fermi_dirac_number, fermi_dirac_pressure};
pub use legendre::{assoc_legendre_norm, legendre_pl, legendre_pl_array};

/// Error function via the complementary function below.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function (Chebyshev fit; absolute error ≲ 1e-12,
/// ample for the Gaussian tails used here).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().skip(1).rev() {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural log of the Gamma function (Lanczos approximation).
pub fn lgamma(x: f64) -> f64 {
    assert!(x > 0.0, "lgamma requires positive argument");
    const COF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    let mut y = x;
    for &c in &COF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (-1.0, -0.8427007929497149),
        ];
        for (x, e) in cases {
            assert!((erf(x) - e).abs() < 1e-10, "erf({x}) = {}", erf(x));
        }
    }

    #[test]
    fn erfc_complements() {
        for x in [-2.0, -0.3, 0.0, 0.7, 3.0] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_large_argument_decays() {
        assert!(erfc(5.0) < 2e-11);
        assert!(erfc(5.0) > 0.0);
        assert!((erfc(-5.0) - 2.0).abs() < 2e-11);
    }

    #[test]
    fn lgamma_factorials() {
        assert!((lgamma(1.0)).abs() < 1e-12);
        assert!((lgamma(2.0)).abs() < 1e-12);
        assert!((lgamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((lgamma(11.0) - 3628800.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn lgamma_half() {
        assert!((lgamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }
}
