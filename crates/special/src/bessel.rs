//! Spherical Bessel functions `j_l(x)`.
//!
//! Strategy: for `x > l` the upward recurrence is stable; for `x <= l` we
//! run Miller's downward recurrence from a safely high starting order and
//! normalize against `j_0`.  Small arguments use the series limit
//! `j_l(x) → x^l / (2l+1)!!` to avoid under/overflow.

/// `j_0(x) = sin(x)/x`, with the series limit at the origin.
#[inline]
pub fn j0(x: f64) -> f64 {
    if x.abs() < 1e-6 {
        1.0 - x * x / 6.0
    } else {
        x.sin() / x
    }
}

/// `j_1(x) = sin(x)/x² − cos(x)/x`.
#[inline]
pub fn j1(x: f64) -> f64 {
    if x.abs() < 1e-2 {
        // the closed form cancels two ~1/x terms, losing |x|⁻¹·ε
        // absolutely — ruinous for kernels that divide by x² (the
        // line-of-sight projection).  Three series terms are exact to
        // machine precision on this range (truncation ~ x⁶/15120).
        let x2 = x * x;
        x * (1.0 / 3.0 - x2 / 30.0 + x2 * x2 / 840.0)
    } else {
        x.sin() / (x * x) - x.cos() / x
    }
}

/// Double factorial `(2l+1)!!` in log space to avoid overflow.
fn ln_double_factorial_odd(l: usize) -> f64 {
    // (2l+1)!! = (2l+1)! / (2^l l!)
    let mut s = 0.0;
    let mut m = 2 * l + 1;
    while m > 1 {
        s += (m as f64).ln();
        m -= 2;
    }
    s
}

/// Spherical Bessel function `j_l(x)` for `x >= 0`.
pub fn sph_bessel_jl(l: usize, x: f64) -> f64 {
    assert!(x >= 0.0, "sph_bessel_jl requires x >= 0");
    if l == 0 {
        return j0(x);
    }
    if l == 1 {
        return j1(x);
    }
    // Tiny argument: series leading term (guard against total underflow).
    let lf = l as f64;
    if x < 1e-10 * (lf + 1.0) {
        let ln_val = lf * x.max(1e-300).ln() - ln_double_factorial_odd(l);
        return if ln_val < -700.0 { 0.0 } else { ln_val.exp() };
    }
    if x > lf {
        // Upward recurrence: j_{n+1} = (2n+1)/x j_n - j_{n-1}
        let mut jm = j0(x);
        let mut j = j1(x);
        for n in 1..l {
            let jn = (2.0 * n as f64 + 1.0) / x * j - jm;
            jm = j;
            j = jn;
        }
        j
    } else {
        // Downward (Miller). Start high enough above l.
        let extra = (x.sqrt() * 15.0) as usize + 36;
        let lstart = l + extra;
        let mut jp = 0.0f64;
        let mut j = 1e-30f64;
        let mut jl = 0.0f64;
        let mut j0acc = 0.0f64;
        for n in (1..=lstart).rev() {
            let jm = (2.0 * n as f64 + 1.0) / x * j - jp;
            jp = j;
            j = jm;
            if n - 1 == l {
                jl = j;
            }
            // renormalize on the fly to dodge overflow
            if j.abs() > 1e250 {
                jp /= 1e250;
                j /= 1e250;
                jl /= 1e250;
            }
        }
        j0acc += j; // j now holds the downward estimate of j_0
        let scale = j0(x) / j0acc;
        jl * scale
    }
}

/// Fill `out[l] = j_l(x)` for `l = 0..out.len()` with one downward pass
/// (much cheaper than `out.len()` independent calls).
pub fn sph_bessel_jl_array(x: f64, out: &mut [f64]) {
    let lmax = out.len().saturating_sub(1);
    if out.is_empty() {
        return;
    }
    out[0] = j0(x);
    if lmax == 0 {
        return;
    }
    out[1] = j1(x);
    if x > lmax as f64 {
        for n in 1..lmax {
            out[n + 1] = (2.0 * n as f64 + 1.0) / x * out[n] - out[n - 1];
        }
        return;
    }
    if x < 1e-12 {
        // the Miller sweep divides by x; use the series leading term
        // instead.  Zero-filling here (the old behaviour) disagreed with
        // the scalar path, which returns j_l ≈ x^l/(2l+1)!! — nonzero
        // well below x = 1e-12 for small l (j_2(1e-13) ≈ 6.7e-28).
        let lnx = x.max(1e-300).ln();
        for (l, v) in out.iter_mut().enumerate().skip(2) {
            let ln_val = l as f64 * lnx - ln_double_factorial_odd(l);
            *v = if ln_val < -700.0 { 0.0 } else { ln_val.exp() };
        }
        return;
    }
    // Single Miller sweep.
    let extra = (x.sqrt() * 15.0) as usize + 36;
    let lstart = lmax + extra;
    let mut jp = 0.0f64;
    let mut j = 1e-30f64;
    let mut tmp = vec![0.0f64; lmax + 1];
    for n in (1..=lstart).rev() {
        let jm = (2.0 * n as f64 + 1.0) / x * j - jp;
        jp = j;
        j = jm;
        if n - 1 <= lmax {
            tmp[n - 1] = j;
        }
        if j.abs() > 1e250 {
            jp /= 1e250;
            j /= 1e250;
            for v in tmp.iter_mut() {
                *v /= 1e250;
            }
        }
    }
    let scale = j0(x) / tmp[0];
    for (o, t) in out.iter_mut().zip(&tmp) {
        *o = t * scale;
    }
}

// ---------------------------------------------------------------------------
// Cached j_l / j_l' table for the line-of-sight projection
// ---------------------------------------------------------------------------

/// Node spacing of [`JlTable`].  Cubic-Hermite interpolation between
/// nodes carrying exact derivatives has error `~ dx⁴/384 · max|j⁗| ≈
/// 2·10⁻⁴` of the local envelope at this spacing — far below the
/// line-of-sight method's own truncation error.
pub const JL_TABLE_DX: f64 = 0.5;

/// First `x` at which `j_l` is non-negligible: below `ν − 7ν^{1/3} − 2`
/// (`ν = l + ½`) the function is smaller than ~10⁻⁵ of its peak, so the
/// table rows are windowed to start there.  Queries below the window
/// evaluate to exactly zero.
pub fn jl_window_start(l: usize) -> f64 {
    let nu = l as f64 + 0.5;
    (nu - 7.0 * nu.cbrt() - 2.0).max(0.0)
}

/// Largest `l` whose window includes `x` (inverse of
/// [`jl_window_start`]).
fn jl_window_lmax(x: f64) -> usize {
    let mut l = (x + 7.0 * x.max(1.0).cbrt() + 14.0) as usize;
    while l > 0 && jl_window_start(l) > x {
        l -= 1;
    }
    while jl_window_start(l + 1) <= x {
        l += 1;
    }
    l
}

/// One windowed row of the table: values and derivatives of `j_l` at
/// the uniform nodes `x = i·JL_TABLE_DX`, `i ≥ i0`.
#[derive(Debug, Clone)]
struct JlRow {
    /// First node index: the row covers `x ≥ i0 · JL_TABLE_DX`.
    i0: usize,
    /// `j_l` at the nodes.
    j: Vec<f64>,
    /// `j_l'` at the nodes (from the recurrence
    /// `j_l' = j_{l−1} − (l+1)/x · j_l`, exact at the nodes).
    dj: Vec<f64>,
}

/// Precomputed `j_l(x)` / `j_l'(x)` over the projection grid with
/// interpolated lookup.
///
/// Rows are *windowed*: row `l` starts at [`jl_window_start`]`(l)`
/// (where the function rises from zero), which cuts the memory for an
/// `l_max = 1500` table from ~240 MB to ~50 MB.  Node values depend
/// only on `(l, x)` — one downward Miller sweep per node, carried to
/// the node's own window `l_max` regardless of the table size — so
/// growing a cached table never changes an existing entry.
///
/// Lookup is cubic-Hermite in both `j` and `j'`: each uses the exact
/// node value and the exact node derivative of the quantity being
/// interpolated (`j''` at the nodes comes from the Bessel ODE
/// identity), giving `O(dx⁴)` accuracy for both.
#[derive(Debug, Clone)]
pub struct JlTable {
    l_max: usize,
    x_max: f64,
    rows: Vec<JlRow>,
}

impl JlTable {
    /// Build a fresh table covering `l = 0..=l_max`, `x ∈ [0, x_max]`.
    pub fn build(l_max: usize, x_max: f64) -> Self {
        let x_max = x_max.max(JL_TABLE_DX);
        let i_max = (x_max / JL_TABLE_DX).ceil() as usize + 1;
        let mut rows: Vec<JlRow> = (0..=l_max)
            .map(|l| JlRow {
                i0: (jl_window_start(l) / JL_TABLE_DX).ceil() as usize,
                j: Vec::new(),
                dj: Vec::new(),
            })
            .collect();
        let mut buf = Vec::new();
        for i in 0..=i_max {
            let x = i as f64 * JL_TABLE_DX;
            // sweep to the window l_max of this node (not of the table)
            // so the node values are pure functions of (l, x)
            let wl = jl_window_lmax(x);
            buf.resize(wl + 2, 0.0);
            sph_bessel_jl_array(x, &mut buf);
            for (l, row) in rows.iter_mut().enumerate().take(wl.min(l_max) + 1) {
                if i < row.i0 {
                    continue;
                }
                row.j.push(buf[l]);
                row.dj.push(if i == 0 {
                    // j_l'(0) = δ_{l1}/3
                    if l == 1 {
                        1.0 / 3.0
                    } else {
                        0.0
                    }
                } else if l == 0 {
                    -buf[1]
                } else {
                    buf[l - 1] - (l as f64 + 1.0) / x * buf[l]
                });
            }
        }
        Self { l_max, x_max, rows }
    }

    /// Largest tabulated multipole.
    pub fn l_max(&self) -> usize {
        self.l_max
    }

    /// Largest tabulated argument.
    pub fn x_max(&self) -> f64 {
        self.x_max
    }

    /// A process-wide cached table covering at least `(l_max, x_max)`.
    /// The cache only ever grows; because node values are independent of
    /// the table dimensions, entries shared between the old and new
    /// coverage are bitwise identical after growth.
    pub fn shared(l_max: usize, x_max: f64) -> std::sync::Arc<JlTable> {
        use std::sync::{Arc, Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<Option<Arc<JlTable>>>> = OnceLock::new();
        let mut slot = CACHE.get_or_init(|| Mutex::new(None)).lock().unwrap();
        if let Some(t) = slot.as_ref() {
            if t.l_max >= l_max && t.x_max >= x_max {
                return Arc::clone(t);
            }
        }
        let (l_cur, x_cur) = slot
            .as_ref()
            .map(|t| (t.l_max, t.x_max))
            .unwrap_or((0, 0.0));
        let fresh = Arc::new(JlTable::build(l_max.max(l_cur), x_max.max(x_cur)));
        *slot = Some(Arc::clone(&fresh));
        fresh
    }

    /// `(j_l(x), j_l'(x))` by cubic-Hermite interpolation.  Exactly zero
    /// below the row window (where `j_l` is negligible); `x` must not
    /// exceed the built `x_max`.
    #[inline]
    pub fn eval(&self, l: usize, x: f64) -> (f64, f64) {
        let row = &self.rows[l];
        let u = x / JL_TABLE_DX - row.i0 as f64;
        if u < 0.0 {
            return (0.0, 0.0);
        }
        let n = row.j.len();
        if n < 2 {
            // window opens within the last node spacing of x_max — the
            // function is still negligible over the covered range
            return (0.0, 0.0);
        }
        let i = (u as usize).min(n - 2);
        let t = u - i as f64;
        let dx = JL_TABLE_DX;
        let xa = (row.i0 + i) as f64 * dx;
        let xb = xa + dx;
        let (ja, da) = (row.j[i], row.dj[i]);
        let (jb, db) = (row.j[i + 1], row.dj[i + 1]);
        // Hermite basis
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        let j = h00 * ja + h10 * dx * da + h01 * jb + h11 * dx * db;
        // j' gets its own Hermite: node derivative of j' is j'', exact
        // from the Bessel ODE  j'' = (l(l+1)/x² − 1) j − (2/x) j'
        let ll1 = (l * (l + 1)) as f64;
        let dda = if xa > 0.0 {
            (ll1 / (xa * xa) - 1.0) * ja - 2.0 / xa * da
        } else {
            // j''(0): −1/3 for l = 0, 2/15 for l = 2, else 0
            match l {
                0 => -1.0 / 3.0,
                2 => 2.0 / 15.0,
                _ => 0.0,
            }
        };
        let ddb = (ll1 / (xb * xb) - 1.0) * jb - 2.0 / xb * db;
        let dj = h00 * da + h10 * dx * dda + h01 * db + h11 * dx * ddb;
        (j, dj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values verified against scipy.special.spherical_jn.
    const REFS: &[(usize, f64, f64)] = &[
        (0, 0.5, 0.958_851_077_208_406),
        (1, 0.5, 0.162_537_030_636_066_6),
        (2, 1.0, 0.062_035_052_011_373_86),
        (2, 10.0, 0.077_942_193_628_562_45),
        (5, 1.0, 9.256_115_861_125_816e-5),
        (5, 10.0, -0.055_534_511_621_452_18),
        (10, 5.0, 4.073_442_442_494_604e-4),
        (10, 25.0, -0.036_253_285_601_128_57),
        (50, 10.0, 2.230_696_023_218_647e-31),
        (50, 60.0, -0.021_230_978_268_738_99),
        (100, 120.0, 0.010_398_358_612_379_5),
    ];

    #[test]
    fn matches_reference_values() {
        for &(l, x, expect) in REFS {
            let got = sph_bessel_jl(l, x);
            let tol = 1e-9 * expect.abs().max(1e-12);
            assert!(
                (got - expect).abs() < tol.max(1e-13),
                "j_{l}({x}) = {got:e}, expect {expect:e}"
            );
        }
    }

    #[test]
    fn array_matches_scalar() {
        for &x in &[0.3, 2.0, 17.5, 80.0] {
            let mut arr = vec![0.0; 61];
            sph_bessel_jl_array(x, &mut arr);
            for l in (0..=60).step_by(7) {
                let s = sph_bessel_jl(l, x);
                assert!(
                    (arr[l] - s).abs() < 1e-10 * s.abs().max(1e-10),
                    "l={l} x={x}: array={} scalar={s}",
                    arr[l]
                );
            }
        }
    }

    #[test]
    fn small_argument_series() {
        // j_2(x) ≈ x²/15 for small x
        let x = 1e-4;
        assert!((sph_bessel_jl(2, x) - x * x / 15.0).abs() < 1e-16);
        // j_3(x) ≈ x³/105
        assert!((sph_bessel_jl(3, x) - x * x * x / 105.0).abs() < 1e-19);
    }

    #[test]
    fn zero_argument() {
        assert_eq!(sph_bessel_jl(0, 0.0), 1.0);
        assert_eq!(sph_bessel_jl(3, 0.0), 0.0);
        assert_eq!(sph_bessel_jl(500, 0.0), 0.0);
    }

    #[test]
    fn satisfies_recurrence() {
        // (2l+1)/x j_l = j_{l-1} + j_{l+1}
        for &x in &[3.0, 12.0, 40.0] {
            for l in [2usize, 5, 11, 30] {
                let lhs = (2.0 * l as f64 + 1.0) / x * sph_bessel_jl(l, x);
                let rhs = sph_bessel_jl(l - 1, x) + sph_bessel_jl(l + 1, x);
                assert!(
                    (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1e-8),
                    "recurrence fails at l={l}, x={x}"
                );
            }
        }
    }

    #[test]
    fn array_small_x_matches_scalar_series() {
        // the pre-fix array path zero-filled every l ≥ 2 below x = 1e-12,
        // disagreeing with the scalar series limit
        for &x in &[1e-13, 1e-12 * 0.999, 3e-11] {
            let mut arr = vec![0.0; 8];
            sph_bessel_jl_array(x, &mut arr);
            for (l, &a) in arr.iter().enumerate() {
                let s = sph_bessel_jl(l, x);
                assert!(
                    (a - s).abs() <= 1e-9 * s.abs(),
                    "l={l} x={x:e}: array={a:e} scalar={s:e}"
                );
            }
            assert!(arr[2] > 0.0, "j_2({x:e}) must not underflow to zero");
        }
    }

    #[test]
    fn j1_small_argument_is_fully_accurate() {
        // regression: the closed form loses ~|x|⁻¹·ε to cancellation,
        // which the 1/x² projection kernels amplify; the series branch
        // must hold to a few ulps across its whole range
        for &x in &[1e-6f64, 1e-4, 1e-3, 5e-3, 9.9e-3] {
            let reference = x / 3.0 - x.powi(3) / 30.0 + x.powi(5) / 840.0 - x.powi(7) / 45360.0;
            let got = j1(x);
            assert!(
                (got - reference).abs() <= 4.0 * reference.abs() * f64::EPSILON,
                "j1({x:e}) = {got:e}, reference {reference:e}"
            );
        }
        // continuity across the series/closed-form switch — the jump
        // is the closed form's own cancellation error, ~|x|⁻¹·ε
        let a = j1(1e-2 - 1e-12);
        let b = j1(1e-2 + 1e-12);
        assert!((a - b).abs() < 5e-12, "{a:e} vs {b:e}");
    }

    #[test]
    fn table_nodes_match_direct_evaluation() {
        // Property: table node values (one Miller sweep per node) agree
        // with the independent scalar evaluation.  Near the zeros of
        // j_l the relative ulp distance is unbounded for any two
        // algorithms, so the documented contract is absolute: the error
        // stays within 64 ulps of the 1/x amplitude envelope.
        let table = JlTable::build(80, 60.0);
        for l in [0usize, 1, 2, 7, 23, 45, 80] {
            let mut i = 0usize;
            loop {
                let x = jl_window_start(l) + (i as f64) * 7.0 * JL_TABLE_DX;
                if x > 59.0 {
                    break;
                }
                i += 1;
                let node = (x / JL_TABLE_DX).ceil() * JL_TABLE_DX;
                let (j, _) = table.eval(l, node);
                let direct = sph_bessel_jl(l, node);
                let envelope = 1.0 / node.max(1.0);
                let err = (j - direct).abs();
                assert!(
                    err <= 64.0 * envelope * f64::EPSILON,
                    "l={l} x={node}: table={j:e} direct={direct:e} ({} envelope-ulps)",
                    err / (envelope * f64::EPSILON)
                );
            }
        }
    }

    #[test]
    fn table_nodes_satisfy_the_recurrence() {
        // (2l+1)/x j_l = j_{l−1} + j_{l+1} across rows at shared nodes;
        // all three values come from the same per-node sweep, so the
        // residual is pure rounding (documented: ≤ 16 ulps of the
        // dominant term)
        let table = JlTable::build(40, 50.0);
        for l in [2usize, 5, 17, 39] {
            for i in 1..40 {
                let x = i as f64 * JL_TABLE_DX * 2.0 + JL_TABLE_DX;
                if x >= 49.0 || x <= jl_window_start(l + 1) {
                    continue;
                }
                let (jm, _) = table.eval(l - 1, x);
                let (j, _) = table.eval(l, x);
                let (jp, _) = table.eval(l + 1, x);
                let lhs = (2.0 * l as f64 + 1.0) / x * j;
                let rhs = jm + jp;
                // the residual is rounding noise in the *operands*
                // (jm + jp cancels near zeros of j_l), so scale the
                // bound to the largest operand: ≤ 16 ulps of it
                let scale = jm.abs().max(jp.abs()).max(lhs.abs()).max(1e-30);
                assert!(
                    (lhs - rhs).abs() <= 16.0 * scale * f64::EPSILON,
                    "recurrence at l={l}, x={x}: lhs={lhs:e} rhs={rhs:e}"
                );
            }
        }
    }

    #[test]
    fn table_interpolation_tracks_the_function() {
        // off-node queries: cubic Hermite with exact node derivatives is
        // good to ~2e-4 of the envelope at dx = 0.5
        let table = JlTable::build(60, 80.0);
        for l in [2usize, 10, 31, 60] {
            for i in 0..200 {
                let x = jl_window_start(l) + 0.37 + i as f64 * 0.391;
                if x > 79.0 {
                    break;
                }
                let (j, dj) = table.eval(l, x);
                let direct = sph_bessel_jl(l, x);
                let ddirect = if l == 0 {
                    -sph_bessel_jl(1, x)
                } else {
                    sph_bessel_jl(l - 1, x) - (l as f64 + 1.0) / x * sph_bessel_jl(l, x)
                };
                let envelope = 1.0 / x.max(1.0);
                assert!(
                    (j - direct).abs() < 3e-4 * envelope,
                    "j l={l} x={x}: table={j:e} direct={direct:e}"
                );
                assert!(
                    (dj - ddirect).abs() < 3e-4 * envelope,
                    "j' l={l} x={x}: table={dj:e} direct={ddirect:e}"
                );
            }
        }
    }

    #[test]
    fn table_edge_cases_at_the_origin() {
        let table = JlTable::build(5, 10.0);
        // l = 0: j_0(0) = 1, j_0'(0) = 0
        let (j, dj) = table.eval(0, 0.0);
        assert!((j - 1.0).abs() < 1e-12 && dj.abs() < 1e-12, "({j}, {dj})");
        // l = 1: j_1(0) = 0, j_1'(0) = 1/3
        let (j, dj) = table.eval(1, 0.0);
        assert!(j.abs() < 1e-12 && (dj - 1.0 / 3.0).abs() < 1e-12);
        // small-x behaviour between nodes: j_1(x) ≈ x/3, j_2(x) ≈ x²/15
        let (j, _) = table.eval(1, 0.05);
        assert!((j - 0.05 / 3.0).abs() < 1e-5, "j_1(0.05) = {j}");
        let (j, _) = table.eval(2, 0.2);
        assert!((j - 0.2 * 0.2 / 15.0).abs() < 1e-5, "j_2(0.2) = {j}");
        // below the window: identically zero
        let (j, dj) = table.eval(5, 0.0);
        assert_eq!((j, dj), (0.0, 0.0));
    }

    #[test]
    fn shared_table_growth_preserves_entries() {
        let small = JlTable::shared(20, 30.0);
        let probe: Vec<(usize, f64)> =
            vec![(0, 7.25), (3, 12.1), (11, 22.9), (20, 29.3), (17, 0.75)];
        let before: Vec<(f64, f64)> = probe.iter().map(|&(l, x)| small.eval(l, x)).collect();
        let big = JlTable::shared(45, 90.0);
        assert!(big.l_max() >= 45 && big.x_max() >= 90.0);
        for (&(l, x), &(j0v, dj0v)) in probe.iter().zip(&before) {
            let (j1v, dj1v) = big.eval(l, x);
            assert_eq!(
                j0v.to_bits(),
                j1v.to_bits(),
                "j bits changed on growth at l={l}, x={x}"
            );
            assert_eq!(dj0v.to_bits(), dj1v.to_bits());
        }
        // the cache answers repeat requests without rebuilding
        let again = JlTable::shared(10, 10.0);
        assert!(std::sync::Arc::ptr_eq(&big, &again) || again.l_max() >= 45);
    }

    #[test]
    fn closure_sum_rule() {
        // Σ_l (2l+1) j_l²(x) = 1 for any x
        for &x in &[1.0, 7.3, 31.0] {
            let lmax = (x as usize) + 80;
            let mut arr = vec![0.0; lmax + 1];
            sph_bessel_jl_array(x, &mut arr);
            let s: f64 = arr
                .iter()
                .enumerate()
                .map(|(l, j)| (2.0 * l as f64 + 1.0) * j * j)
                .sum();
            assert!((s - 1.0).abs() < 1e-8, "sum rule at x={x}: {s}");
        }
    }
}
